//! Repo-invariant source lints, enforced as a test so they run in the
//! normal `cargo test` matrix with no extra tooling:
//!
//! 1. **No new `.unwrap()` / `.expect(` in operator hot paths** —
//!    `crates/exec/src/operators/*.rs` outside test code. Existing sites
//!    are grandfathered with per-file budgets in
//!    `tests/source_lint_allow.txt`; the count may only go down (ratchet).
//! 2. **No `std::sync::Mutex` in non-test code**, and no lock guard held
//!    across a channel `send`/`recv` — the workspace standardizes on the
//!    `parking_lot` shim, and a guard held across a blocking channel op is
//!    the classic shape of the pipeline deadlock.
//! 3. **Every `TA` diagnostic code registered in
//!    `crates/plan/src/diag.rs` is documented in DESIGN.md §9** — the code
//!    table and the docs cannot drift apart.
//!
//! All checks are text-based (no extra dependencies) and skip `*_tests.rs`
//! files, `tests/` directories, and everything at or below the first
//! `#[cfg(test)]` line of a file (test modules sit at file end by
//! convention here).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The non-test prefix of a source file.
fn non_test_lines(path: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(path).unwrap();
    let mut out = Vec::new();
    for line in text.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        out.push(line.to_string());
    }
    out
}

/// Every `.rs` file under `dir`, recursively, excluding test files.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_str().unwrap();
        if path.is_dir() {
            if name != "tests" && name != "target" {
                rust_sources(&path, out);
            }
        } else if name.ends_with(".rs") && !name.ends_with("_tests.rs") {
            out.push(path);
        }
    }
}

/// Strip line comments and string literals well enough for token checks
/// (not a full lexer: multi-line strings are out of idiom here).
fn code_only(line: &str) -> String {
    let line = line.split("//").next().unwrap_or(line);
    let mut out = String::with_capacity(line.len());
    let mut in_str = false;
    let mut prev = ' ';
    for c in line.chars() {
        if c == '"' && prev != '\\' {
            in_str = !in_str;
            prev = c;
            continue;
        }
        if !in_str {
            out.push(c);
        }
        prev = c;
    }
    out
}

#[test]
fn no_new_unwraps_in_operator_hot_paths() {
    let root = repo_root();
    let allow_path = root.join("tests/source_lint_allow.txt");
    let allow_text = std::fs::read_to_string(&allow_path).unwrap();
    let mut budgets: BTreeMap<String, usize> = BTreeMap::new();
    for line in allow_text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (path, n) = line
            .rsplit_once(' ')
            .expect("allowlist line: <path> <count>");
        budgets.insert(path.to_string(), n.trim().parse().unwrap());
    }

    let ops_dir = root.join("crates/exec/src/operators");
    let mut failures = Vec::new();
    let mut files = Vec::new();
    rust_sources(&ops_dir, &mut files);
    for file in files {
        let rel = file
            .strip_prefix(&root)
            .unwrap()
            .to_str()
            .unwrap()
            .to_string();
        let count = non_test_lines(&file)
            .iter()
            .map(|l| {
                let code = code_only(l);
                code.matches(".unwrap()").count() + code.matches(".expect(").count()
            })
            .sum::<usize>();
        let budget = budgets.get(&rel).copied().unwrap_or(0);
        if count > budget {
            failures.push(format!(
                "{rel}: {count} unwrap/expect site(s), budget {budget} — handle the error \
                 or (only for provable invariants) raise the budget in {}",
                allow_path.display()
            ));
        } else if count < budget {
            failures.push(format!(
                "{rel}: {count} unwrap/expect site(s), budget {budget} — ratchet the \
                 budget down in {}",
                allow_path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn no_std_mutex_and_no_guard_across_channel_ops() {
    let root = repo_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    rust_sources(&root.join("src"), &mut files);
    let mut failures = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(&root).unwrap().display().to_string();
        // The in-tree shims legitimately wrap std primitives.
        if rel.starts_with("crates/shims/") {
            continue;
        }
        let lines = non_test_lines(file);
        for (i, raw) in lines.iter().enumerate() {
            let line = code_only(raw);
            if line.contains("std::sync::Mutex") {
                failures.push(format!(
                    "{rel}:{}: std::sync::Mutex — use the parking_lot shim",
                    i + 1
                ));
            }
            // `let guard = <expr>.lock();` … guard must not live across a
            // channel send/recv. Scan until the binding's indentation level
            // closes or the guard is dropped.
            let trimmed = line.trim_start();
            let Some(rest) = trimmed.strip_prefix("let ") else {
                continue;
            };
            if !line.contains(".lock()") || line.contains(".lock().") {
                continue; // temporary guard, dropped at end of statement
            }
            let Some(name) = rest
                .split(['=', ':'])
                .next()
                .map(|s| s.trim().trim_start_matches("mut ").trim().to_string())
            else {
                continue;
            };
            if name.is_empty()
                || name == "_"
                || !name.chars().all(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            let indent = raw.len() - raw.trim_start().len();
            for later in lines.iter().skip(i + 1).take(60) {
                let lcode = code_only(later);
                let ltrim = later.trim_start();
                if ltrim.is_empty() {
                    continue;
                }
                let lindent = later.len() - ltrim.len();
                if lindent < indent || lcode.contains(&format!("drop({name})")) {
                    break; // scope closed or guard released
                }
                if ["send(", ".recv(", "try_send(", "try_recv(", "recv_timeout("]
                    .iter()
                    .any(|p| lcode.contains(p))
                {
                    failures.push(format!(
                        "{rel}:{}: lock guard `{name}` (bound line {}) held across a \
                         channel send/recv — release it first",
                        i + 1,
                        i + 1
                    ));
                    break;
                }
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn every_ta_code_is_documented_in_design_md() {
    let root = repo_root();
    // Only the registry itself (tests may use fabricated codes).
    let diag = non_test_lines(&root.join("crates/plan/src/diag.rs")).join("\n");
    let design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap();
    let mut missing = Vec::new();
    let mut found_any = false;
    for (i, _) in diag.match_indices("(\"TA") {
        let code: String = diag[i + 2..].chars().take_while(|c| *c != '"').collect();
        if code.len() != 5 || !code[2..].chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        found_any = true;
        if !design.contains(&code) {
            missing.push(code);
        }
    }
    assert!(
        found_any,
        "no TA codes found in diag.rs — lint out of date?"
    );
    missing.sort();
    missing.dedup();
    assert!(
        missing.is_empty(),
        "TA codes registered in crates/plan/src/diag.rs but undocumented in DESIGN.md §9: \
         {missing:?}"
    );
}
