//! Integration tests for the adaptive machinery across crates: rule-driven
//! collector policies, query scrambling, contingent planning (choose
//! nodes), and re-optimization — the behaviours §1.2 promises.

use std::time::Duration;

use tukwila::exec::{run_fragment, ExecEnv, FragmentOutcome, PlanRuntime};
use tukwila::plan::{
    Action, Condition, EventKind, EventPattern, JoinKind, PlanBuilder, Rule, SubjectRef,
};
use tukwila::prelude::*;

fn keyed(name: &str, n: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(Tuple::new(vec![Value::Int(i % 10), Value::Int(i)]));
    }
    r
}

/// The paper's §1.3 "rescheduling" narrative: if source A times out, the
/// independent join D⋈E executes preemptively; A's fragment is retried
/// afterwards and succeeds once the source recovers.
#[test]
fn query_scrambling_runs_independent_fragment_first() {
    let registry = SourceRegistry::new();
    let stall = LinkModel {
        stall_after: Some(3),
        stall_duration: Duration::from_millis(250),
        ..LinkModel::instant()
    };
    registry.register(SimulatedSource::new("A", keyed("a", 40), stall));
    registry.register(SimulatedSource::new(
        "B",
        keyed("b", 40),
        LinkModel::instant(),
    ));
    registry.register(SimulatedSource::new(
        "D",
        keyed("d", 40),
        LinkModel::instant(),
    ));
    registry.register(SimulatedSource::new(
        "E",
        keyed("e", 40),
        LinkModel::instant(),
    ));

    let mut b = PlanBuilder::new();
    let a = b.wrapper_scan_opts("A", Some(40), None);
    let a_id = a.id;
    let bs = b.wrapper_scan("B");
    let ab = b.join(JoinKind::DoublePipelined, a, bs, "k", "k");
    let f_ab = b.fragment(ab, "mat_ab");
    b.add_local_rule(f_ab, Rule::reschedule_on_timeout(f_ab, a_id));

    let d = b.wrapper_scan("D");
    let e = b.wrapper_scan("E");
    let de = b.join(JoinKind::DoublePipelined, d, e, "k", "k");
    let f_de = b.fragment(de, "mat_de");

    let ab_scan = b.table_scan("mat_ab");
    let de_scan = b.table_scan("mat_de");
    let top = b.join(JoinKind::DoublePipelined, ab_scan, de_scan, "a.k", "d.k");
    let f_top = b.fragment(top, "result");
    b.depends(f_ab, f_top);
    b.depends(f_de, f_top);
    let plan = b.build(f_top);

    let env = ExecEnv::new(registry);
    let rt = PlanRuntime::for_plan(&plan, env.clone());

    // First attempt at AB stalls and is rescheduled by its rule.
    let r1 = run_fragment(&plan, f_ab, &rt).unwrap();
    assert_eq!(r1.outcome, FragmentOutcome::Rescheduled);

    // Scrambling: run the independent DE fragment while A recovers.
    let r2 = run_fragment(&plan, f_de, &rt).unwrap();
    assert!(matches!(r2.outcome, FragmentOutcome::Completed { .. }));

    // Retry AB — the stall has passed. (Reset restores plan-default
    // activation undone by the aborted run's cancellation.)
    rt.reset_fragment(plan.fragment(f_ab).unwrap());
    let r3 = run_fragment(&plan, f_ab, &rt).unwrap();
    assert!(
        matches!(r3.outcome, FragmentOutcome::Completed { .. }),
        "retry after scrambling should succeed: {:?}",
        r3.outcome
    );

    let r4 = run_fragment(&plan, f_top, &rt).unwrap();
    assert!(matches!(r4.outcome, FragmentOutcome::Completed { .. }));
    assert!(env.local.cardinality("result").unwrap() > 0);
}

/// Contingent planning (choose nodes, §3.1.2): a rule at a fragment's close
/// selects which alternative fragment runs next based on the observed
/// result cardinality.
#[test]
fn choose_node_selects_fragment_by_observed_cardinality() {
    let registry = SourceRegistry::new();
    registry.register(SimulatedSource::new(
        "S",
        keyed("s", 50),
        LinkModel::instant(),
    ));
    registry.register(SimulatedSource::new(
        "ALT1",
        keyed("x", 5),
        LinkModel::instant(),
    ));
    registry.register(SimulatedSource::new(
        "ALT2",
        keyed("y", 7),
        LinkModel::instant(),
    ));

    let mut b = PlanBuilder::new();
    let s = b.wrapper_scan("S");
    let s_id = s.id;
    let f0 = b.fragment(s, "mat_s");
    let alt1 = b.wrapper_scan("ALT1");
    let f1 = b.contingent_fragment(alt1, "result");
    let alt2 = b.wrapper_scan("ALT2");
    let f2 = b.contingent_fragment(alt2, "result");
    b.depends(f0, f1);
    b.depends(f0, f2);

    // when closed(f0): if card(scan) ≥ 30 activate f1 else activate f2
    let big = Condition::Cmp {
        lhs: tukwila::plan::Quantity::Card(SubjectRef::Op(s_id)),
        op: tukwila::plan::CmpOp::Ge,
        rhs: tukwila::plan::Quantity::Const(30.0),
    };
    b.add_local_rule(
        f0,
        Rule::new(
            "choose-big",
            SubjectRef::Fragment(f0),
            EventPattern::new(EventKind::Closed, SubjectRef::Fragment(f0)),
            big.clone(),
            vec![Action::Activate(SubjectRef::Fragment(f1))],
        ),
    );
    b.add_local_rule(
        f0,
        Rule::new(
            "choose-small",
            SubjectRef::Fragment(f0),
            EventPattern::new(EventKind::Closed, SubjectRef::Fragment(f0)),
            Condition::Not(Box::new(big)),
            vec![Action::Activate(SubjectRef::Fragment(f2))],
        ),
    );
    let plan = b.build(f1);

    let env = ExecEnv::new(registry);
    let rt = PlanRuntime::for_plan(&plan, env.clone());
    assert!(!rt.is_active(SubjectRef::Fragment(f1)));
    assert!(!rt.is_active(SubjectRef::Fragment(f2)));

    let r = run_fragment(&plan, f0, &rt).unwrap();
    assert!(matches!(r.outcome, FragmentOutcome::Completed { .. }));
    // 50 tuples ≥ 30 → the "big" branch activates
    assert!(rt.is_active(SubjectRef::Fragment(f1)));
    assert!(!rt.is_active(SubjectRef::Fragment(f2)));

    let r = run_fragment(&plan, f1, &rt).unwrap();
    assert!(matches!(r.outcome, FragmentOutcome::Completed { .. }));
    assert_eq!(env.local.cardinality("result"), Some(5));
}

/// The paper's full collector example policy (§4.1): contact A and B;
/// whichever delivers 10 tuples first kills the other; if A times out
/// before B reaches 10 tuples, C is activated and both others are killed.
#[test]
fn paper_collector_policy_timeout_path() {
    let registry = SourceRegistry::new();
    // A stalls immediately; B trickles slowly; C is fast.
    registry.register(SimulatedSource::new(
        "A",
        keyed("a", 100),
        LinkModel {
            stall_after: Some(0),
            stall_duration: Duration::from_secs(3600),
            ..LinkModel::instant()
        },
    ));
    registry.register(SimulatedSource::new(
        "B",
        keyed("b", 100),
        LinkModel {
            per_tuple: Duration::from_millis(15),
            ..LinkModel::instant()
        },
    ));
    registry.register(SimulatedSource::new(
        "C",
        keyed("c", 100),
        LinkModel::instant(),
    ));

    let mut b = PlanBuilder::new();
    let (coll, ids) =
        b.collector_with_timeout(&[("A", true), ("B", true), ("C", false)], None, Some(60));
    let coll_id = coll.id;
    let (a, bb, c) = (
        SubjectRef::Op(ids[0]),
        SubjectRef::Op(ids[1]),
        SubjectRef::Op(ids[2]),
    );
    let f = b.fragment(coll, "result");
    let owner = SubjectRef::Op(coll_id);
    b.add_local_rule(
        f,
        Rule::new(
            "a-wins",
            owner,
            EventPattern::with_value(EventKind::Threshold, a, 10),
            Condition::True,
            vec![Action::Deactivate(bb)],
        ),
    );
    b.add_local_rule(
        f,
        Rule::new(
            "b-wins",
            owner,
            EventPattern::with_value(EventKind::Threshold, bb, 10),
            Condition::True,
            vec![Action::Deactivate(a)],
        ),
    );
    b.add_local_rule(
        f,
        Rule::new(
            "a-timeout",
            owner,
            EventPattern::new(EventKind::Timeout, a),
            Condition::True,
            vec![
                Action::Activate(c),
                Action::Deactivate(bb),
                Action::Deactivate(a),
            ],
        ),
    );
    let plan = b.build(f);
    tukwila::plan::validate_plan(&plan).unwrap();

    let env = ExecEnv::new(registry);
    let rt = PlanRuntime::for_plan(&plan, env.clone());
    let r = run_fragment(&plan, f, &rt).unwrap();
    assert!(matches!(r.outcome, FragmentOutcome::Completed { .. }));
    let result = env.local.get("result").unwrap();
    // C delivered everything; A was stuck at 0; B was killed before 10.
    assert!(result.len() >= 100, "C must deliver its full 100");
    assert!(result.len() < 120, "B must have been killed early");
}

/// Re-optimization produces a different join order after a misestimate —
/// the §1.3 "re-optimization" narrative (Figure 1b → 1c).
#[test]
fn replanning_changes_join_order_after_misestimate() {
    let tables = [
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Partsupp,
        TpchTable::Part,
    ];
    // Selectivities 100× too high make the first plan start from the wrong
    // end; the first materialization exposes the error.
    let deployment = TpchDeployment::builder(0.004, 301)
        .tables(&tables)
        .stats(StatsQuality::MisestimatedSelectivities(100.0))
        .build();
    let query = deployment.query_for("reorder", &tables);
    let config = OptimizerConfig {
        policy: PipelinePolicy::MaterializeAndReplan,
        ..OptimizerConfig::default()
    };
    let system = deployment.system(config);
    let result = system.execute(&query).unwrap();
    assert!(result.stats.replans >= 1);
    let gold = deployment.gold(&query).unwrap();
    assert!(result.relation.bag_eq_unordered(&gold));
}
