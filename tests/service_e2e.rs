//! Service-tier acceptance: multi-client throughput scaling and
//! cache-on/cache-off result equivalence over the TPC-H deployment.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tukwila::prelude::*;

/// Fast-source mix: every source answers, but only after a network-style
/// initial delay — so query latency is wait-dominated and a concurrent
/// service overlaps the waits (the scaling the paper's setting implies:
/// the engine is mostly waiting on autonomous sources).
fn fast_mix_deployment(seed: u64) -> TpchDeployment {
    let wan = LinkModel {
        initial_delay: Duration::from_millis(8),
        ..LinkModel::instant()
    };
    TpchDeployment::builder(0.002, seed)
        .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
        .default_link(wan)
        .build()
}

fn service(d: &TpchDeployment, workers: usize, cache: Option<usize>) -> QueryService {
    QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers,
            queue_capacity: 64,
            cache_memory: cache,
            ..QueryServiceConfig::default()
        },
    )
}

/// Drive `total` queries through `svc` from `clients` closed-loop client
/// threads; returns queries/second.
fn drive(svc: &Arc<QueryService>, d: &TpchDeployment, clients: usize, total: usize) -> f64 {
    let q = d.query_for(
        "q3",
        &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
    );
    let per_client = total / clients;
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            let svc = svc.clone();
            let q = q.clone();
            s.spawn(move || {
                for _ in 0..per_client {
                    let resp = svc.submit(&q).expect("admitted").wait();
                    assert!(resp.is_ok(), "query failed: {:?}", resp.outcome.err());
                }
            });
        }
    });
    (clients * per_client) as f64 / start.elapsed().as_secs_f64()
}

#[test]
fn sixteen_clients_at_least_double_single_client_throughput() {
    // Cache off for both sides: the comparison isolates concurrency
    // (overlapped source waits), not result reuse.
    let d = fast_mix_deployment(7);
    let single = Arc::new(service(&d, 1, None));
    let qps_1 = drive(&single, &d, 1, 16);
    drop(single);

    let fleet = Arc::new(service(&d, 16, None));
    let qps_16 = drive(&fleet, &d, 16, 48);
    let s = fleet.stats();
    assert_eq!(s.completed as usize, 48);
    drop(fleet);

    assert!(
        qps_16 >= 2.0 * qps_1,
        "16 clients must at least double 1-client throughput on the \
         fast-source mix: got {qps_16:.1} qps vs {qps_1:.1} qps"
    );
}

#[test]
fn cache_on_and_off_agree_byte_for_byte_and_cache_hits() {
    // Two deployments from the same seed serve identical data; one service
    // caches source results, the other does not.
    let d_on = fast_mix_deployment(11);
    let d_off = fast_mix_deployment(11);
    let on = Arc::new(service(&d_on, 4, Some(16 << 20)));
    let off = Arc::new(service(&d_off, 4, None));

    let tables = [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier];
    let q_on = d_on.query_for("q", &tables);
    let q_off = d_off.query_for("q", &tables);

    // Several concurrent clients issuing the same query: the cached
    // service fetches each source once and serves the rest from memory.
    let run = |svc: &Arc<QueryService>, q: &ConjunctiveQuery| -> Vec<Arc<Relation>> {
        std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let svc = svc.clone();
                    let q = q.clone();
                    s.spawn(move || {
                        (0..2)
                            .map(|_| {
                                svc.submit(&q)
                                    .expect("admitted")
                                    .wait()
                                    .outcome
                                    .expect("query ok")
                                    .relation
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    };

    let results_on = run(&on, &q_on);
    let results_off = run(&off, &q_off);

    let cache = on.cache_stats().expect("cache installed");
    assert!(
        cache.hits > 0,
        "8 identical queries must produce cache hits"
    );
    assert!(cache.misses >= tables.len() as u64);
    assert_eq!(off.cache_stats(), None);

    // Byte-for-byte equivalence: canonicalized tuple streams are equal
    // across every run, cache-on and cache-off alike.
    let reference = results_off[0].sorted_tuples();
    for r in results_on.iter().chain(results_off.iter()) {
        assert_eq!(
            r.sorted_tuples(),
            reference,
            "cache must not change results"
        );
    }
}
