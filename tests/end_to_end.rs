//! Workspace integration tests: full-system queries across every crate
//! (generator → sources → reformulator → optimizer → engine → result),
//! verified against the trusted gold evaluator.

use tukwila::prelude::*;

const SF: f64 = 0.003;

fn check(deployment: &TpchDeployment, query: &ConjunctiveQuery, config: OptimizerConfig) {
    let system = deployment.system(config);
    let result = system
        .execute(query)
        .unwrap_or_else(|e| panic!("query `{}` failed: {e}", query.name));
    let gold = deployment.gold(query).expect("gold evaluation");
    assert!(
        result.relation.bag_eq_unordered(&gold),
        "query `{}`: got {}, want {}",
        query.name,
        result.relation.len(),
        gold.len()
    );
}

#[test]
fn every_two_table_fk_join_matches_gold() {
    let deployment = TpchDeployment::builder(SF, 101).build();
    for (tables, _) in tukwila::tpchgen::all_k_table_joins(2, &[]) {
        let query = deployment.query_for(
            &format!("j2-{}-{}", tables[0].name(), tables[1].name()),
            &tables,
        );
        check(&deployment, &query, OptimizerConfig::default());
    }
}

#[test]
fn three_table_joins_without_lineitem_match_gold() {
    let deployment = TpchDeployment::builder(SF, 103).build();
    for (tables, _) in tukwila::tpchgen::all_k_table_joins(3, &[TpchTable::Lineitem]) {
        let name = tables
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join("-");
        let query = deployment.query_for(&format!("j3-{name}"), &tables);
        check(&deployment, &query, OptimizerConfig::default());
    }
}

#[test]
fn fig5_workload_all_policies_match_gold() {
    let deployment = TpchDeployment::builder(0.002, 105)
        .stats(StatsQuality::MisestimatedSelectivities(25.0))
        .build();
    for (tables, _) in tukwila::tpchgen::fig5_queries() {
        let name = tables
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join("-");
        for policy in [
            PipelinePolicy::MaterializeEachJoin,
            PipelinePolicy::MaterializeAndReplan,
            PipelinePolicy::FullyPipelined,
        ] {
            let config = OptimizerConfig {
                policy,
                ..OptimizerConfig::default()
            };
            let query = deployment.query_for(&format!("fig5-{name}"), &tables);
            check(&deployment, &query, config);
        }
    }
}

#[test]
fn tight_memory_still_correct_with_both_overflow_strategies() {
    let deployment = TpchDeployment::builder(0.004, 107)
        .tables(&[TpchTable::Part, TpchTable::Partsupp])
        .build();
    let query = deployment.query_for("overflow", &[TpchTable::Part, TpchTable::Partsupp]);
    // budget far below the ~both-tables-resident demand of the DPJ
    for budget in [32 << 10, 128 << 10] {
        let config = OptimizerConfig {
            policy: PipelinePolicy::FullyPipelined,
            join_memory_budget: budget,
            ..OptimizerConfig::default()
        };
        check(&deployment, &query, config);
    }
}

#[test]
fn lineitem_query_at_scale_matches_gold() {
    // the paper's Figure 3a join: lineitem ⋈ supplier ⋈ orders
    let tables = [TpchTable::Lineitem, TpchTable::Supplier, TpchTable::Orders];
    let deployment = TpchDeployment::builder(0.001, 109).tables(&tables).build();
    let query = deployment.query_for("fig3a", &tables);
    check(&deployment, &query, OptimizerConfig::default());
}

#[test]
fn filters_and_projection_apply() {
    let deployment = TpchDeployment::builder(SF, 111)
        .tables(&[TpchTable::Nation, TpchTable::Supplier])
        .build();
    let query = deployment
        .query_for("filtered", &[TpchTable::Supplier, TpchTable::Nation])
        .filter(Predicate::eq_lit("nation.n_name", "FRANCE"))
        .project(vec!["supplier.s_name".into(), "nation.n_name".into()]);
    let system = deployment.system(OptimizerConfig::default());
    let result = system.execute(&query).expect("filtered query");
    assert_eq!(result.relation.schema().arity(), 2);
    for t in result.relation.tuples() {
        assert_eq!(t.value(1), &Value::str("FRANCE"));
    }
    // cross-check cardinality against gold + manual filter
    let gold = deployment
        .gold(&deployment.query_for("g", &[TpchTable::Supplier, TpchTable::Nation]))
        .unwrap();
    let idx = gold.schema().index_of("nation.n_name").unwrap();
    let expected = gold
        .tuples()
        .iter()
        .filter(|t| t.value(idx) == &Value::str("FRANCE"))
        .count();
    assert_eq!(result.relation.len(), expected);
}

#[test]
fn partial_planning_converges_on_multi_join_query() {
    let tables = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Customer,
        TpchTable::Orders,
    ];
    let deployment = TpchDeployment::builder(SF, 113)
        .tables(&tables)
        .stats(StatsQuality::Unknown)
        .build();
    let query = deployment.query_for("partial", &tables);
    let system = deployment.system(OptimizerConfig::default());
    let result = system.execute(&query).expect("interleaved planning");
    let gold = deployment.gold(&query).unwrap();
    assert!(result.relation.bag_eq_unordered(&gold));
    assert!(result.stats.replans >= 1);
}

#[test]
fn file_backed_spill_store_round_trips() {
    use std::sync::Arc;
    use tukwila::exec::ExecEnv;
    use tukwila::storage::FileSpillStore;

    let deployment = TpchDeployment::builder(0.004, 115)
        .tables(&[TpchTable::Part, TpchTable::Partsupp])
        .build();
    let query = deployment.query_for("file-spill", &[TpchTable::Part, TpchTable::Partsupp]);

    // assemble a system manually so we can swap the spill store
    let reformulator = Reformulator::new(deployment.mediated.clone());
    let config = OptimizerConfig {
        policy: PipelinePolicy::FullyPipelined,
        join_memory_budget: 64 << 10,
        ..OptimizerConfig::default()
    };
    let optimizer = Optimizer::new(deployment.catalog.clone(), config);
    let env = ExecEnv::new(deployment.registry.clone())
        .with_spill(Arc::new(FileSpillStore::new().unwrap()));
    let spill = env.spill.clone();
    let system = TukwilaSystem::new(reformulator, optimizer, env);

    let result = system.execute(&query).expect("file-spill query");
    let gold = deployment.gold(&query).unwrap();
    assert!(result.relation.bag_eq_unordered(&gold));
    assert!(
        spill.stats().tuples_written() > 0,
        "the tight budget must force real file spills"
    );
}
