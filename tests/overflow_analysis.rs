//! Reproduction of the paper's §4.2.3 analytical I/O model as executable
//! properties (experiment A423 in DESIGN.md).
//!
//! Setup mirrors the analysis: two unsorted relations A (left) and B
//! (right) of equal tuple size and equal cardinality N, memory holding M
//! tuples; costs are counted in tuples written + read, ignoring the
//! unavoidable network input and result output.
//!
//! Checked claims:
//!   1. no overflow ⇒ zero spill I/O;
//!   2. Incremental Left Flush performs no more I/Os than Incremental
//!      Symmetric Flush ("our analysis suggests that incremental left-flush
//!      will perform fewer disk I/Os than the symmetric strategy");
//!   3. when B fits after the pause (M/2 ≤ N ≤ M), Left Flush writes about
//!      N − M/2 tuples — the paper's 2N − M total I/O figure;
//!   4. both strategies' I/O grows with N and shrinks with M;
//!   5. results stay exactly correct under every strategy (checked by bag
//!      equality against the gold join).

use std::time::Duration;

use proptest::prelude::*;

use tukwila::exec::{build_operator, run_fragment, ExecEnv, FragmentOutcome, PlanRuntime};
use tukwila::plan::{OverflowMethod, PlanBuilder};
use tukwila::prelude::*;

/// Relation of `n` tuples with unique keys 0..n and a fixed-width payload.
fn uniform_relation(name: &str, n: usize) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("pay", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(Tuple::new(vec![
            Value::Int(i as i64),
            Value::Int((i * 7) as i64),
        ]));
    }
    r
}

/// Execute `A ⋈ B` with the double pipelined join under `method` and a
/// budget of `m_tuples` tuples; returns (written, read, result_card).
///
/// The paper's analysis assumes the two inputs arrive at *equal transfer
/// rates* ("of equal tuple size and data transfer rate"); `paced` gives
/// both sources the same per-tuple delay so arrivals interleave evenly.
/// Unpaced (instant) links let one side race ahead, where footnote 3's
/// skip-storage optimization changes the memory profile — fine for
/// correctness checks, wrong for the I/O-formula checks.
fn run_dpj_with(
    n: usize,
    m_tuples: usize,
    method: OverflowMethod,
    paced: bool,
) -> (usize, usize, usize) {
    let a = uniform_relation("a", n);
    let b = uniform_relation("b", n);
    let tuple_bytes = a.tuples()[0].mem_size();
    let budget = m_tuples * tuple_bytes;

    let link = if paced {
        LinkModel {
            per_tuple: Duration::from_micros(80),
            ..LinkModel::instant()
        }
    } else {
        LinkModel::instant()
    };
    let registry = SourceRegistry::new();
    registry.register(SimulatedSource::new("A", a, link.clone()));
    registry.register(SimulatedSource::new("B", b, link));

    let mut builder = PlanBuilder::new();
    let left = builder.wrapper_scan("A");
    let right = builder.wrapper_scan("B");
    let join = builder
        .dpj(left, right, "k", "k", method)
        .with_memory(budget);
    let frag = builder.fragment(join, "out");
    let plan = builder.build(frag);

    let env = ExecEnv::new(registry);
    let rt = PlanRuntime::for_plan(&plan, env.clone());
    let report = run_fragment(&plan, frag, &rt).expect("fragment");
    let card = match report.outcome {
        FragmentOutcome::Completed { cardinality, .. } => cardinality,
        other => panic!("unexpected outcome {other:?}"),
    };
    let stats = env.spill.stats();
    let _ = build_operator;
    let _ = Duration::ZERO;
    (stats.tuples_written(), stats.tuples_read(), card)
}

/// Paced variant used by the analytical checks.
fn run_dpj(n: usize, m_tuples: usize, method: OverflowMethod) -> (usize, usize, usize) {
    run_dpj_with(n, m_tuples, method, true)
}

#[test]
fn no_overflow_means_zero_io() {
    let (w, r, card) = run_dpj(300, 1000, OverflowMethod::IncrementalLeftFlush);
    assert_eq!((w, r), (0, 0));
    assert_eq!(card, 300);
}

#[test]
fn left_flush_writes_about_n_minus_half_m_when_b_fits() {
    // M/2 ≤ N ≤ M: the paper's first case — B never overflows; A flushes
    // N − M/2 tuples; total I/O 2N − M.
    let n = 600;
    let m = 800; // N ≤ M, N ≥ M/2
    let (w, r, card) = run_dpj(n, m, OverflowMethod::IncrementalLeftFlush);
    assert_eq!(card, n);
    let predicted_writes = n - m / 2;
    // The paper's figure idealizes two effects our implementation (and
    // theirs, per the §4.2.3 step 5 description) actually pays for: whole
    // buckets flush at a time, and phase-5 left tuples landing in flushed
    // buckets are written too. Both push writes above N − M/2 but keep
    // them well under 2×; zero or near-zero writes would mean the overflow
    // never engaged.
    assert!(
        w as f64 >= predicted_writes as f64 * 0.5
            && w as f64 <= predicted_writes as f64 * 2.0 + 64.0,
        "writes {w} should approximate N - M/2 = {predicted_writes}"
    );
    // every spilled tuple is read back exactly once in the cleanup
    assert_eq!(w, r, "total I/O = 2 × writes (paper counts 2N − M)");
}

#[test]
fn left_flush_beats_or_ties_symmetric_on_io() {
    // In the regime the paper analyses most carefully (B still fits after
    // the pause, M/2 ≤ N ≤ M), left flush should win *clearly*: it keeps
    // the whole right side in memory while symmetric spills both sides.
    let (wl, rl, _) = run_dpj(600, 800, OverflowMethod::IncrementalLeftFlush);
    let (ws, rs, _) = run_dpj(600, 800, OverflowMethod::IncrementalSymmetricFlush);
    assert!(
        (wl + rl) as f64 <= (ws + rs) as f64 * 0.9,
        "B-fits regime: left flush {}+{} should clearly beat symmetric {}+{}",
        wl,
        rl,
        ws,
        rs
    );
    // Deep overflow (N ≥ M): both degrade towards writing everything once;
    // left flush must not *exceed* symmetric beyond bucket-granularity
    // noise (3%).
    for (n, m) in [(800, 800), (1000, 800), (1500, 800)] {
        let (wl, rl, _) = run_dpj(n, m, OverflowMethod::IncrementalLeftFlush);
        let (ws, rs, _) = run_dpj(n, m, OverflowMethod::IncrementalSymmetricFlush);
        assert!(
            (wl + rl) as f64 <= (ws + rs) as f64 * 1.03 + 64.0,
            "N={n}, M={m}: left flush {}+{} should not exceed symmetric {}+{}",
            wl,
            rl,
            ws,
            rs
        );
    }
}

#[test]
fn io_monotone_in_n_and_antitone_in_m() {
    let io = |n, m, method| {
        let (w, r, _) = run_dpj(n, m, method);
        w + r
    };
    for method in [
        OverflowMethod::IncrementalLeftFlush,
        OverflowMethod::IncrementalSymmetricFlush,
    ] {
        let small_n = io(700, 600, method);
        let big_n = io(1400, 600, method);
        assert!(big_n > small_n, "{method:?}: more data ⇒ more I/O");
        let small_m = io(1000, 400, method);
        let big_m = io(1000, 1200, method);
        assert!(small_m > big_m, "{method:?}: more memory ⇒ less I/O");
    }
}

#[test]
fn flush_all_left_is_never_cheaper_than_incremental() {
    // the naive "convert to hybrid hash" strategy flushes the whole left
    // table immediately — for mild overflows that is strictly more I/O
    let (wi, ri, _) = run_dpj(700, 1100, OverflowMethod::IncrementalLeftFlush);
    let (wa, ra, _) = run_dpj(700, 1100, OverflowMethod::FlushAllLeft);
    assert!(
        wi + ri <= wa + ra,
        "incremental {wi}+{ri} vs flush-all {wa}+{ra}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactness under overflow: for random N and M the join result is
    /// exactly the 1:1 key match under every strategy.
    #[test]
    fn prop_overflow_preserves_exactness(
        n in 100usize..700,
        m_frac in 0.2f64..1.2,
        method_idx in 0usize..3,
    ) {
        let m = ((n as f64) * m_frac) as usize + 16;
        let method = [
            OverflowMethod::IncrementalLeftFlush,
            OverflowMethod::IncrementalSymmetricFlush,
            OverflowMethod::FlushAllLeft,
        ][method_idx];
        let (_, _, card) = run_dpj_with(n, m, method, false);
        prop_assert_eq!(card, n);
    }

    /// Conservation: every tuple written to spill is read back exactly once
    /// (nothing is lost or double-processed).
    #[test]
    fn prop_spill_reads_equal_writes(
        n in 200usize..800,
        m_frac in 0.3f64..0.9,
    ) {
        let m = ((n as f64) * m_frac) as usize + 16;
        let (w, r, _) = run_dpj_with(n, m, OverflowMethod::IncrementalLeftFlush, false);
        prop_assert_eq!(w, r);
    }
}
