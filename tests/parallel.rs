//! Intra-query parallelism integration tests: the DAG fragment scheduler
//! and partitioned exchange pipelines must be pure parallelizations —
//! multiset-equal to sequential execution on real multi-join queries,
//! under spill pressure, and interruptible by deadlines and client
//! cancellation mid-parallel-run.

use std::time::{Duration, Instant};

use tukwila::core::execute_plan;
use tukwila::exec::ExecEnv;
use tukwila::plan::{JoinKind, PlanBuilder};
use tukwila::prelude::*;

const SF: f64 = 0.003;

fn config(threads: usize) -> OptimizerConfig {
    OptimizerConfig {
        max_parallelism: threads,
        // Low threshold so the small SF=0.003 joins actually partition.
        parallel_min_rows: 16,
        ..OptimizerConfig::default()
    }
}

/// Every pipeline policy, executed with a 4-thread budget and exchange
/// lowering enabled, must agree with the sequential gold result.
#[test]
fn parallel_execution_matches_gold_across_policies() {
    let tables = [
        TpchTable::Region,
        TpchTable::Nation,
        TpchTable::Supplier,
        TpchTable::Partsupp,
    ];
    let d = TpchDeployment::builder(SF, 5).tables(&tables).build();
    let q = d.query_for("q4", &tables);
    let gold = d.gold(&q).unwrap();
    for policy in [
        PipelinePolicy::FullyPipelined,
        PipelinePolicy::MaterializeEachJoin,
        PipelinePolicy::MaterializeAndReplan,
        PipelinePolicy::Adaptive,
    ] {
        let mut cfg = config(4);
        cfg.policy = policy;
        let sys = d.system_threads(cfg, 4);
        let result = sys.execute(&q).unwrap();
        assert!(
            result.relation.bag_eq_unordered(&gold),
            "{policy:?} under 4 threads diverged: got {} tuples, want {}",
            result.relation.len(),
            gold.len()
        );
    }
}

/// Parallel partitions under a starved memory budget spill per partition
/// and still produce the exact result; the partition counters surface in
/// the execution stats.
#[test]
fn parallel_spilling_is_exact_and_attributed() {
    let tables = [TpchTable::Nation, TpchTable::Supplier, TpchTable::Partsupp];
    let d = TpchDeployment::builder(0.01, 11).tables(&tables).build();
    let q = d.query_for("q-spill", &tables);
    let gold = d.gold(&q).unwrap();
    let mut cfg = config(4);
    cfg.policy = PipelinePolicy::FullyPipelined;
    cfg.join_memory_budget = 20_000; // far below the partsupp join's need
    cfg.estimate_driven_memory = false;
    let sys = d.system_threads(cfg, 4);
    let result = sys.execute(&q).unwrap();
    assert!(
        result.relation.bag_eq_unordered(&gold),
        "spilling parallel run diverged: got {} tuples, want {}",
        result.relation.len(),
        gold.len()
    );
    assert!(result.stats.partitions >= 2, "joins must have partitioned");
    assert!(
        result.stats.spill_tuples_written > 0,
        "a 20KB budget must force spilling"
    );
    assert!(
        result
            .stats
            .partition_spills
            .iter()
            .map(|e| e.total())
            .sum::<u64>()
            > 0,
        "spill must be attributed to partitions"
    );
}

/// Independent fragments overlap under the DAG scheduler: two slow-source
/// join fragments run concurrently, so the whole query takes roughly one
/// stall instead of two — the Layer-1 payoff measured by `par_speedup`.
#[test]
fn independent_fragments_overlap_and_cut_latency() {
    let paced = LinkModel {
        per_tuple: Duration::from_micros(400),
        ..LinkModel::instant()
    };
    let run = |threads: usize| {
        let reg = SourceRegistry::new();
        let mk = |name: &str, n: i64| {
            let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
            let mut r = Relation::empty(schema);
            for i in 0..n {
                r.push(Tuple::new(vec![Value::Int(i), Value::Int(i)]));
            }
            r
        };
        for src in ["A", "B", "C", "D"] {
            reg.register(SimulatedSource::new(src, mk(src, 150), paced.clone()));
        }
        let mut b = PlanBuilder::new();
        let a = b.wrapper_scan("A");
        let bb = b.wrapper_scan("B");
        let j0 = b.join(JoinKind::DoublePipelined, a, bb, "k", "k");
        let f0 = b.fragment(j0, "mat0");
        let c = b.wrapper_scan("C");
        let dd = b.wrapper_scan("D");
        let j1 = b.join(JoinKind::DoublePipelined, c, dd, "k", "k");
        let f1 = b.fragment(j1, "mat1");
        let m0 = b.table_scan("mat0");
        let m1 = b.table_scan("mat1");
        let top = b.join(JoinKind::DoublePipelined, m0, m1, "A.k", "C.k");
        let f2 = b.fragment(top, "result");
        b.depends(f0, f2);
        b.depends(f1, f2);
        let plan = b.build(f2);
        let env = ExecEnv::new(reg).with_threads(threads);
        let start = Instant::now();
        let (rel, stats) = execute_plan(&plan, env).unwrap();
        (rel, stats, start.elapsed())
    };

    let (seq_rel, seq_stats, seq_time) = run(1);
    let (par_rel, par_stats, par_time) = run(4);
    assert!(seq_rel.bag_eq_unordered(&par_rel), "results diverged");
    assert_eq!(seq_stats.fragments_overlapped, 0);
    assert!(
        par_stats.fragments_overlapped >= 1,
        "independent fragments must have overlapped"
    );
    // Two ~60ms stalls overlapped into one; leave generous slack for a
    // noisy box but insist on a real cut.
    assert!(
        par_time.as_secs_f64() < seq_time.as_secs_f64() * 0.8,
        "parallel {par_time:?} should beat sequential {seq_time:?}"
    );
}

/// A deadline cancels a parallel multi-fragment run promptly and is
/// reported in the stats.
#[test]
fn deadline_cancels_parallel_fragments_promptly() {
    let stalling = LinkModel {
        stall_after: Some(5),
        stall_duration: Duration::from_secs(10),
        ..LinkModel::instant()
    };
    let tables = [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier];
    let d = TpchDeployment::builder(SF, 29)
        .tables(&tables)
        .link(TpchTable::Supplier, stalling)
        .build();
    let q = d.query_for("q-deadline", &tables);
    let mut cfg = config(4);
    cfg.policy = PipelinePolicy::MaterializeEachJoin;
    let sys = d.system_threads(cfg, 4);
    let control = QueryControl::with_deadline(Duration::from_millis(100));
    let mut stats = tukwila::core::ExecutionStats::default();
    let started = Instant::now();
    let err = sys
        .execute_controlled(&q, &control, &mut stats)
        .unwrap_err();
    assert_eq!(err.kind(), "deadline_exceeded");
    assert!(stats.deadline_exceeded);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline must interrupt stalled parallel fragments promptly"
    );
}

/// A client cancel lands mid-run while parallel fragments are in flight.
#[test]
fn client_cancel_interrupts_parallel_run() {
    let stalling = LinkModel {
        stall_after: Some(5),
        stall_duration: Duration::from_secs(10),
        ..LinkModel::instant()
    };
    let tables = [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier];
    let d = TpchDeployment::builder(SF, 37)
        .tables(&tables)
        .link(TpchTable::Nation, stalling)
        .build();
    let q = d.query_for("q-cancel", &tables);
    let mut cfg = config(4);
    cfg.policy = PipelinePolicy::MaterializeEachJoin;
    let sys = d.system_threads(cfg, 4);
    let control = QueryControl::unbounded();
    let canceller = {
        let control = control.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            control.cancel(CancelKind::User);
        })
    };
    let mut stats = tukwila::core::ExecutionStats::default();
    let started = Instant::now();
    let err = sys
        .execute_controlled(&q, &control, &mut stats)
        .unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err.kind(), "cancelled");
    assert!(stats.cancelled);
    assert!(started.elapsed() < Duration::from_secs(5));
}

/// Rescheduling still works when the stalled fragment has concurrent
/// siblings: the transient stall is retried and the query recovers, while
/// the healthy fragments' work is never abandoned.
#[test]
fn transient_stall_recovers_under_parallel_scheduler() {
    let stalling = LinkModel {
        stall_after: Some(5),
        stall_duration: Duration::from_millis(300),
        ..LinkModel::instant()
    };
    let tables = [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier];
    let d = TpchDeployment::builder(SF, 13)
        .tables(&tables)
        .link(TpchTable::Nation, stalling)
        .build();
    let q = d.query_for("q-stall", &tables);
    let gold = d.gold(&q).unwrap();
    let mut cfg = config(4);
    cfg.policy = PipelinePolicy::MaterializeEachJoin;
    cfg.source_timeout_ms = Some(50);
    cfg.reschedule_on_timeout = true;
    let mut sys = d.system_threads(cfg, 4);
    sys.max_fragment_retries = 5;
    let result = sys.execute(&q).unwrap();
    assert!(
        result.stats.reschedules >= 1,
        "the stalled fragment must have been rescheduled"
    );
    assert!(result.relation.bag_eq_unordered(&gold));
}

/// All four join kinds the optimizer can choose agree between sequential
/// and parallel execution (NLJ/SMJ run as passthroughs inside an
/// exchange, the hash joins partition for real).
#[test]
fn all_join_kinds_parallel_equals_sequential() {
    use std::collections::HashMap;
    use tukwila::exec::{drain, PlanRuntime};

    let mk = |name: &str, n: i64, nulls: bool| {
        let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            let k = if nulls && i % 11 == 0 {
                Value::Null
            } else {
                Value::Int(i % 15)
            };
            r.push(Tuple::new(vec![k, Value::Int(i)]));
        }
        r
    };
    let l = mk("l", 180, true);
    let r = mk("r", 150, true);
    let multiset = |ts: &[Tuple]| {
        let mut m: HashMap<Tuple, usize> = HashMap::new();
        for t in ts {
            *m.entry(t.clone()).or_insert(0) += 1;
        }
        m
    };

    for kind in [
        JoinKind::DoublePipelined,
        JoinKind::HybridHash,
        JoinKind::GraceHash,
        JoinKind::NestedLoops,
    ] {
        let run = |partitions: Option<usize>| {
            let reg = SourceRegistry::new();
            reg.register(SimulatedSource::new("L", l.clone(), LinkModel::instant()));
            reg.register(SimulatedSource::new("R", r.clone(), LinkModel::instant()));
            let mut b = PlanBuilder::new();
            let ls = b.wrapper_scan("L");
            let rs = b.wrapper_scan("R");
            let j = b.join(kind, ls, rs, "k", "k");
            let root = match partitions {
                Some(n) => b.exchange(j, n),
                None => j,
            };
            let f = b.fragment(root, "out");
            let plan = b.build(f);
            let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(reg));
            let mut op = tukwila::exec::build_operator(&plan.fragments[0].root, &rt).unwrap();
            drain(op.as_mut()).unwrap()
        };
        let sequential = run(None);
        let parallel = run(Some(4));
        assert_eq!(
            multiset(&parallel),
            multiset(&sequential),
            "{kind:?}: parallel diverged from sequential"
        );
    }
}
