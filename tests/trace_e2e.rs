//! End-to-end trace assertions: the structured event timeline a query
//! carries home must tell the adaptive-execution story in order — stall,
//! rule firing, reschedule, recovery — and concurrent queries must record
//! disjoint, internally ordered traces.

use std::time::Duration;

use tukwila::prelude::*;

const SF: f64 = 0.003;

const TABLES: [TpchTable; 3] = [TpchTable::Region, TpchTable::Nation, TpchTable::Supplier];

/// A transiently stalling source under timeout + reschedule rules leaves a
/// trace that reads, in order: source-stall → rule-fired → fragment-
/// rescheduled → fragment-completed → query-completed(ok). At `Metrics`
/// the per-operator table rides along.
#[test]
fn stall_reschedule_sequence_is_traced() {
    let stalling = LinkModel {
        stall_after: Some(5),
        stall_duration: Duration::from_millis(300),
        ..LinkModel::instant()
    };
    let d = TpchDeployment::builder(SF, 13)
        .tables(&TABLES)
        .link(TpchTable::Nation, stalling)
        .build();
    let q = d.query_for("q-stall", &TABLES);
    let cfg = OptimizerConfig {
        policy: PipelinePolicy::MaterializeEachJoin,
        source_timeout_ms: Some(50),
        reschedule_on_timeout: true,
        ..OptimizerConfig::default()
    };
    let mut sys = d.system(cfg);
    sys.max_fragment_retries = 5;

    // An externally owned control keeps its creator's level, so this runs
    // the whole query at `Metrics` regardless of the env default.
    let control = QueryControl::unbounded_traced(TraceLevel::Metrics);
    let mut stats = ExecutionStats::default();
    let result = sys.execute_controlled(&q, &control, &mut stats).unwrap();
    assert!(stats.reschedules >= 1, "scenario must reschedule");

    let trace = result.trace.expect("trace travels with the result");
    assert_eq!(trace.dropped, 0, "small query must fit the ring");
    let pos = |from: usize, pred: &dyn Fn(&TraceEvent) -> bool| -> usize {
        trace.events[from..]
            .iter()
            .position(|r| pred(&r.event))
            .map(|i| from + i)
            .unwrap_or_else(|| {
                panic!(
                    "event not found from index {from}; timeline:\n{}",
                    trace.render_timeline()
                )
            })
    };
    let stall = pos(0, &|e| matches!(e, TraceEvent::SourceStall { .. }));
    let fired = pos(
        stall,
        &|e| matches!(e, TraceEvent::RuleFired { trigger, .. } if trigger.contains("timeout")),
    );
    let resched = pos(fired, &|e| {
        matches!(e, TraceEvent::FragmentRescheduled { .. })
    });
    let done = pos(resched, &|e| {
        matches!(e, TraceEvent::FragmentCompleted { .. })
    });
    pos(
        done,
        &|e| matches!(e, TraceEvent::QueryCompleted { outcome } if outcome == "ok"),
    );

    // Metrics level: the operator table is populated and the scans
    // actually account for the rows they delivered.
    assert!(!trace.ops.is_empty(), "metrics level must sample operators");
    let scanned: u64 = trace
        .ops
        .iter()
        .filter(|m| m.name == "wrapper_scan")
        .map(|m| m.rows_out)
        .sum();
    assert!(scanned > 0, "wrapper scans must report rows_out");
}

/// Sixteen queries racing through one service: every per-query trace is
/// internally ordered (contiguous seq from 0) and disjoint from the
/// others (exactly one admission pair and one terminal event each).
#[test]
fn parallel_queries_have_disjoint_ordered_traces() {
    let d = TpchDeployment::builder(SF, 29).tables(&TABLES).build();
    let q = d.query_for("q-par", &TABLES);
    let svc = QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers: 4,
            queue_capacity: 16,
            ..QueryServiceConfig::default()
        },
    );

    let tickets: Vec<_> = (0..16).map(|_| svc.submit(&q).unwrap()).collect();
    for t in tickets {
        let resp = t.wait();
        let result = resp.outcome.expect("query succeeds");
        let trace = result.trace.expect("service default level is Events");
        assert!(!trace.events.is_empty());
        for (i, rec) in trace.events.iter().enumerate() {
            assert_eq!(
                rec.seq, i as u64,
                "seq must be contiguous from 0 (internally ordered, no \
                 cross-query contamination)"
            );
        }
        let count = |kind: &str| {
            trace
                .events
                .iter()
                .filter(|r| r.event.kind() == kind)
                .count()
        };
        assert_eq!(count("admission-enqueued"), 1);
        assert_eq!(count("admission-dequeued"), 1);
        assert_eq!(count("query-completed"), 1);
        assert_eq!(
            trace.events.last().unwrap().event.kind(),
            "query-completed",
            "terminal event closes the trace"
        );
    }
    let stats = svc.stats();
    assert_eq!(stats.completed, 16);
    assert!(stats.queue_depth_high_water >= 1);
    assert!(stats.trace_events > 0);
}

/// Per-query cache attribution: over a service with the shared
/// source-result cache, a repeated query's stats must show hits (and the
/// cold run, misses) — counted on the query's own `ExecutionStats`, not
/// just the global cache counters.
#[test]
fn repeated_query_attributes_cache_hits_per_query() {
    let d = TpchDeployment::builder(SF, 31).tables(&TABLES).build();
    let q = d.query_for("q-cache", &TABLES);
    let svc = QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers: 1,
            cache_memory: Some(32 << 20),
            ..QueryServiceConfig::default()
        },
    );
    let cold = svc.execute(&q);
    assert!(cold.is_ok());
    assert!(
        cold.stats.cache_misses > 0,
        "cold run fetches through the cache as leader"
    );
    assert_eq!(cold.stats.cache_hits, 0);
    let warm = svc.execute(&q);
    assert!(warm.is_ok());
    assert!(
        warm.stats.cache_hits > 0,
        "warm run replays cached source results"
    );
    assert_eq!(warm.stats.cache_misses, 0);
}
