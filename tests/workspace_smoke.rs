//! Workspace smoke test: the smallest end-to-end path through the system —
//! deploy two generated TPC-H tables behind simulated sources, plan and
//! execute a 2-table join, and check the result is nonempty. Fast enough
//! for tier-1; everything deeper lives in `end_to_end.rs` and
//! `adaptivity.rs`.

use tukwila::prelude::*;

#[test]
fn two_table_join_produces_rows() {
    let deployment = TpchDeployment::builder(0.002, 7)
        .tables(&[TpchTable::Region, TpchTable::Nation])
        .build();

    let query = deployment.query_for("nations", &[TpchTable::Region, TpchTable::Nation]);

    let system = deployment.system(OptimizerConfig::default());
    let result = system.execute(&query).expect("query should execute");

    // Every nation joins to exactly one region, so the join preserves the
    // nation cardinality.
    assert!(result.cardinality() > 0, "join produced no rows");
    assert_eq!(
        result.cardinality(),
        deployment.db.table(TpchTable::Nation).len()
    );
}
