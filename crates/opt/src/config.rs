//! Optimizer configuration knobs.

/// How the optimizer pipelines and fragments plans — the three strategies
/// of the interleaved-planning experiment (§6.4, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelinePolicy {
    /// One fully pipelined fragment for the whole query (Figure 5
    /// "Pipeline").
    FullyPipelined,
    /// Materialize after each join; no re-optimization rules (Figure 5
    /// "Materialize").
    MaterializeEachJoin,
    /// Materialize after each join and attach the `card ≥ factor ×
    /// est_card ⇒ replan` rule at every fragment end (Figure 5
    /// "Materialize and replan").
    MaterializeAndReplan,
    /// Cost-based: pipeline with double pipelined joins while estimated
    /// hash-table demand fits the join memory budget; break the pipeline
    /// (hybrid hash + materialization) above it — §1.3's small/large-table
    /// behaviour.
    Adaptive,
}

/// Strategy for re-optimization after a fragment completes (§6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptStrategy {
    /// Discard the memo and replan from scratch over the reduced query.
    Scratch,
    /// Reuse the saved dynamic program, following usage pointers to
    /// recompute only the entries affected by the new information.
    SavedWithPointers,
    /// Reuse the saved dynamic program but without usage pointers: every
    /// entry must be revisited and revalidated (the paper measured this as
    /// slower than scratch).
    SavedNoPointers,
}

/// Optimizer knobs.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Fragmentation / pipelining policy.
    pub policy: PipelinePolicy,
    /// Re-optimization strategy.
    pub reopt: ReoptStrategy,
    /// Replan when actual cardinality differs from the estimate by this
    /// factor (the paper's rule uses 2).
    pub replan_factor: f64,
    /// Memory cap per join operator, bytes. With
    /// [`OptimizerConfig::estimate_driven_memory`] the actual allocation is
    /// `min(cap, 1.3 × estimated input bytes)` — so joins whose inputs were
    /// underestimated receive insufficient memory and overflow, the §6.4
    /// mechanism ("many of the join operations were given insufficient
    /// memory because of poor selectivity estimates").
    pub join_memory_budget: usize,
    /// Size join memory from cardinality estimates (true reproduces the
    /// paper; false grants every join the full cap).
    pub estimate_driven_memory: bool,
    /// Above this estimated combined input size (bytes), a double
    /// pipelined join is considered too memory-hungry and hybrid hash is
    /// chosen instead (Adaptive policy).
    pub dpj_max_input_bytes: usize,
    /// Timeout attached to wrapper scans (None = no timeout rules).
    pub source_timeout_ms: Option<u64>,
    /// Attach reschedule-on-timeout rules (query scrambling).
    pub reschedule_on_timeout: bool,
    /// Fallback selectivity when the catalog has no estimate for a join
    /// column pair. `None` means unknown joins force a partial plan.
    pub fallback_selectivity: Option<f64>,
    /// Assumed tuple width (bytes) when the catalog lacks one.
    pub default_tuple_bytes: usize,
    /// Upper bound on the partition degree of exchange operators (1 =
    /// never emit an exchange; sequential joins). Defaults to the
    /// `TUKWILA_THREADS` environment variable, matching the engine's
    /// intra-query thread budget.
    pub max_parallelism: usize,
    /// Minimum estimated combined input cardinality before a join is
    /// worth partitioning; the chosen degree scales with the estimate
    /// (one partition per this many input rows, clamped to
    /// [`OptimizerConfig::max_parallelism`]).
    pub parallel_min_rows: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            policy: PipelinePolicy::Adaptive,
            reopt: ReoptStrategy::SavedWithPointers,
            replan_factor: 2.0,
            join_memory_budget: 8 << 20,
            estimate_driven_memory: true,
            dpj_max_input_bytes: 6 << 20,
            source_timeout_ms: None,
            reschedule_on_timeout: false,
            fallback_selectivity: Some(0.01),
            default_tuple_bytes: 96,
            max_parallelism: tukwila_common::env_parallelism(),
            parallel_min_rows: 1_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_adaptive_with_replan_factor_two() {
        let c = OptimizerConfig::default();
        assert_eq!(c.policy, PipelinePolicy::Adaptive);
        assert_eq!(c.replan_factor, 2.0);
        assert_eq!(c.reopt, ReoptStrategy::SavedWithPointers);
    }
}
