//! # tukwila-opt
//!
//! The Tukwila query optimizer (§3): a System-R style dynamic-programming
//! join enumerator extended with the paper's non-traditional features:
//!
//! * **Partial plans** — when essential statistics are missing, plan only
//!   the first steps and defer the rest until sources have been contacted
//!   (§3: "generate a partial plan with only the first steps specified").
//! * **Rule generation** — every emitted plan carries the
//!   event-condition-action rules that define its adaptive behaviour:
//!   re-optimization at materialization points (`card ≥ 2 × est_card ⇒
//!   replan`), rescheduling on source timeouts, overflow methods for double
//!   pipelined joins, and collector policies derived from catalog overlap
//!   information.
//! * **Saved optimizer state** (§6.5) — the dynamic program (the [`memo`])
//!   survives across re-optimizations, augmented with **usage pointers**
//!   from each subquery to the larger subqueries that use it, so corrected
//!   cardinalities invalidate only the affected part of the search space.
//!   All three strategies the paper compares are implemented:
//!   [`ReoptStrategy::Scratch`], [`ReoptStrategy::SavedWithPointers`], and
//!   [`ReoptStrategy::SavedNoPointers`].

pub mod config;
pub mod cost;
pub mod lower;
pub mod memo;
pub mod optimizer;

pub use config::{OptimizerConfig, PipelinePolicy, ReoptStrategy};
pub use cost::{CostModel, Estimate};
pub use memo::{JoinTree, Memo, RelMask};
pub use optimizer::{Observation, Optimizer, PlannedQuery};
