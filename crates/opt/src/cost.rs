//! The cost model.
//!
//! Tukwila costs plans for a network-bound environment where *time to
//! completion is dominated by transfer and spill I/O*, and where the
//! optimizer must reason with incomplete statistics. Estimates combine:
//!
//! * per-source transfer cost (latency + per-tuple transfer, from the
//!   catalog's [`tukwila_catalog::AccessCost`]),
//! * CPU cost per tuple flowing through a join,
//! * spill I/O penalties when a join's estimated memory demand exceeds its
//!   budget (hybrid hash: inner only; double pipelined: both inputs —
//!   §4.2.2's trade-off),
//! * a pipelining credit for the double pipelined join reflecting its
//!   overlap of transfer with computation (§6.2's observed completion-time
//!   advantage).
//!
//! All estimates are in abstract milliseconds; only relative order matters.

use tukwila_catalog::Catalog;

use crate::config::OptimizerConfig;

/// An estimated (cost, cardinality, width) triple for a subplan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Total cost in model-milliseconds.
    pub cost_ms: f64,
    /// Estimated output cardinality.
    pub card: f64,
    /// Estimated output tuple width in bytes.
    pub tuple_bytes: f64,
}

impl Estimate {
    /// Estimated total output volume in bytes.
    pub fn bytes(&self) -> f64 {
        self.card * self.tuple_bytes
    }
}

/// The cost model, parameterized by the optimizer config.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU cost per tuple through a join, model-ms.
    pub cpu_per_tuple_ms: f64,
    /// Spill I/O cost per tuple written or read, model-ms.
    pub io_per_tuple_ms: f64,
    /// Join memory budget, bytes.
    pub join_memory_budget: usize,
    /// Fraction of transfer time the double pipelined join hides by
    /// overlapping communication with computation.
    pub dpj_overlap_credit: f64,
}

impl CostModel {
    /// Model from config defaults.
    pub fn new(config: &OptimizerConfig) -> Self {
        CostModel {
            cpu_per_tuple_ms: 0.001,
            io_per_tuple_ms: 0.01,
            join_memory_budget: config.join_memory_budget,
            dpj_overlap_credit: 0.3,
        }
    }

    /// Estimate for scanning one source (or a collector over sources —
    /// costed as its cheapest member, since policies stop early).
    pub fn source_scan(
        &self,
        catalog: &Catalog,
        sources: &[String],
        default_tuple_bytes: usize,
    ) -> Option<Estimate> {
        let mut best: Option<Estimate> = None;
        for name in sources {
            let desc = catalog.source(name).ok()?;
            let card = catalog.cardinality(name)? as f64;
            let width = desc.stats.avg_tuple_bytes.unwrap_or(default_tuple_bytes) as f64;
            let cost = desc.cost.transfer_ms(card as usize);
            let est = Estimate {
                cost_ms: cost,
                card,
                tuple_bytes: width,
            };
            best = Some(match best {
                Some(b) if b.cost_ms <= est.cost_ms => b,
                _ => est,
            });
        }
        best
    }

    /// Join output cardinality: `|L| × |R| × selectivity`.
    pub fn join_card(&self, left: &Estimate, right: &Estimate, selectivity: f64) -> f64 {
        (left.card * right.card * selectivity).max(0.0)
    }

    /// Cost of a double pipelined join over the two inputs (both hash
    /// tables resident; spill penalty when their combined size exceeds the
    /// budget).
    pub fn dpj_cost(&self, left: &Estimate, right: &Estimate, out_card: f64) -> f64 {
        let input_tuples = left.card + right.card;
        let cpu = (input_tuples + out_card) * self.cpu_per_tuple_ms;
        let demand = left.bytes() + right.bytes();
        let overflow_bytes = (demand - self.join_memory_budget as f64).max(0.0);
        let avg_width = ((left.tuple_bytes + right.tuple_bytes) / 2.0).max(1.0);
        // overflowed tuples are written once and read once
        let io = 2.0 * (overflow_bytes / avg_width) * self.io_per_tuple_ms;
        // pipelining credit: the DPJ overlaps the inputs' transfer with
        // computation; its effective added cost shrinks.
        let transfer_credit =
            -(left.cost_ms + right.cost_ms).min(cpu.max(0.0)) * self.dpj_overlap_credit;
        cpu + io + transfer_credit
    }

    /// Cost of a hybrid hash join (right input = inner/build). The build
    /// phase blocks; only the inner's spill overflow is charged.
    pub fn hybrid_cost(&self, left: &Estimate, right: &Estimate, out_card: f64) -> f64 {
        let cpu = (left.card + right.card + out_card) * self.cpu_per_tuple_ms;
        let overflow_bytes = (right.bytes() - self.join_memory_budget as f64).max(0.0);
        let overflow_tuples = overflow_bytes / right.tuple_bytes.max(1.0);
        // inner overflow partitions are written+read; the matching share of
        // the probe side is also diverted
        let probe_share = if right.bytes() > 0.0 {
            (overflow_bytes / right.bytes()).min(1.0)
        } else {
            0.0
        };
        let io = 2.0 * (overflow_tuples + probe_share * left.card) * self.io_per_tuple_ms;
        cpu + io
    }

    /// Pick the cheaper asymmetric orientation for a hybrid hash join:
    /// returns `(cost, inner_is_right)`, preferring the smaller side as the
    /// build relation.
    pub fn best_hybrid(&self, a: &Estimate, b: &Estimate, out_card: f64) -> (f64, bool) {
        let b_inner = self.hybrid_cost(a, b, out_card);
        let a_inner = self.hybrid_cost(b, a, out_card);
        if b_inner <= a_inner {
            (b_inner, true)
        } else {
            (a_inner, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_catalog::{AccessCost, SourceDesc, TableStats};
    use tukwila_common::{DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::of("t", &[("k", DataType::Int)]);
        c.add_source(
            SourceDesc::new("small", "t", schema.clone())
                .with_stats(TableStats::new(100, 50))
                .with_cost(AccessCost::new(5.0, 0.1)),
        );
        c.add_source(
            SourceDesc::new("big", "t", schema.clone())
                .with_stats(TableStats::new(100_000, 50))
                .with_cost(AccessCost::new(5.0, 0.1)),
        );
        c.add_source(SourceDesc::new("unknown", "t", schema));
        c
    }

    fn model() -> CostModel {
        CostModel::new(&OptimizerConfig::default())
    }

    #[test]
    fn source_scan_costs_transfer() {
        let m = model();
        let est = m.source_scan(&catalog(), &["small".into()], 96).unwrap();
        assert_eq!(est.card, 100.0);
        assert_eq!(est.cost_ms, 5.0 + 0.1 * 100.0);
        assert_eq!(est.tuple_bytes, 50.0);
    }

    #[test]
    fn unknown_source_yields_none() {
        let m = model();
        assert!(m.source_scan(&catalog(), &["unknown".into()], 96).is_none());
        // a collector with one known member costs as the known one
        assert!(m
            .source_scan(&catalog(), &["small".into(), "big".into()], 96)
            .is_some());
    }

    #[test]
    fn collector_costed_as_cheapest_member() {
        let m = model();
        let est = m
            .source_scan(&catalog(), &["big".into(), "small".into()], 96)
            .unwrap();
        assert_eq!(est.card, 100.0, "cheapest member is the small mirror");
    }

    #[test]
    fn smaller_inner_preferred_for_hybrid() {
        let m = model();
        let small = Estimate {
            cost_ms: 10.0,
            card: 100.0,
            tuple_bytes: 50.0,
        };
        let big = Estimate {
            cost_ms: 1000.0,
            card: 1_000_000.0,
            tuple_bytes: 50.0,
        };
        let (_, inner_is_right) = m.best_hybrid(&big, &small, 1000.0);
        assert!(inner_is_right, "small right side should build");
        let (_, inner_is_right2) = m.best_hybrid(&small, &big, 1000.0);
        assert!(!inner_is_right2, "sides swapped → inner flips");
    }

    #[test]
    fn dpj_overflow_penalized() {
        let m = model();
        let fits = Estimate {
            cost_ms: 1.0,
            card: 100.0,
            tuple_bytes: 50.0,
        };
        let huge = Estimate {
            cost_ms: 1.0,
            card: 10_000_000.0,
            tuple_bytes: 50.0,
        };
        let cheap = m.dpj_cost(&fits, &fits, 100.0);
        let costly = m.dpj_cost(&huge, &huge, 100.0);
        assert!(costly > cheap * 100.0);
    }

    #[test]
    fn join_card_multiplies_selectivity() {
        let m = model();
        let a = Estimate {
            cost_ms: 0.0,
            card: 1000.0,
            tuple_bytes: 50.0,
        };
        let b = Estimate {
            cost_ms: 0.0,
            card: 200.0,
            tuple_bytes: 50.0,
        };
        assert_eq!(m.join_card(&a, &b, 0.005), 1000.0);
    }
}
