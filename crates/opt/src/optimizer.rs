//! The optimizer facade: planning, partial planning, and incremental
//! re-optimization.
//!
//! The interleaved planning/execution loop (crate `tukwila-core`) drives
//! this interface:
//!
//! 1. [`Optimizer::plan`] — produce a (possibly partial) plan for a
//!    reformulated query;
//! 2. execute fragments, collecting [`Observation`]s (true cardinalities of
//!    fully-read sources and of materialized fragment results);
//! 3. [`Optimizer::replan`] — fold the observations into the catalog and
//!    the saved memo (per the configured [`crate::ReoptStrategy`]) and emit
//!    a corrected plan for the remaining work.

use std::collections::HashMap;

use tukwila_catalog::Catalog;
use tukwila_common::{Result, TukwilaError};
use tukwila_query::ReformulatedQuery;

use crate::config::{OptimizerConfig, ReoptStrategy};
use crate::cost::{CostModel, Estimate};
use crate::lower::{LoweredPlan, Lowerer};
use crate::memo::{EdgeSpec, JoinTree, Memo, RelMask};

/// A runtime-observed cardinality, reported back by the engine (§3.2: the
/// execution system "sends back information about operator state and
/// cardinalities so the optimizer will have more accurate statistics").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// Source name or materialization name (`mat_*`).
    pub name: String,
    /// Observed cardinality.
    pub cardinality: usize,
}

/// A plan plus the saved optimizer state needed to replan incrementally.
pub struct PlannedQuery {
    /// The lowered plan (fragments, rules) and fragment→mask mapping.
    pub lowered: LoweredPlan,
    /// Saved search-space state (None when planning was purely heuristic —
    /// a partial plan emitted with no statistics at all).
    pub memo: Option<Memo>,
}

/// The Tukwila query optimizer.
pub struct Optimizer {
    catalog: Catalog,
    config: OptimizerConfig,
    model: CostModel,
    /// Pins accumulated across re-optimizations: subquery mask → observed
    /// estimate of its materialization.
    pins: HashMap<RelMask, Estimate>,
}

impl Optimizer {
    /// Build an optimizer over a catalog snapshot.
    pub fn new(catalog: Catalog, config: OptimizerConfig) -> Self {
        let model = CostModel::new(&config);
        Optimizer {
            catalog,
            config,
            model,
            pins: HashMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// The catalog (with any observations folded in).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Leaf estimates for every relation in the query (None = statistics
    /// missing).
    fn leaf_estimates(&self, rq: &ReformulatedQuery) -> Vec<Option<Estimate>> {
        rq.leaves
            .iter()
            .map(|leaf| {
                self.model.source_scan(
                    &self.catalog,
                    &leaf.sources,
                    self.config.default_tuple_bytes,
                )
            })
            .collect()
    }

    /// Join edges with selectivity estimates. Edges whose selectivity is
    /// unknown get the configured fallback (or `None`, forcing a partial
    /// plan).
    fn edges(&self, rq: &ReformulatedQuery) -> Result<Vec<EdgeSpec>> {
        let rel_index = |name: &str| {
            rq.query
                .relations
                .iter()
                .position(|r| r == name)
                .ok_or_else(|| {
                    TukwilaError::Optimizer(format!("join references unknown relation {name}"))
                })
        };
        rq.query
            .joins
            .iter()
            .map(|j| {
                let a = rel_index(j.left_relation())?;
                let b = rel_index(j.right_relation())?;
                let sel = self
                    .catalog
                    .join_selectivity(&j.left, &j.right)
                    .or(self.config.fallback_selectivity)
                    .or(self.catalog.default_selectivity())
                    .ok_or_else(|| {
                        TukwilaError::Optimizer(format!(
                            "no selectivity estimate for {} = {}",
                            j.left, j.right
                        ))
                    })?;
                Ok(EdgeSpec {
                    a,
                    b,
                    selectivity: sel,
                    a_col: j.left.clone(),
                    b_col: j.right.clone(),
                })
            })
            .collect()
    }

    fn step_coster<'a>(&'a self) -> impl Fn(&Estimate, &Estimate, f64) -> f64 + 'a {
        move |l, r, out| {
            let dpj = self.model.dpj_cost(l, r, out);
            let (hybrid, _) = self.model.best_hybrid(l, r, out);
            dpj.min(hybrid)
        }
    }

    /// Produce a plan. If statistics are missing for some leaves, emits a
    /// **partial plan** covering a known or heuristic first join and marks
    /// it incomplete (§3: "generate a partial plan with only the first
    /// steps specified").
    pub fn plan(&mut self, rq: &ReformulatedQuery) -> Result<PlannedQuery> {
        self.pins.clear(); // pins are per-query state
        let leaves = self.leaf_estimates(rq);
        let edges = self.edges(rq)?;
        if leaves.iter().all(Option::is_some) {
            let ests: Vec<Estimate> = leaves.into_iter().map(Option::unwrap).collect();
            let coster = self.step_coster();
            let pins: Vec<(RelMask, Estimate)> = self.pins.iter().map(|(&m, &e)| (m, e)).collect();
            let memo = Memo::build_with_pins(ests, edges, pins, &coster);
            let full = memo.full_mask();
            let tree = memo.extract(full).ok_or_else(|| {
                TukwilaError::Optimizer("query join graph is disconnected".into())
            })?;
            let lowered =
                Lowerer::new(rq, &memo, &self.catalog, &self.config).lower(&tree, full, false)?;
            return Ok(PlannedQuery {
                lowered,
                memo: Some(memo),
            });
        }
        self.plan_partial(rq, leaves, edges)
    }

    /// Heuristic partial plan: plan exactly one join of two **units** —
    /// where a unit is a maximal materialized subquery (pin) or a base
    /// relation not yet covered by one. Units keep the pin family laminar
    /// across successive partial plans (each step merges two units into a
    /// larger materialization, never creating overlapping atomics), and
    /// each step prefers the most-informed pair (both cardinalities known
    /// beats one, beats none; smaller combined size first) — the paper's
    /// "compute a partial result that it chooses heuristically".
    fn plan_partial(
        &mut self,
        rq: &ReformulatedQuery,
        leaves: Vec<Option<Estimate>>,
        edges: Vec<EdgeSpec>,
    ) -> Result<PlannedQuery> {
        // Maximal pins (the pin family is laminar by construction).
        let maximal_pins: Vec<RelMask> = self
            .pins
            .keys()
            .copied()
            .filter(|&m| !self.pins.keys().any(|&o| o != m && (m & o) == m))
            .collect();
        let unit_of = |rel: usize| -> RelMask {
            maximal_pins
                .iter()
                .copied()
                .find(|&m| m & (1 << rel) != 0)
                .unwrap_or(1 << rel)
        };
        let unit_known = |mask: RelMask| -> Option<f64> {
            if let Some(est) = self.pins.get(&mask) {
                return Some(est.card);
            }
            if mask.count_ones() == 1 {
                return leaves[mask.trailing_zeros() as usize].map(|e| e.card);
            }
            None
        };
        // Candidate: an edge whose endpoints live in different units.
        let score = |e: &EdgeSpec| {
            let (ua, ub) = (unit_of(e.a), unit_of(e.b));
            let (ka, kb) = (unit_known(ua), unit_known(ub));
            let known = ka.is_some() as u32 + kb.is_some() as u32;
            let size = ka.unwrap_or(0.0) + kb.unwrap_or(0.0);
            (known, -size)
        };
        let best = edges
            .iter()
            .filter(|e| unit_of(e.a) != unit_of(e.b))
            .max_by(|x, y| {
                let (kx, sx) = score(x);
                let (ky, sy) = score(y);
                kx.cmp(&ky).then(sx.total_cmp(&sy))
            })
            .ok_or_else(|| {
                TukwilaError::Optimizer(
                    "cannot build a partial plan: no join edge crosses two units".into(),
                )
            })?
            .clone();
        // Memo over everything so lowering has estimates; unknown leaves
        // get a neutral placeholder (card 0 ⇒ DPJ chosen, which is the
        // right call with no information).
        let placeholder = Estimate {
            cost_ms: 1.0,
            card: 0.0,
            tuple_bytes: self.config.default_tuple_bytes as f64,
        };
        let ests: Vec<Estimate> = leaves.iter().map(|l| l.unwrap_or(placeholder)).collect();
        let coster = self.step_coster();
        let pins: Vec<(RelMask, Estimate)> = self.pins.iter().map(|(&m, &e)| (m, e)).collect();
        let memo = Memo::build_with_pins(ests, edges, pins, &coster);

        let unit_tree = |mask: RelMask| -> JoinTree {
            if mask.count_ones() == 1 {
                JoinTree::Leaf {
                    rel: mask.trailing_zeros() as usize,
                }
            } else {
                JoinTree::Materialized { mask }
            }
        };
        let (left_mask, right_mask) = (unit_of(best.a), unit_of(best.b));
        let mask = left_mask | right_mask;
        let tree = JoinTree::Join {
            left: Box::new(unit_tree(left_mask)),
            right: Box::new(unit_tree(right_mask)),
            left_mask,
            right_mask,
        };
        let lowered =
            Lowerer::new(rq, &memo, &self.catalog, &self.config).lower(&tree, mask, true)?;
        Ok(PlannedQuery {
            lowered,
            memo: None, // heuristic step: no reusable search space yet
        })
    }

    /// Fold observations into catalog and memo, then emit a corrected plan
    /// for the remaining work. `prior_memo` is the saved state from the
    /// previous `plan`/`replan` call (ignored by the Scratch strategy).
    pub fn replan(
        &mut self,
        rq: &ReformulatedQuery,
        prior_memo: Option<Memo>,
        observations: &[Observation],
    ) -> Result<PlannedQuery> {
        let mut pinned_masks = Vec::new();
        for obs in observations {
            if let Some(mask) = parse_materialization(&obs.name) {
                let width = prior_memo
                    .as_ref()
                    .and_then(|m| m.estimate(mask))
                    .map(|e| e.tuple_bytes)
                    .unwrap_or(self.config.default_tuple_bytes as f64);
                let est = Estimate {
                    // local scan of a materialized table: CPU only
                    cost_ms: obs.cardinality as f64 * 0.0005,
                    card: obs.cardinality as f64,
                    tuple_bytes: width,
                };
                self.pins.insert(mask, est);
                pinned_masks.push(mask);
            } else {
                self.catalog
                    .record_observed_cardinality(&obs.name, obs.cardinality);
            }
        }

        let leaves = self.leaf_estimates(rq);
        let edges = self.edges(rq)?;
        if !leaves.iter().all(Option::is_some) {
            return self.plan_partial(rq, leaves, edges);
        }
        let ests: Vec<Estimate> = leaves.into_iter().map(Option::unwrap).collect();
        let coster = self.step_coster();

        let memo = match (self.config.reopt, prior_memo) {
            (ReoptStrategy::Scratch, _) | (_, None) => {
                let pins: Vec<(RelMask, Estimate)> =
                    self.pins.iter().map(|(&m, &e)| (m, e)).collect();
                Memo::build_with_pins(ests, edges, pins, &coster)
            }
            (ReoptStrategy::SavedWithPointers, Some(mut memo)) => {
                for &mask in &pinned_masks {
                    memo.pin_materialized(mask, self.pins[&mask]);
                }
                for &mask in &pinned_masks {
                    memo.update_with_pointers(mask, &coster);
                }
                memo
            }
            (ReoptStrategy::SavedNoPointers, Some(mut memo)) => {
                for &mask in &pinned_masks {
                    memo.pin_materialized(mask, self.pins[&mask]);
                }
                memo.update_without_pointers(&coster);
                memo
            }
        };
        let full = memo.full_mask();
        let tree = memo.extract(full).ok_or_else(|| {
            TukwilaError::Optimizer("replan: query join graph is disconnected".into())
        })?;
        let lowered =
            Lowerer::new(rq, &memo, &self.catalog, &self.config).lower(&tree, full, false)?;
        Ok(PlannedQuery {
            lowered,
            memo: Some(memo),
        })
    }
}

/// Parse a `mat_<mask>` materialization name back to its mask.
pub fn parse_materialization(name: &str) -> Option<RelMask> {
    name.strip_prefix("mat_")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelinePolicy;
    use crate::lower::materialization_name;
    use tukwila_catalog::{AccessCost, SourceDesc, TableStats};
    use tukwila_common::{DataType, Schema};
    use tukwila_plan::{JoinKind, OperatorSpec};
    use tukwila_query::{ConjunctiveQuery, MediatedSchema, Reformulator};

    /// Three-relation chain catalog: a(1000) – b(100) – c(10).
    fn setup(with_stats: bool) -> (ReformulatedQuery, Catalog) {
        let mut m = MediatedSchema::new();
        let sa = Schema::of("a", &[("x", DataType::Int)]);
        let sb = Schema::of("b", &[("x", DataType::Int), ("y", DataType::Int)]);
        let sc = Schema::of("c", &[("y", DataType::Int)]);
        m.add_relation("a", sa.clone());
        m.add_relation("b", sb.clone());
        m.add_relation("c", sc.clone());

        let mut cat = Catalog::new();
        let mk = |name: &str, rel: &str, schema: Schema, card: usize| {
            let mut d = SourceDesc::new(name, rel, schema).with_cost(AccessCost::new(5.0, 0.01));
            if with_stats {
                d = d.with_stats(TableStats::new(card, 64));
            }
            d
        };
        cat.add_source(mk("src_a", "a", sa, 1000));
        cat.add_source(mk("src_b", "b", sb, 100));
        cat.add_source(mk("src_c", "c", sc, 10));
        cat.set_join_selectivity("a.x", "b.x", 0.001);
        cat.set_join_selectivity("b.y", "c.y", 0.01);

        let q = ConjunctiveQuery::new("q", vec!["a".into(), "b".into(), "c".into()])
            .join("a.x", "b.x")
            .join("b.y", "c.y");
        let rq = Reformulator::new(m).reformulate(&q, &cat).unwrap();
        (rq, cat)
    }

    fn config(policy: PipelinePolicy) -> OptimizerConfig {
        OptimizerConfig {
            policy,
            ..OptimizerConfig::default()
        }
    }

    #[test]
    fn full_plan_when_stats_known() {
        let (rq, cat) = setup(true);
        let mut opt = Optimizer::new(cat, config(PipelinePolicy::FullyPipelined));
        let pq = opt.plan(&rq).unwrap();
        assert!(pq.lowered.plan.complete);
        assert_eq!(pq.lowered.plan.fragments.len(), 1, "fully pipelined");
        assert!(pq.memo.is_some());
    }

    #[test]
    fn materialize_policy_creates_fragment_per_join() {
        let (rq, cat) = setup(true);
        let mut opt = Optimizer::new(cat, config(PipelinePolicy::MaterializeEachJoin));
        let pq = opt.plan(&rq).unwrap();
        // two joins → intermediate fragment + output fragment
        assert_eq!(pq.lowered.plan.fragments.len(), 2);
        assert!(!pq.lowered.plan.dependencies.is_empty());
    }

    #[test]
    fn replan_rules_attached_only_with_replan_policy() {
        let (rq, cat) = setup(true);
        let mut plain = Optimizer::new(cat.clone(), config(PipelinePolicy::MaterializeEachJoin));
        let without = plain.plan(&rq).unwrap();
        assert!(without.lowered.plan.all_rules().is_empty());

        let mut replanning = Optimizer::new(cat, config(PipelinePolicy::MaterializeAndReplan));
        let with = replanning.plan(&rq).unwrap();
        assert!(!with.lowered.plan.all_rules().is_empty());
        assert!(with
            .lowered
            .plan
            .all_rules()
            .iter()
            .any(|r| r.actions.contains(&tukwila_plan::Action::Replan)));
    }

    #[test]
    fn missing_stats_produce_partial_plan() {
        let (rq, cat) = setup(false);
        let mut opt = Optimizer::new(cat, config(PipelinePolicy::Adaptive));
        let pq = opt.plan(&rq).unwrap();
        assert!(!pq.lowered.plan.complete, "partial plan expected");
        assert_eq!(pq.lowered.plan.fragments.len(), 1);
    }

    #[test]
    fn observations_enable_full_replan() {
        let (rq, cat) = setup(false);
        let mut opt = Optimizer::new(cat, config(PipelinePolicy::Adaptive));
        let first = opt.plan(&rq).unwrap();
        assert!(!first.lowered.plan.complete);
        // report observed cardinalities for all sources + the partial result
        let mask = first.lowered.fragment_masks[0].1;
        let obs = vec![
            Observation {
                name: "src_a".into(),
                cardinality: 1000,
            },
            Observation {
                name: "src_b".into(),
                cardinality: 100,
            },
            Observation {
                name: "src_c".into(),
                cardinality: 10,
            },
            Observation {
                name: materialization_name(mask),
                cardinality: 55,
            },
        ];
        let second = opt.replan(&rq, first.memo, &obs).unwrap();
        assert!(second.lowered.plan.complete);
        // the corrected plan reuses the materialization instead of re-reading
        let uses_mat = second.lowered.plan.fragments.iter().any(|f| {
            let mut found = false;
            f.root.walk(&mut |n| {
                if let OperatorSpec::TableScan { table } = &n.spec {
                    if table == &materialization_name(mask) {
                        found = true;
                    }
                }
            });
            found
        });
        assert!(uses_mat, "replan must reuse the materialized fragment");
    }

    #[test]
    fn parallel_config_wraps_big_joins_in_exchange() {
        let (rq, cat) = setup(true);
        let mut cfg = config(PipelinePolicy::Adaptive);
        cfg.max_parallelism = 4;
        cfg.parallel_min_rows = 100; // src_a is 1000, src_b 100, src_c 10
        let mut opt = Optimizer::new(cat.clone(), cfg);
        let pq = opt.plan(&rq).unwrap();
        let mut degrees = Vec::new();
        for f in &pq.lowered.plan.fragments {
            f.root.walk(&mut |n| {
                if let OperatorSpec::Exchange { input, partitions } = &n.spec {
                    assert!(matches!(input.spec, OperatorSpec::Join { .. }));
                    degrees.push(*partitions);
                }
            });
        }
        assert!(
            !degrees.is_empty(),
            "1000-row inputs over a 100-row floor must partition"
        );
        assert!(degrees.iter().all(|&d| (2..=4).contains(&d)));

        // Degree scales with cardinality: the whole-query join (≥1000
        // input rows over the 100-row floor) uses the full budget.
        assert!(degrees.contains(&4), "largest join should use the cap");

        // max_parallelism = 1 (the default without TUKWILA_THREADS) emits
        // no exchange at all.
        let mut seq_cfg = config(PipelinePolicy::Adaptive);
        seq_cfg.max_parallelism = 1;
        let mut seq_opt = Optimizer::new(cat, seq_cfg);
        let seq = seq_opt.plan(&rq).unwrap();
        for f in &seq.lowered.plan.fragments {
            f.root.walk(&mut |n| {
                assert!(
                    !matches!(n.spec, OperatorSpec::Exchange { .. }),
                    "sequential config must not emit exchanges"
                );
            });
        }
    }

    #[test]
    fn adaptive_policy_picks_hybrid_for_large_inputs() {
        let (rq, cat) = setup(true);
        let mut cfg = config(PipelinePolicy::Adaptive);
        cfg.dpj_max_input_bytes = 1; // force hybrid everywhere
        let mut opt = Optimizer::new(cat, cfg);
        let pq = opt.plan(&rq).unwrap();
        let mut kinds = Vec::new();
        for f in &pq.lowered.plan.fragments {
            f.root.walk(&mut |n| {
                if let OperatorSpec::Join { kind, .. } = &n.spec {
                    kinds.push(*kind);
                }
            });
        }
        assert!(kinds.iter().all(|k| *k == JoinKind::HybridHash));
        // hybrid breaks the pipeline → more than one fragment
        assert!(pq.lowered.plan.fragments.len() > 1);
    }

    #[test]
    fn hybrid_inner_is_smaller_side() {
        let (rq, cat) = setup(true);
        let mut cfg = config(PipelinePolicy::Adaptive);
        cfg.dpj_max_input_bytes = 1;
        let mut opt = Optimizer::new(cat, cfg);
        let pq = opt.plan(&rq).unwrap();
        // find a join over {b, c}: inner (right) should be c (card 10)
        for f in &pq.lowered.plan.fragments {
            f.root.walk(&mut |n| {
                if let OperatorSpec::Join { left, right, .. } = &n.spec {
                    let le = left.est_cardinality.unwrap_or(f64::MAX);
                    let re = right.est_cardinality.unwrap_or(f64::MAX);
                    assert!(
                        re <= le,
                        "inner (right) side must be the smaller: {re} vs {le}"
                    );
                }
            });
        }
    }

    #[test]
    fn mirrored_leaf_lowers_to_collector_with_fallback_rules() {
        let (_, mut cat) = setup(true);
        // add a mirror for source a
        let sa = Schema::of("a", &[("x", DataType::Int)]);
        cat.add_source(
            SourceDesc::new("src_a2", "a", sa.clone())
                .with_stats(TableStats::new(1000, 64))
                .with_cost(AccessCost::new(50.0, 0.01)),
        );
        cat.set_overlap(
            "src_a",
            "src_a2",
            tukwila_catalog::OverlapInfo::symmetric(1.0),
        );

        let mut m = MediatedSchema::new();
        m.add_relation("a", sa);
        let q = ConjunctiveQuery::new("q", vec!["a".into()]);
        let rq = Reformulator::new(m).reformulate(&q, &cat).unwrap();

        let mut cfg = config(PipelinePolicy::Adaptive);
        cfg.source_timeout_ms = Some(100);
        let mut opt = Optimizer::new(cat, cfg);
        let pq = opt.plan(&rq).unwrap();
        let frag = &pq.lowered.plan.fragments[0];
        let mut found_collector = false;
        frag.root.walk(&mut |n| {
            if let OperatorSpec::Collector { children, .. } = &n.spec {
                found_collector = true;
                assert_eq!(children.len(), 2);
            }
        });
        assert!(found_collector);
        assert!(
            !frag.local_rules.is_empty(),
            "collector policy rules expected"
        );
    }

    #[test]
    fn parse_materialization_round_trip() {
        assert_eq!(parse_materialization(&materialization_name(0b101)), Some(5));
        assert_eq!(parse_materialization("result"), None);
    }
}
