//! The dynamic program (memo) with saved state and usage pointers (§3,
//! §6.5).
//!
//! A System-R style bottom-up enumerator over connected relation subsets,
//! represented as bitmasks. The memo is the "state of its search space" the
//! optimizer conserves when it calls the execution engine; re-optimization
//! is incremental:
//!
//! * completing a fragment **pins** its subquery's entry — the mask becomes
//!   an *atomic* unit with observed cardinality and near-zero access cost
//!   (a local materialization), and partitions may no longer split it;
//! * **usage pointers** link every entry to the larger subqueries that can
//!   use it as a child; corrected information propagates only along those
//!   pointers ("any new information about the completion of a fragment can
//!   only impact half of the entries in the original table");
//! * without pointers, every entry must be revisited and revalidated — the
//!   configuration the paper measured as *worse than replanning from
//!   scratch*, reproduced here for experiment E65.

use std::collections::{BTreeSet, HashMap};

use crate::cost::Estimate;

/// Bitmask over the query's relations (bit *i* = relation *i*).
pub type RelMask = u32;

/// A join edge between two relations, with the estimated selectivity and
/// the qualified join columns (used later by plan lowering).
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Left relation index.
    pub a: usize,
    /// Right relation index.
    pub b: usize,
    /// Estimated join selectivity.
    pub selectivity: f64,
    /// Qualified column on relation `a`.
    pub a_col: String,
    /// Qualified column on relation `b`.
    pub b_col: String,
}

/// The extracted best plan for a subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A base relation (index into the query's relation list).
    Leaf {
        /// Relation index.
        rel: usize,
    },
    /// A materialized intermediate result from a completed fragment.
    Materialized {
        /// The subquery this materialization computed.
        mask: RelMask,
    },
    /// A join of two subplans.
    Join {
        /// Left subplan.
        left: Box<JoinTree>,
        /// Right subplan.
        right: Box<JoinTree>,
        /// Mask of the left subplan.
        left_mask: RelMask,
        /// Mask of the right subplan.
        right_mask: RelMask,
    },
}

impl JoinTree {
    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            _ => 0,
        }
    }
}

#[derive(Debug, Clone)]
struct MemoEntry {
    est: Estimate,
    /// Best partition (left_mask, right_mask); `None` for leaves and
    /// materialized units.
    best: Option<(RelMask, RelMask)>,
    /// Usage pointers: supersets that may use this entry as a child.
    used_by: BTreeSet<RelMask>,
    /// Pinned entries (leaves, materializations) are not re-enumerated.
    pinned: bool,
}

/// Work counters, used by tests and the E65 experiment to compare
/// re-optimization strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Entries (re)computed.
    pub entries_computed: usize,
    /// Candidate partitions costed.
    pub partitions_considered: usize,
    /// Entries visited but found unaffected (revalidation overhead).
    pub entries_revalidated: usize,
}

/// The saved dynamic program.
#[derive(Debug, Clone)]
pub struct Memo {
    n: usize,
    edges: Vec<EdgeSpec>,
    entries: HashMap<RelMask, MemoEntry>,
    /// Masks that must be treated as atomic (materialized fragments).
    atomics: Vec<RelMask>,
    /// Work counters for the most recent build/update.
    pub stats: MemoStats,
}

/// Cost of one join step: `f(left, right, out_card) -> cost_ms`.
pub type StepCoster<'a> = &'a dyn Fn(&Estimate, &Estimate, f64) -> f64;

impl Memo {
    /// Build the full dynamic program bottom-up.
    ///
    /// `leaves[i]` is the estimate for scanning relation `i`; `edges` the
    /// join graph with selectivities; `coster` prices one join step.
    pub fn build(leaves: Vec<Estimate>, edges: Vec<EdgeSpec>, coster: StepCoster<'_>) -> Memo {
        Memo::build_with_pins(leaves, edges, Vec::new(), coster)
    }

    /// Build from scratch with some subqueries already materialized
    /// (the `Scratch` re-optimization strategy: the query "gets smaller by
    /// one operation after each join" — pinned masks are atomic leaves).
    pub fn build_with_pins(
        leaves: Vec<Estimate>,
        edges: Vec<EdgeSpec>,
        pins: Vec<(RelMask, Estimate)>,
        coster: StepCoster<'_>,
    ) -> Memo {
        let n = leaves.len();
        assert!(
            n <= 20,
            "mask-based enumeration supports up to 20 relations"
        );
        let mut memo = Memo {
            n,
            edges,
            entries: HashMap::new(),
            atomics: Vec::new(),
            stats: MemoStats::default(),
        };
        for (i, est) in leaves.into_iter().enumerate() {
            memo.entries.insert(
                1 << i,
                MemoEntry {
                    est,
                    best: None,
                    used_by: BTreeSet::new(),
                    pinned: true,
                },
            );
        }
        for (mask, est) in pins {
            memo.entries.insert(
                mask,
                MemoEntry {
                    est,
                    best: None,
                    used_by: BTreeSet::new(),
                    pinned: true,
                },
            );
            memo.atomics.push(mask);
        }
        memo.enumerate_all(coster);
        memo
    }

    /// Pinned atomic masks (materialized fragments).
    pub fn atomics(&self) -> &[RelMask] {
        &self.atomics
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.n
    }

    /// The full-query mask.
    pub fn full_mask(&self) -> RelMask {
        ((1u64 << self.n) - 1) as RelMask
    }

    /// Estimate for a subquery, if planned.
    pub fn estimate(&self, mask: RelMask) -> Option<Estimate> {
        self.entries.get(&mask).map(|e| e.est)
    }

    /// Number of memo entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    fn crossing_selectivity(&self, a: RelMask, b: RelMask) -> Option<f64> {
        let mut sel = 1.0;
        let mut any = false;
        for e in &self.edges {
            let (ma, mb) = (1u32 << e.a, 1u32 << e.b);
            if (a & ma != 0 && b & mb != 0) || (a & mb != 0 && b & ma != 0) {
                sel *= e.selectivity;
                any = true;
            }
        }
        any.then_some(sel)
    }

    fn respects_atomics(&self, mask: RelMask) -> bool {
        self.atomics
            .iter()
            .all(|&m| (mask & m) == 0 || (mask & m) == m)
    }

    /// (Re)compute the best plan for `mask` by enumerating partitions.
    /// Returns true if the entry changed.
    fn compute_entry(&mut self, mask: RelMask, coster: StepCoster<'_>) -> bool {
        if let Some(e) = self.entries.get(&mask) {
            if e.pinned {
                return false;
            }
        }
        let mut best: Option<(f64, Estimate, (RelMask, RelMask))> = None;
        // enumerate proper submasks; fix the lowest bit into the left side
        // to visit each unordered partition once
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let mut sub = rest;
        loop {
            let left = sub | low;
            let right = mask ^ left;
            if right != 0 {
                self.stats.partitions_considered += 1;
                if self.respects_atomics(left) && self.respects_atomics(right) {
                    if let (Some(le), Some(re)) = (
                        self.entries.get(&left).map(|e| e.est),
                        self.entries.get(&right).map(|e| e.est),
                    ) {
                        if let Some(sel) = self.crossing_selectivity(left, right) {
                            let out_card = (le.card * re.card * sel).max(0.0);
                            let step = coster(&le, &re, out_card);
                            let cost = le.cost_ms + re.cost_ms + step;
                            let width = le.tuple_bytes + re.tuple_bytes;
                            if best.map(|(c, _, _)| cost < c).unwrap_or(true) {
                                best = Some((
                                    cost,
                                    Estimate {
                                        cost_ms: cost,
                                        card: out_card,
                                        tuple_bytes: width,
                                    },
                                    (left, right),
                                ));
                            }
                        }
                    }
                }
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        let Some((_, est, partition)) = best else {
            return false; // disconnected or unplannable subset
        };
        self.stats.entries_computed += 1;
        let changed = match self.entries.get(&mask) {
            Some(old) => old.est != est || old.best != Some(partition),
            None => true,
        };
        let used_by = self
            .entries
            .remove(&mask)
            .map(|e| e.used_by)
            .unwrap_or_default();
        self.entries.insert(
            mask,
            MemoEntry {
                est,
                best: Some(partition),
                used_by,
                pinned: false,
            },
        );
        // usage pointers from both children to this entry
        let (l, r) = partition;
        for child in [l, r] {
            if let Some(c) = self.entries.get_mut(&child) {
                c.used_by.insert(mask);
            }
        }
        changed
    }

    fn enumerate_all(&mut self, coster: StepCoster<'_>) {
        // Constructive connected-subset enumeration: grow each discovered
        // subset by one edge-adjacent relation (System-R style, avoiding
        // both Cartesian products and the 2^n scan over disconnected
        // masks).
        let full = self.full_mask() as usize;
        let mut seen = vec![false; full + 1];
        let mut by_size: Vec<Vec<RelMask>> = vec![Vec::new(); self.n + 1];
        for i in 0..self.n {
            seen[1 << i] = true;
            by_size[1].push(1 << i);
        }
        for size in 1..self.n {
            let current = std::mem::take(&mut by_size[size]);
            for &mask in &current {
                for e in &self.edges {
                    let (ma, mb) = (1u32 << e.a, 1u32 << e.b);
                    let has_a = mask & ma != 0;
                    let has_b = mask & mb != 0;
                    if has_a != has_b {
                        let grown = mask | ma | mb;
                        if !seen[grown as usize] {
                            seen[grown as usize] = true;
                            by_size[grown.count_ones() as usize].push(grown);
                        }
                    }
                }
            }
            by_size[size] = current;
        }
        for bucket in by_size.iter_mut().skip(2) {
            let mut masks = std::mem::take(bucket);
            masks.sort_unstable();
            for mask in masks {
                if self.respects_atomics(mask) {
                    self.compute_entry(mask, coster);
                }
            }
        }
    }

    /// Pin `mask` as a materialized unit with an observed estimate. Further
    /// partitions may not split it.
    pub fn pin_materialized(&mut self, mask: RelMask, est: Estimate) {
        let used_by = self
            .entries
            .remove(&mask)
            .map(|e| e.used_by)
            .unwrap_or_default();
        self.entries.insert(
            mask,
            MemoEntry {
                est,
                best: None,
                used_by,
                pinned: true,
            },
        );
        if !self.atomics.contains(&mask) {
            self.atomics.push(mask);
        }
    }

    /// Incremental re-optimization following usage pointers: recompute only
    /// entries reachable from `mask` (ascending size), stopping propagation
    /// where nothing changed.
    pub fn update_with_pointers(&mut self, mask: RelMask, coster: StepCoster<'_>) {
        self.stats = MemoStats::default();
        let mut frontier: BTreeSet<RelMask> = self
            .entries
            .get(&mask)
            .map(|e| e.used_by.clone())
            .unwrap_or_default();
        let mut processed: BTreeSet<RelMask> = BTreeSet::new();
        while let Some(&m) = frontier.iter().min_by_key(|m| m.count_ones()) {
            frontier.remove(&m);
            if !processed.insert(m) {
                continue;
            }
            let changed = self.compute_entry(m, coster);
            if changed {
                if let Some(e) = self.entries.get(&m) {
                    frontier.extend(e.used_by.iter().copied());
                }
            } else {
                self.stats.entries_revalidated += 1;
            }
        }
    }

    /// Full-table re-optimization without usage pointers: every non-pinned
    /// entry is revisited in ascending size order (whether affected or
    /// not), paying revalidation overhead on the unaffected ones.
    pub fn update_without_pointers(&mut self, coster: StepCoster<'_>) {
        self.stats = MemoStats::default();
        let mut masks: Vec<RelMask> = self.entries.keys().copied().collect();
        masks.sort_by_key(|m| m.count_ones());
        for m in masks {
            if m.count_ones() < 2 {
                continue;
            }
            if !self.respects_atomics(m) {
                self.stats.entries_revalidated += 1;
                continue;
            }
            if !self.compute_entry(m, coster) {
                self.stats.entries_revalidated += 1;
            }
        }
    }

    /// Extract the best join tree for `mask`.
    pub fn extract(&self, mask: RelMask) -> Option<JoinTree> {
        let e = self.entries.get(&mask)?;
        if mask.count_ones() == 1 {
            return Some(JoinTree::Leaf {
                rel: mask.trailing_zeros() as usize,
            });
        }
        if e.pinned || e.best.is_none() {
            return Some(JoinTree::Materialized { mask });
        }
        let (l, r) = e.best.unwrap();
        Some(JoinTree::Join {
            left: Box::new(self.extract(l)?),
            right: Box::new(self.extract(r)?),
            left_mask: l,
            right_mask: r,
        })
    }

    /// The edge specs (for lowering).
    pub fn edges(&self) -> &[EdgeSpec] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(card: f64) -> Estimate {
        Estimate {
            cost_ms: card * 0.01,
            card,
            tuple_bytes: 50.0,
        }
    }

    fn chain_edges(n: usize, sel: f64) -> Vec<EdgeSpec> {
        (0..n - 1)
            .map(|i| EdgeSpec {
                a: i,
                b: i + 1,
                selectivity: sel,
                a_col: format!("r{i}.k{i}"),
                b_col: format!("r{}.k{i}", i + 1),
            })
            .collect()
    }

    fn simple_coster(l: &Estimate, r: &Estimate, out: f64) -> f64 {
        (l.card + r.card + out) * 0.001
    }

    #[test]
    fn plans_a_chain_query() {
        let leaves = vec![leaf(100.0), leaf(1000.0), leaf(10.0)];
        let memo = Memo::build(leaves, chain_edges(3, 0.001), &simple_coster);
        let full = memo.full_mask();
        let tree = memo.extract(full).unwrap();
        assert_eq!(tree.join_count(), 2);
        assert!(memo.estimate(full).is_some());
    }

    #[test]
    fn disconnected_subsets_not_planned() {
        // chain r0–r1–r2: {r0, r2} is disconnected
        let leaves = vec![leaf(10.0), leaf(10.0), leaf(10.0)];
        let memo = Memo::build(leaves, chain_edges(3, 0.1), &simple_coster);
        assert!(memo.estimate(0b101).is_none());
        assert!(memo.estimate(0b011).is_some());
    }

    #[test]
    fn bushy_plans_allowed() {
        // star: r0 joins r1, r2, r3 — best plan may join (r0 r1) with ...
        let leaves = vec![leaf(10.0), leaf(10.0), leaf(10.0), leaf(10.0)];
        let edges = vec![
            EdgeSpec {
                a: 0,
                b: 1,
                selectivity: 0.1,
                a_col: "a".into(),
                b_col: "b".into(),
            },
            EdgeSpec {
                a: 0,
                b: 2,
                selectivity: 0.1,
                a_col: "a".into(),
                b_col: "c".into(),
            },
            EdgeSpec {
                a: 0,
                b: 3,
                selectivity: 0.1,
                a_col: "a".into(),
                b_col: "d".into(),
            },
        ];
        let memo = Memo::build(leaves, edges, &simple_coster);
        assert!(memo.extract(memo.full_mask()).is_some());
    }

    #[test]
    fn cheaper_orders_win() {
        // joining the two small relations first should beat starting with
        // the huge one
        let leaves = vec![leaf(1_000_000.0), leaf(10.0), leaf(10.0)];
        // triangle: all pairs joinable
        let mut edges = chain_edges(3, 0.01);
        edges.push(EdgeSpec {
            a: 0,
            b: 2,
            selectivity: 0.01,
            a_col: "x".into(),
            b_col: "y".into(),
        });
        let memo = Memo::build(leaves, edges, &simple_coster);
        let tree = memo.extract(memo.full_mask()).unwrap();
        // the first join must be {r1, r2}
        match tree {
            JoinTree::Join {
                left_mask,
                right_mask,
                ..
            } => {
                assert!(
                    left_mask == 0b110 || right_mask == 0b110,
                    "expected small-pair-first, got {left_mask:#b}/{right_mask:#b}"
                );
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn pinning_makes_mask_atomic() {
        let leaves = vec![leaf(100.0), leaf(100.0), leaf(100.0), leaf(100.0)];
        let mut memo = Memo::build(leaves, chain_edges(4, 0.01), &simple_coster);
        // fragment computed {r0, r1}: observed card 5 (tiny!)
        memo.pin_materialized(
            0b0011,
            Estimate {
                cost_ms: 0.1,
                card: 5.0,
                tuple_bytes: 100.0,
            },
        );
        memo.update_with_pointers(0b0011, &simple_coster);
        let tree = memo.extract(memo.full_mask()).unwrap();
        // the extracted tree must contain the materialized unit
        fn has_mat(t: &JoinTree, mask: RelMask) -> bool {
            match t {
                JoinTree::Materialized { mask: m } => *m == mask,
                JoinTree::Join { left, right, .. } => has_mat(left, mask) || has_mat(right, mask),
                _ => false,
            }
        }
        assert!(has_mat(&tree, 0b0011), "plan must use the materialization");
    }

    #[test]
    fn pointer_update_touches_fewer_entries_than_full_pass() {
        let leaves: Vec<Estimate> = (0..6).map(|i| leaf(100.0 * (i + 1) as f64)).collect();
        let edges = chain_edges(6, 0.001);
        let mut with_ptrs = Memo::build(leaves.clone(), edges.clone(), &simple_coster);
        let mut without = with_ptrs.clone();

        let obs = Estimate {
            cost_ms: 0.1,
            card: 3.0,
            tuple_bytes: 100.0,
        };
        with_ptrs.pin_materialized(0b000011, obs);
        with_ptrs.update_with_pointers(0b000011, &simple_coster);
        without.pin_materialized(0b000011, obs);
        without.update_without_pointers(&simple_coster);

        let w = with_ptrs.stats;
        let wo = without.stats;
        assert!(
            w.entries_computed + w.entries_revalidated
                < wo.entries_computed + wo.entries_revalidated,
            "pointers must touch fewer entries: {w:?} vs {wo:?}"
        );
        // both strategies agree on the final plan cost
        assert_eq!(
            with_ptrs.estimate(with_ptrs.full_mask()).unwrap().cost_ms,
            without.estimate(without.full_mask()).unwrap().cost_ms
        );
    }

    #[test]
    fn scratch_and_incremental_agree() {
        let leaves: Vec<Estimate> = (0..5).map(|i| leaf(50.0 * (i + 1) as f64)).collect();
        let edges = chain_edges(5, 0.01);
        let mut incremental = Memo::build(leaves.clone(), edges.clone(), &simple_coster);
        let obs = Estimate {
            cost_ms: 0.2,
            card: 7.0,
            tuple_bytes: 100.0,
        };
        incremental.pin_materialized(0b00011, obs);
        incremental.update_with_pointers(0b00011, &simple_coster);

        // scratch: rebuild with the same pin applied up front
        let mut scratch = Memo::build(leaves, edges, &simple_coster);
        scratch.pin_materialized(0b00011, obs);
        scratch.update_without_pointers(&simple_coster);

        assert_eq!(
            incremental
                .estimate(incremental.full_mask())
                .unwrap()
                .cost_ms,
            scratch.estimate(scratch.full_mask()).unwrap().cost_ms
        );
    }

    #[test]
    fn estimates_use_selectivity_product_on_cuts() {
        // triangle query: cut {r0} | {r1,r2} crosses two edges
        let leaves = vec![leaf(100.0), leaf(100.0), leaf(100.0)];
        let edges = vec![
            EdgeSpec {
                a: 0,
                b: 1,
                selectivity: 0.1,
                a_col: "a".into(),
                b_col: "b".into(),
            },
            EdgeSpec {
                a: 1,
                b: 2,
                selectivity: 0.1,
                a_col: "b".into(),
                b_col: "c".into(),
            },
            EdgeSpec {
                a: 0,
                b: 2,
                selectivity: 0.1,
                a_col: "a".into(),
                b_col: "c".into(),
            },
        ];
        let memo = Memo::build(leaves, edges, &simple_coster);
        let full = memo.estimate(memo.full_mask()).unwrap();
        // 100^3 × 0.1^3 = 1000
        assert!((full.card - 1000.0).abs() < 1e-6, "card = {}", full.card);
    }
}
