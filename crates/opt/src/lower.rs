//! Plan lowering: join trees → fragments, physical operators, and rules.
//!
//! Lowering is where the paper's policy decisions become concrete plan
//! structure:
//!
//! * **Physical join choice** (§1.3): double pipelined joins while the
//!   estimated combined input size fits the join memory budget; hybrid hash
//!   (smaller side as inner) above it — and the pipeline breaks at a hybrid
//!   join, materializing its result.
//! * **Fragmenting policies** for the Figure 5 experiment: one fragment per
//!   join (with or without replan rules) or one fully pipelined fragment.
//! * **Disjunctive leaves** (§4.1): a relation served by several sources
//!   lowers to a dynamic collector; the access order and fallback chain is
//!   derived from catalog costs and overlap info, expressed as
//!   `error`/`timeout` rules.
//! * **Rule generation** (§3.1.2): replan-on-misestimate at fragment ends,
//!   reschedule-on-timeout for wrapper scans, collector policies.

use tukwila_catalog::Catalog;
use tukwila_common::{Result, TukwilaError};
use tukwila_plan::{
    Action, Condition, EventKind, EventPattern, FragmentId, JoinKind, OpId, OperatorNode,
    OverflowMethod, PlanBuilder, Predicate, QueryPlan, Rule, SubjectRef,
};
use tukwila_query::ReformulatedQuery;

use crate::config::{OptimizerConfig, PipelinePolicy};
use crate::memo::{JoinTree, Memo, RelMask};

/// Canonical local-store name for the materialization of a subquery.
pub fn materialization_name(mask: RelMask) -> String {
    format!("mat_{mask}")
}

/// A lowered plan plus the mask each fragment computes (used to map
/// observed cardinalities back into the memo).
#[derive(Debug, Clone)]
pub struct LoweredPlan {
    /// The executable plan.
    pub plan: QueryPlan,
    /// `(fragment, subquery mask)` pairs.
    pub fragment_masks: Vec<(FragmentId, RelMask)>,
    /// Static-analysis report for the plan (Error-free by construction:
    /// lowering fails instead of returning a plan with Error findings).
    pub analysis: tukwila_plan::diag::Report,
}

pub(crate) struct Lowerer<'a> {
    rq: &'a ReformulatedQuery,
    memo: &'a Memo,
    catalog: &'a Catalog,
    config: &'a OptimizerConfig,
    builder: PlanBuilder,
    fragment_masks: Vec<(FragmentId, RelMask)>,
    /// Wrapper-scan op ids created since the last fragment boundary.
    scans: Vec<OpId>,
    /// Collector policy rules awaiting attachment to the next fragment.
    pending_rules: Vec<Rule>,
    /// Mask of the whole tree being lowered (the root join's result is the
    /// output fragment itself, never an intermediate materialization).
    root_mask: RelMask,
    /// Whether this is a partial plan: its output materializes under its
    /// `mat_<mask>` name (so later plans can reuse it) instead of `result`.
    partial: bool,
}

impl<'a> Lowerer<'a> {
    pub fn new(
        rq: &'a ReformulatedQuery,
        memo: &'a Memo,
        catalog: &'a Catalog,
        config: &'a OptimizerConfig,
    ) -> Self {
        Lowerer {
            rq,
            memo,
            catalog,
            config,
            builder: PlanBuilder::new(),
            fragment_masks: Vec::new(),
            scans: Vec::new(),
            pending_rules: Vec::new(),
            root_mask: 0,
            partial: false,
        }
    }

    /// Lower `tree` (covering `mask`) into a complete plan.
    pub fn lower(mut self, tree: &JoinTree, mask: RelMask, partial: bool) -> Result<LoweredPlan> {
        self.root_mask = mask;
        self.partial = partial;
        let (root, deps, _) = self.lower_node(tree)?;
        let output = self.finish_fragment(root, mask, &deps, true)?;
        let mut plan = self.builder.build(output);
        if partial {
            plan.complete = false;
        }
        tukwila_plan::validate_plan(&plan)?;
        // Every lowered plan goes through the full static analyzer before
        // it can execute. Error findings are optimizer bugs: loud in tests,
        // a hard failure (instead of a runtime surprise) in release.
        let analysis = tukwila_analyze::Analyzer::new()
            .with_catalog(self.catalog)
            .with_max_parallelism(self.config.max_parallelism)
            .analyze(&plan);
        debug_assert!(
            analysis.is_executable(),
            "optimizer produced a plan with analyzer errors:\n{}",
            analysis.render(&plan)
        );
        if let Some(first) = analysis.first_error() {
            return Err(TukwilaError::Optimizer(format!(
                "lowered plan failed static analysis: {}: {}",
                first.code, first.message
            )));
        }
        Ok(LoweredPlan {
            plan,
            fragment_masks: self.fragment_masks,
            analysis,
        })
    }

    /// Lower one node, returning the operator, the fragments the subtree
    /// created (dependencies for the enclosing fragment), and the node's
    /// estimated cardinality.
    fn lower_node(&mut self, tree: &JoinTree) -> Result<(OperatorNode, Vec<FragmentId>, f64)> {
        match tree {
            JoinTree::Leaf { rel } => self.lower_leaf(*rel),
            JoinTree::Materialized { mask } => {
                let est = self.memo.estimate(*mask);
                let node = self.builder.table_scan(&materialization_name(*mask));
                let card = est.map(|e| e.card).unwrap_or(0.0);
                Ok((node.with_est_cardinality(card), Vec::new(), card))
            }
            JoinTree::Join {
                left,
                right,
                left_mask,
                right_mask,
            } => self.lower_join(left, right, *left_mask, *right_mask),
        }
    }

    fn lower_leaf(&mut self, rel: usize) -> Result<(OperatorNode, Vec<FragmentId>, f64)> {
        let leaf = &self.rq.leaves[rel];
        let est = self.memo.estimate(1 << rel);
        let card = est.map(|e| e.card).unwrap_or(0.0);
        let node = if leaf.sources.len() == 1 {
            let mut scan = self.builder.wrapper_scan_opts(
                &leaf.sources[0],
                self.config.source_timeout_ms,
                None,
            );
            self.scans.push(scan.id);
            scan.est_cardinality = Some(card);
            scan
        } else {
            self.lower_collector(rel)?
        };
        // push down filters that mention only this relation
        let relation = &self.rq.query.relations[rel];
        let mut filters = Vec::new();
        for f in &self.rq.query.filters {
            let cols = f.columns();
            if !cols.is_empty()
                && cols
                    .iter()
                    .all(|c| c.split('.').next() == Some(relation.as_str()))
            {
                filters.push(f.clone());
            }
        }
        let node = if filters.is_empty() {
            node
        } else {
            self.builder.select(node, Predicate::and(filters))
        };
        Ok((node, Vec::new(), card))
    }

    /// Lower a disjunctive leaf to a dynamic collector with a generated
    /// policy: cheapest source active, the rest in a standby fallback chain
    /// activated on the active source's error or timeout.
    fn lower_collector(&mut self, rel: usize) -> Result<OperatorNode> {
        let leaf = &self.rq.leaves[rel];
        // Order by catalog access cost (latency-dominated).
        let mut ordered: Vec<&String> = leaf.sources.iter().collect();
        ordered.sort_by(|a, b| {
            let cost = |name: &str| {
                self.catalog
                    .source(name)
                    .map(|d| {
                        let card = self.catalog.cardinality(name).unwrap_or(10_000);
                        d.cost.transfer_ms(card)
                    })
                    .unwrap_or(f64::MAX)
            };
            cost(a).total_cmp(&cost(b))
        });
        // Policy: for true mirrors, contact only the cheapest and keep the
        // rest on standby behind error/timeout fallback rules — exact
        // results (no duplicate copies) and robust to outages. For
        // partially overlapping sources, contact all of them (the union
        // needs every member). Race-two-mirrors policies (the paper's §4.1
        // example) are expressible with hand-written threshold rules; the
        // engine supports them (see the collector tests), but the optimizer
        // defaults to the duplicate-free chain.
        let specs: Vec<(&str, bool)> = ordered
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let active = !leaf.all_mirrors || i == 0;
                (s.as_str(), active)
            })
            .collect();
        let timeout = self.config.source_timeout_ms;
        let (node, child_ids) = self.builder.collector_with_timeout(&specs, None, timeout);
        let coll = node.id;
        // Fallback chain: on error or timeout of child i, activate child
        // i+1 (if currently standby) and deactivate child i.
        for i in 0..child_ids.len() {
            let this = SubjectRef::Op(child_ids[i]);
            if let Some(&next_id) = child_ids.get(i + 1) {
                let next = SubjectRef::Op(next_id);
                self.pending_rules.push(Rule::new(
                    format!("collector-fallback-error-{coll}-{i}"),
                    SubjectRef::Op(coll),
                    EventPattern::new(EventKind::Error, this),
                    Condition::True,
                    vec![Action::Activate(next)],
                ));
                if timeout.is_some() {
                    self.pending_rules.push(Rule::new(
                        format!("collector-fallback-timeout-{coll}-{i}"),
                        SubjectRef::Op(coll),
                        EventPattern::new(EventKind::Timeout, this),
                        Condition::True,
                        vec![Action::Activate(next), Action::Deactivate(this)],
                    ));
                }
            }
        }
        Ok(node)
    }

    fn lower_join(
        &mut self,
        left: &JoinTree,
        right: &JoinTree,
        left_mask: RelMask,
        right_mask: RelMask,
    ) -> Result<(OperatorNode, Vec<FragmentId>, f64)> {
        let mask = left_mask | right_mask;
        let (mut l_node, mut l_deps, _) = self.lower_node(left)?;
        let (mut r_node, mut r_deps, _) = self.lower_node(right)?;
        let l_est = self.memo.estimate(left_mask);
        let r_est = self.memo.estimate(right_mask);
        let est = self.memo.estimate(mask);
        let out_card = est.map(|e| e.card).unwrap_or(0.0);

        // Crossing edges: first becomes the hash keys, the rest post-join
        // filters.
        let crossing: Vec<&crate::memo::EdgeSpec> = self
            .memo
            .edges()
            .iter()
            .filter(|e| {
                let (ma, mb) = (1u32 << e.a, 1u32 << e.b);
                (left_mask & ma != 0 && right_mask & mb != 0)
                    || (left_mask & mb != 0 && right_mask & ma != 0)
            })
            .collect();
        let first = crossing.first().ok_or_else(|| {
            TukwilaError::Optimizer(format!(
                "no join predicate crosses {left_mask:#b} | {right_mask:#b}"
            ))
        })?;
        let left_has_a = left_mask & (1u32 << first.a) != 0;
        let (mut lk, mut rk) = if left_has_a {
            (first.a_col.clone(), first.b_col.clone())
        } else {
            (first.b_col.clone(), first.a_col.clone())
        };

        // physical choice
        let kind = match self.config.policy {
            PipelinePolicy::FullyPipelined
            | PipelinePolicy::MaterializeEachJoin
            | PipelinePolicy::MaterializeAndReplan => JoinKind::DoublePipelined,
            PipelinePolicy::Adaptive => {
                let demand = l_est.map(|e| e.bytes()).unwrap_or(f64::MAX)
                    + r_est.map(|e| e.bytes()).unwrap_or(f64::MAX);
                if demand <= self.config.dpj_max_input_bytes as f64 {
                    JoinKind::DoublePipelined
                } else {
                    JoinKind::HybridHash
                }
            }
        };
        let mut swapped = false;
        if kind == JoinKind::HybridHash {
            // smaller estimated side becomes the inner (right) build side
            let l_bytes = l_est.map(|e| e.bytes()).unwrap_or(f64::MAX);
            let r_bytes = r_est.map(|e| e.bytes()).unwrap_or(f64::MAX);
            if l_bytes < r_bytes {
                std::mem::swap(&mut l_node, &mut r_node);
                std::mem::swap(&mut lk, &mut rk);
                std::mem::swap(&mut l_deps, &mut r_deps);
                swapped = true;
            }
        }
        let node = match kind {
            JoinKind::DoublePipelined => self.builder.dpj(
                l_node,
                r_node,
                &lk,
                &rk,
                OverflowMethod::IncrementalLeftFlush,
            ),
            k => self.builder.join(k, l_node, r_node, &lk, &rk),
        };
        // Memory allocation (§3.1.1 annotation 4): estimate-driven, so
        // underestimated inputs get starved budgets (see config docs).
        let budget = if self.config.estimate_driven_memory {
            let demand = match kind {
                // DPJ holds both inputs; hybrid holds the build (right) side.
                JoinKind::DoublePipelined => {
                    l_est.map(|e| e.bytes()).unwrap_or(0.0)
                        + r_est.map(|e| e.bytes()).unwrap_or(0.0)
                }
                _ => r_est.map(|e| e.bytes()).unwrap_or(0.0),
            };
            ((demand * 1.3) as usize).clamp(16 << 10, self.config.join_memory_budget)
        } else {
            self.config.join_memory_budget
        };
        let node = node.with_memory(budget).with_est_cardinality(out_card);
        let join_id = node.id;
        let _ = swapped;

        // Intra-query parallelism: wrap hash-partitionable joins whose
        // estimated input volume justifies the fan-out in an exchange. The
        // degree scales with the input cardinality (one partition per
        // `parallel_min_rows` input rows) and is capped by the configured
        // parallelism, so small joins stay sequential and big ones use the
        // whole thread budget.
        let input_rows =
            l_est.map(|e| e.card).unwrap_or(0.0) + r_est.map(|e| e.card).unwrap_or(0.0);
        let node = if self.config.max_parallelism > 1
            && kind.is_hash_partitionable()
            && input_rows >= self.config.parallel_min_rows as f64
        {
            let by_rows = (input_rows / self.config.parallel_min_rows as f64) as usize;
            let degree = by_rows.clamp(2, self.config.max_parallelism);
            self.builder
                .exchange(node, degree)
                .with_est_cardinality(out_card)
        } else {
            node
        };

        // remaining crossing predicates as post-join filters
        let extra: Vec<Predicate> = crossing
            .iter()
            .skip(1)
            .map(|e| Predicate::eq_cols(e.a_col.clone(), e.b_col.clone()))
            .collect();
        let node = if extra.is_empty() {
            node
        } else {
            self.builder.select(node, Predicate::and(extra))
        };

        let mut deps = l_deps;
        deps.extend(r_deps);

        // fragment boundary?
        let materialize_here = mask != self.root_mask
            && match self.config.policy {
                PipelinePolicy::FullyPipelined => false,
                PipelinePolicy::MaterializeEachJoin | PipelinePolicy::MaterializeAndReplan => true,
                PipelinePolicy::Adaptive => kind == JoinKind::HybridHash,
            };
        if materialize_here {
            let frag = self.finish_fragment(node, mask, &deps, false)?;
            self.attach_replan_rule(frag, join_id);
            let scan = self
                .builder
                .table_scan(&materialization_name(mask))
                .with_est_cardinality(out_card);
            Ok((scan, vec![frag], out_card))
        } else {
            Ok((node, deps, out_card))
        }
    }

    fn attach_replan_rule(&mut self, frag: FragmentId, join_id: OpId) {
        let replan = matches!(
            self.config.policy,
            PipelinePolicy::MaterializeAndReplan | PipelinePolicy::Adaptive
        );
        if replan {
            self.builder.add_local_rule(
                frag,
                Rule::replan_on_misestimate(frag, join_id, self.config.replan_factor),
            );
        }
    }

    /// Close the current fragment around `root`.
    fn finish_fragment(
        &mut self,
        root: OperatorNode,
        mask: RelMask,
        deps: &[FragmentId],
        is_output: bool,
    ) -> Result<FragmentId> {
        // output fragment: apply query projection
        let root = if is_output {
            if let Some(cols) = &self.rq.query.projection {
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                self.builder.project(root, &refs)
            } else {
                root
            }
        } else {
            root
        };
        let root_id = root.id;
        let name = if is_output && !self.partial {
            "result".to_string()
        } else {
            materialization_name(mask)
        };
        let frag = self.builder.fragment(root, &name);
        if is_output && matches!(self.config.policy, PipelinePolicy::MaterializeAndReplan) {
            // replan opportunities also exist at the final materialization
            // (harmless: nothing remains to replan, core ignores it there),
            // but the paper attaches the rule per fragment — skip the
            // output fragment to avoid a pointless optimizer round-trip.
            let _ = root_id;
        }
        for scan in std::mem::take(&mut self.scans) {
            if self.config.reschedule_on_timeout {
                self.builder
                    .add_local_rule(frag, Rule::reschedule_on_timeout(frag, scan));
            }
        }
        for rule in std::mem::take(&mut self.pending_rules) {
            self.builder.add_local_rule(frag, rule);
        }
        for d in deps {
            self.builder.depends(*d, frag);
        }
        self.fragment_masks.push((frag, mask));
        Ok(frag)
    }
}
