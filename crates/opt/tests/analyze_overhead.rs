//! Measurement harness for the static-analyzer overhead numbers quoted in
//! EXPERIMENTS.md ("Static analyzer overhead"). Prints timings, asserts
//! nothing — run with
//!
//! ```text
//! cargo test -p tukwila-opt --release --test analyze_overhead -- --nocapture
//! ```
//!
//! Two measurements:
//!
//! 1. Optimizer chain queries (6/8/10 relations, exact stats): full
//!    `Optimizer::plan` time (which *includes* the in-lowering analysis)
//!    vs. standalone `Analyzer::analyze` time on the lowered plan.
//! 2. The three `perf_smoke` plan shapes, rebuilt verbatim: standalone
//!    analysis time per plan — the cost `plan-lint` pays per fixture.

use std::time::Instant;
use tukwila_analyze::Analyzer;
use tukwila_catalog::{AccessCost, Catalog, SourceDesc, TableStats};
use tukwila_common::{DataType, Schema};
use tukwila_opt::{Optimizer, OptimizerConfig, PipelinePolicy};
use tukwila_plan::{JoinKind, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_query::{ConjunctiveQuery, MediatedSchema, Reformulator};

fn chain(n: usize) -> (Catalog, tukwila_query::ReformulatedQuery) {
    let mut m = MediatedSchema::new();
    let mut cat = Catalog::new();
    let rels: Vec<String> = (0..n).map(|i| format!("r{i}")).collect();
    for (i, r) in rels.iter().enumerate() {
        let schema = Schema::of(r, &[("x", DataType::Int), ("y", DataType::Int)]);
        m.add_relation(r, schema.clone());
        let d = SourceDesc::new(format!("src_{r}"), r, schema)
            .with_cost(AccessCost::new(5.0, 0.01))
            .with_stats(TableStats::new(10_000 + i * 1000, 16));
        cat.add_source(d);
    }
    let mut q = ConjunctiveQuery::new("q", rels.clone());
    for w in rels.windows(2) {
        cat.set_join_selectivity(&format!("{}.y", w[0]), &format!("{}.x", w[1]), 0.001);
        q = q.join(&format!("{}.y", w[0]), &format!("{}.x", w[1]));
    }
    let rq = Reformulator::new(m).reformulate(&q, &cat).unwrap();
    (cat, rq)
}

/// `perf_smoke`'s `dpj3_join` scenario plan.
fn dpj3_plan() -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let a = pb.wrapper_scan("A");
    let b = pb.wrapper_scan("B");
    let c = pb.wrapper_scan("C");
    let j1 = pb.join(JoinKind::DoublePipelined, a, b, "k", "k");
    let top = pb.join(JoinKind::DoublePipelined, j1, c, "a.k", "k");
    let f = pb.fragment(top, "result");
    pb.build(f)
}

/// `perf_smoke`'s `dpj_spill` scenario plan.
fn spill_plan() -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let l = pb.wrapper_scan("L");
    let r = pb.wrapper_scan("R");
    let j = pb
        .dpj(l, r, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
        .with_memory(8_000);
    let f = pb.fragment(j, "result");
    pb.build(f)
}

/// `perf_smoke`'s `par_speedup` scenario plan at 4 threads: two leaf join
/// fragments feeding an exchange-partitioned top join.
fn par_plan() -> QueryPlan {
    let mut pb = PlanBuilder::new();
    let a = pb.wrapper_scan("A");
    let b = pb.wrapper_scan("B");
    let j0 = pb.join(JoinKind::DoublePipelined, a, b, "k", "k");
    let f0 = pb.fragment(j0, "mat0");
    let c = pb.wrapper_scan("C");
    let d = pb.wrapper_scan("D");
    let j1 = pb.join(JoinKind::DoublePipelined, c, d, "k", "k");
    let f1 = pb.fragment(j1, "mat1");
    let m0 = pb.table_scan("mat0");
    let m1 = pb.table_scan("mat1");
    let top = pb.join(JoinKind::DoublePipelined, m0, m1, "A.k", "C.k");
    let root = pb.exchange(top, 4);
    let f2 = pb.fragment(root, "result");
    pb.depends(f0, f2);
    pb.depends(f1, f2);
    pb.build(f2)
}

#[test]
fn measure() {
    let n = 200u32;
    for rels in [6usize, 8, 10] {
        let (cat, rq) = chain(rels);
        let config = OptimizerConfig {
            policy: PipelinePolicy::Adaptive,
            max_parallelism: 4,
            ..OptimizerConfig::default()
        };
        for _ in 0..3 {
            Optimizer::new(cat.clone(), config.clone())
                .plan(&rq)
                .unwrap();
        }
        let t0 = Instant::now();
        let mut pq = None;
        for _ in 0..n {
            pq = Some(
                Optimizer::new(cat.clone(), config.clone())
                    .plan(&rq)
                    .unwrap(),
            );
        }
        let opt_time = t0.elapsed();
        let plan = &pq.unwrap().lowered.plan;
        let analyzer = Analyzer::new().with_catalog(&cat).with_max_parallelism(4);
        let t1 = Instant::now();
        for _ in 0..n {
            let _ = analyzer.analyze(plan);
        }
        let an_time = t1.elapsed();
        println!(
            "chain{rels}: optimize {:?}/iter  analyze {:?}/iter  analyze share {:.1}%",
            opt_time / n,
            an_time / n,
            100.0 * an_time.as_secs_f64() / opt_time.as_secs_f64(),
        );
    }
    let analyzer = Analyzer::new().with_max_parallelism(4);
    for (name, plan) in [
        ("dpj3_join", dpj3_plan()),
        ("dpj_spill", spill_plan()),
        ("par_speedup", par_plan()),
    ] {
        for _ in 0..3 {
            let _ = analyzer.analyze(&plan);
        }
        let m = 1000u32;
        let t = Instant::now();
        for _ in 0..m {
            let _ = analyzer.analyze(&plan);
        }
        println!("perf_smoke {name}: analyze {:?}/iter", t.elapsed() / m);
    }
}
