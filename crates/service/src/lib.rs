//! # tukwila-service
//!
//! The concurrent multi-query service tier over the Tukwila engine: where
//! the single-query library of the paper meets production traffic.
//!
//! ```text
//!  clients ──▶ admission control ──▶ wait queue ──▶ worker pool
//!                  (reject)                          │  │  │
//!                                                    ▼  ▼  ▼
//!                                       TukwilaSystem (&self, shared)
//!                                        │ per-query ExecEnv + grant
//!                                        ▼
//!              memory governor ◀── charges ──▶ shared source-result cache
//!              (fleet budget)                  (single-flight, LRU)
//! ```
//!
//! * [`QueryService`] — session front door: submit with per-query
//!   deadlines, cancel via [`QueryTicket`], bounded in-flight queries plus
//!   a bounded wait queue (submissions beyond that are rejected —
//!   backpressure instead of collapse).
//! * [`MemoryGovernor`] — layers per-query memory budgets (and a fleet
//!   budget) on top of the storage layer's per-operator reservations, so
//!   one spilling query resolves overflow against its own share instead of
//!   starving the fleet.
//! * The shared **source-result cache**
//!   ([`tukwila_source::SourceResultCache`]) is installed into the source
//!   registry so concurrent queries over the same mediated relations fetch
//!   each slow wrapper result once (single-flight), with memory-bounded
//!   LRU eviction charged to the governor.

pub mod governor;
pub mod service;

pub use governor::{GovernorSnapshot, MemoryGovernor};
pub use service::{
    QueryOptions, QueryResponse, QueryService, QueryServiceConfig, QueryTicket, ServiceStats,
};
