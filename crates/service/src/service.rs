//! The multi-query service front door.
//!
//! [`QueryService`] turns the single-query [`TukwilaSystem`] library into a
//! concurrent service:
//!
//! * **admission control** — at most `workers` queries execute at once; up
//!   to `queue_capacity` more wait in FIFO order; beyond that submissions
//!   are rejected immediately with an `admission` error (backpressure, not
//!   unbounded queueing);
//! * a **worker pool** — each worker drains one query's full reformulate →
//!   optimize → execute → re-optimize loop through the shared
//!   [`TukwilaSystem`] (planning takes a short lock; no global lock is
//!   held across fragment execution);
//! * **per-query deadlines and cancellation** — a wall-clock deadline set
//!   at submission (or [`QueryServiceConfig::default_deadline`]) cancels
//!   cleanly mid-fragment; the control's own timer trips the deadline even
//!   while a worker is blocked inside a slow source's link model;
//! * the **memory governor** — each query executes under a per-query
//!   budget granted from the fleet pool (see [`crate::MemoryGovernor`]);
//! * the optional **shared source-result cache** — installed into the
//!   system's source registry so concurrent queries over the same
//!   mediated relations fetch each slow wrapper result once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use tukwila_common::{Result, TukwilaError};
use tukwila_core::{ExecutionStats, QueryResult, TukwilaSystem};
use tukwila_exec::{CancelKind, QueryControl};
use tukwila_query::ConjunctiveQuery;
use tukwila_source::{CacheStats, SourceResultCache};
use tukwila_trace::{TraceEvent, TraceLevel};

use crate::governor::MemoryGovernor;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct QueryServiceConfig {
    /// Worker threads — the bound on concurrently *executing* queries.
    pub workers: usize,
    /// Queries allowed to wait for a worker; submissions beyond
    /// `workers + queue_capacity` in flight are rejected (backpressure).
    pub queue_capacity: usize,
    /// Deadline applied to queries submitted without an explicit timeout.
    pub default_deadline: Option<Duration>,
    /// Fleet-wide memory budget in bytes (0 = unlimited).
    pub total_memory: usize,
    /// Per-query memory budget in bytes granted from the fleet pool.
    pub query_memory: usize,
    /// Install a shared source-result cache with this byte budget
    /// (`None` = no cross-query caching).
    pub cache_memory: Option<usize>,
    /// Intra-query thread budget granted to each executing query's
    /// fragment scheduler and exchange operators. `0` = auto: available
    /// cores divided by the worker count (the active-query estimate),
    /// minimum 1 — so a 16-client run does not oversubscribe the box.
    pub intra_query_threads: usize,
    /// Trace level installed on every admitted query's control: `Off`
    /// disables recording, `Events` (default) records the structured
    /// event timeline, `Metrics` adds per-operator counters.
    pub trace_level: TraceLevel,
    /// Worker process addresses (`host:port`) for distributed execution.
    /// Non-empty makes this service a coordinator: exchanges over joins
    /// scatter their partition pipelines to these workers over TCP
    /// instead of local threads, each shard budgeted with its slice of
    /// the query's memory grant. Workers are dialed lazily per query, so
    /// the service starts even while workers are still coming up.
    pub remote_workers: Vec<String>,
}

impl Default for QueryServiceConfig {
    fn default() -> Self {
        QueryServiceConfig {
            workers: 4,
            queue_capacity: 16,
            default_deadline: None,
            total_memory: 256 << 20,
            query_memory: 32 << 20,
            cache_memory: Some(32 << 20),
            intra_query_threads: 0,
            trace_level: TraceLevel::Events,
            remote_workers: Vec::new(),
        }
    }
}

/// Resolve the effective per-query thread budget for a service
/// configuration: the explicit setting, or cores / workers (min 1).
fn resolve_intra_query_threads(config: &QueryServiceConfig) -> usize {
    if config.intra_query_threads > 0 {
        return config.intra_query_threads;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    (cores / config.workers.max(1)).max(1)
}

/// Per-submission options.
#[derive(Debug, Clone, Default)]
pub struct QueryOptions {
    /// Wall-clock budget from submission; overrides the config default.
    /// The deadline covers queue wait *and* execution.
    pub timeout: Option<Duration>,
}

impl QueryOptions {
    /// Options with a `timeout(n)`-style wall-clock deadline.
    pub fn with_timeout(timeout: Duration) -> Self {
        QueryOptions {
            timeout: Some(timeout),
        }
    }
}

/// What came back for one submitted query.
#[derive(Debug)]
pub struct QueryResponse {
    /// Submission id.
    pub id: u64,
    /// The result, or why there is none.
    pub outcome: Result<QueryResult>,
    /// Execution statistics — populated (partially) even when the query
    /// failed, timed out, or was cancelled.
    pub stats: ExecutionStats,
}

impl QueryResponse {
    /// Whether the query produced a result.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Handle to one admitted query.
pub struct QueryTicket {
    id: u64,
    control: Arc<QueryControl>,
    rx: Receiver<QueryResponse>,
}

impl QueryTicket {
    /// Submission id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Cancel the query (no-op if it already finished).
    pub fn cancel(&self) {
        self.control.cancel(CancelKind::User);
    }

    /// Block until the query finishes and take its response.
    pub fn wait(self) -> QueryResponse {
        let id = self.id;
        self.rx.recv().unwrap_or_else(|_| QueryResponse {
            id,
            outcome: Err(TukwilaError::Internal(
                "service dropped before responding".into(),
            )),
            stats: ExecutionStats::default(),
        })
    }
}

/// Service-level counters (monotonic since service start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries accepted by admission control.
    pub submitted: u64,
    /// Submissions rejected at the front door (queue full).
    pub rejected: u64,
    /// Queries that returned a result.
    pub completed: u64,
    /// Queries that failed with an engine error (including rule aborts).
    pub failed: u64,
    /// Queries cancelled by the client or service shutdown.
    pub cancelled: u64,
    /// Queries that hit their submission deadline.
    pub timed_out: u64,
    /// Currently waiting for a worker.
    pub queued: usize,
    /// Currently executing.
    pub running: usize,
    /// Effective intra-query thread budget each executing query runs with
    /// (resolved from config or the cores/workers estimate).
    pub intra_query_threads: usize,
    /// Warn-severity static-analysis findings summed over every plan the
    /// service ran (per-query counts are on each response's
    /// [`ExecutionStats::plan_diag_warnings`]). Error findings never
    /// execute, so they surface as failed queries, not here.
    pub plan_diag_warnings: u64,
    /// Info-severity static-analysis findings summed over every plan run.
    pub plan_diag_infos: u64,
    /// Deepest the admission queue has ever been (queued high-water).
    pub queue_depth_high_water: usize,
    /// Trace events recorded across every query the service ran (0 when
    /// the configured [`QueryServiceConfig::trace_level`] is `Off`).
    pub trace_events: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    timed_out: AtomicU64,
    plan_diag_warnings: AtomicU64,
    plan_diag_infos: AtomicU64,
    trace_events: AtomicU64,
}

struct Job {
    id: u64,
    query: ConjunctiveQuery,
    control: Arc<QueryControl>,
    submitted: Instant,
    reply: Sender<QueryResponse>,
}

struct Inner {
    system: TukwilaSystem,
    governor: MemoryGovernor,
    cache: Option<SourceResultCache>,
    config: QueryServiceConfig,
    /// Resolved per-query thread budget (config or cores/workers).
    intra_query_threads: usize,
    queued: AtomicUsize,
    /// Deepest `queued` has ever been.
    queue_high_water: AtomicUsize,
    running: AtomicUsize,
    /// Admitted and not yet responded (queued + running + handoff gaps);
    /// the quantity admission control bounds.
    in_flight: AtomicUsize,
    next_id: AtomicU64,
    /// Controls of admitted-but-unfinished queries, cancelled in bulk on
    /// shutdown.
    active: Mutex<HashMap<u64, Arc<QueryControl>>>,
    counters: Counters,
}

/// A concurrent multi-query service over one [`TukwilaSystem`].
pub struct QueryService {
    inner: Arc<Inner>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Start the service over `system`: spawns the worker pool, wires the
    /// governor, and (if configured) installs the shared source-result
    /// cache into the system's source registry.
    pub fn new(mut system: TukwilaSystem, config: QueryServiceConfig) -> Self {
        let config = QueryServiceConfig {
            workers: config.workers.max(1),
            ..config
        };
        if !config.remote_workers.is_empty() {
            system.install_shard_executor(Arc::new(tukwila_net::Cluster::new(
                &config.remote_workers,
            )));
        }
        let governor = MemoryGovernor::new(config.total_memory);
        let cache = match config.cache_memory {
            Some(budget) => {
                let cache =
                    SourceResultCache::with_reservation(governor.grant("source_cache", budget));
                system.env().sources.set_cache(cache.clone());
                Some(cache)
            }
            // cache_memory: None installs nothing and leaves any cache a
            // *live* co-owner installed on this shared registry alone —
            // a dropped owner uninstalls its own cache (see Drop), so no
            // stale cache can linger either way.
            None => None,
        };

        let intra_query_threads = resolve_intra_query_threads(&config);
        let inner = Arc::new(Inner {
            system,
            governor,
            cache,
            config: config.clone(),
            intra_query_threads,
            queued: AtomicUsize::new(0),
            queue_high_water: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        });

        // Capacity covers everything admission lets through, so `send`
        // never blocks a submitting client.
        let (tx, rx) = bounded::<Job>(config.workers + config.queue_capacity + 1);
        let workers = (0..config.workers)
            .map(|_| {
                let inner = inner.clone();
                let rx = rx.clone();
                std::thread::spawn(move || worker_loop(inner, rx))
            })
            .collect();
        QueryService {
            inner,
            tx: Some(tx),
            workers,
        }
    }

    /// Submit with default options.
    pub fn submit(&self, query: &ConjunctiveQuery) -> Result<QueryTicket> {
        self.submit_with(query, QueryOptions::default())
    }

    /// Submit a query. Admission control applies immediately: at most
    /// `workers + queue_capacity` queries may be in flight (executing or
    /// waiting); beyond that the submission is rejected with an
    /// `admission` error rather than queued unboundedly.
    pub fn submit_with(
        &self,
        query: &ConjunctiveQuery,
        options: QueryOptions,
    ) -> Result<QueryTicket> {
        let inner = &self.inner;
        let cap = inner.config.workers + inner.config.queue_capacity;
        if inner
            .in_flight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < cap).then_some(n + 1)
            })
            .is_err()
        {
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(TukwilaError::Admission(format!(
                "in-flight bound reached ({} queued, {} running, cap {cap})",
                inner.queued.load(Ordering::Relaxed),
                inner.running.load(Ordering::Relaxed)
            )));
        }
        let depth = inner.queued.fetch_add(1, Ordering::Relaxed) + 1;
        inner.queue_high_water.fetch_max(depth, Ordering::Relaxed);

        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let deadline = options.timeout.or(inner.config.default_deadline);
        let level = inner.config.trace_level;
        let control = match deadline {
            Some(d) => QueryControl::with_deadline_traced(d, level),
            None => QueryControl::unbounded_traced(level),
        };
        let trace = control.trace();
        if trace.events_enabled() {
            trace.emit(TraceEvent::AdmissionEnqueued {
                queued: depth as u64,
            });
        }
        inner.active.lock().insert(id, control.clone());
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);

        let (reply, rx) = bounded(1);
        let job = Job {
            id,
            query: query.clone(),
            control: control.clone(),
            submitted: Instant::now(),
            reply,
        };
        let tx = self
            .tx
            .as_ref()
            .expect("sender lives as long as the service");
        if tx.send(job).is_err() {
            inner.queued.fetch_sub(1, Ordering::Relaxed);
            inner.in_flight.fetch_sub(1, Ordering::Relaxed);
            inner.active.lock().remove(&id);
            return Err(TukwilaError::Internal("service worker pool is down".into()));
        }
        Ok(QueryTicket { id, control, rx })
    }

    /// Submit and block for the response (convenience for tests/tools).
    pub fn execute(&self, query: &ConjunctiveQuery) -> QueryResponse {
        match self.submit(query) {
            Ok(t) => t.wait(),
            Err(e) => QueryResponse {
                id: 0,
                outcome: Err(e),
                stats: ExecutionStats::default(),
            },
        }
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            queued: self.inner.queued.load(Ordering::Relaxed),
            running: self.inner.running.load(Ordering::Relaxed),
            intra_query_threads: self.inner.intra_query_threads,
            plan_diag_warnings: c.plan_diag_warnings.load(Ordering::Relaxed),
            plan_diag_infos: c.plan_diag_infos.load(Ordering::Relaxed),
            queue_depth_high_water: self.inner.queue_high_water.load(Ordering::Relaxed),
            trace_events: c.trace_events.load(Ordering::Relaxed),
        }
    }

    /// The memory governor.
    pub fn governor(&self) -> &MemoryGovernor {
        &self.inner.governor
    }

    /// Shared source-result cache counters, if a cache is installed.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.inner.cache.as_ref().map(|c| c.stats())
    }

    /// The shared [`TukwilaSystem`] (catalog inspection etc.).
    pub fn system(&self) -> &TukwilaSystem {
        &self.inner.system
    }

    /// Stop accepting work, cancel in-flight queries, and join the worker
    /// pool. Equivalent to dropping the service.
    pub fn shutdown(self) {}
}

impl Drop for QueryService {
    fn drop(&mut self) {
        // Cancel whatever is still running so workers unblock promptly.
        for control in self.inner.active.lock().values() {
            control.cancel(CancelKind::Shutdown);
        }
        // Closing the channel ends every worker's recv loop.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Uninstall the cache this service owns (identity-guarded: never
        // clobbers a cache another service installed since): its entries
        // are charged to this service's governor, and a later service
        // over the same registry must start from a clean slate.
        if let Some(cache) = &self.inner.cache {
            self.inner.system.env().sources.uninstall_cache(cache);
        }
    }
}

fn worker_loop(inner: Arc<Inner>, rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        inner.running.fetch_add(1, Ordering::Relaxed);

        let mut stats = ExecutionStats {
            queue_wait: job.submitted.elapsed(),
            ..ExecutionStats::default()
        };
        let outcome = match job.control.check() {
            // Deadline passed (or cancelled) while still queued.
            Err(e) => {
                match e.kind() {
                    "deadline_exceeded" => stats.deadline_exceeded = true,
                    "cancelled" => stats.cancelled = true,
                    _ => {}
                }
                Err(e)
            }
            Ok(()) => {
                let trace = job.control.trace();
                if trace.events_enabled() {
                    trace.emit(TraceEvent::AdmissionDequeued {
                        waited_ms: stats.queue_wait.as_millis() as u64,
                    });
                }
                let pool = inner
                    .governor
                    .query_pool(format!("q{}", job.id), inner.config.query_memory);
                if trace.events_enabled() {
                    // Grants are soft (reservation budgets clamp via
                    // pressure, not refusal): record whether the fleet pool
                    // actually had this query's share left.
                    let snap = inner.governor.snapshot();
                    let ask = inner.config.query_memory;
                    let fits = snap.total_budget == 0 || snap.total_used + ask <= snap.total_budget;
                    trace.emit(if fits {
                        TraceEvent::ReservationGranted { bytes: ask as u64 }
                    } else {
                        TraceEvent::ReservationDenied { bytes: ask as u64 }
                    });
                    if snap.total_budget > 0 && snap.total_used > snap.total_budget {
                        trace.emit(TraceEvent::GovernorPressure {
                            used: snap.total_used as u64,
                            budget: snap.total_budget as u64,
                        });
                    }
                }
                let env = inner
                    .system
                    .env()
                    .for_query_with_memory(pool)
                    .with_threads(inner.intra_query_threads);
                inner
                    .system
                    .execute_in_env(&job.query, &job.control, env, &mut stats)
            }
        };
        inner
            .counters
            .trace_events
            .fetch_add(job.control.trace().recorded(), Ordering::Relaxed);

        let c = &inner.counters;
        c.plan_diag_warnings
            .fetch_add(stats.plan_diag_warnings as u64, Ordering::Relaxed);
        c.plan_diag_infos
            .fetch_add(stats.plan_diag_infos as u64, Ordering::Relaxed);
        match &outcome {
            Ok(_) => c.completed.fetch_add(1, Ordering::Relaxed),
            Err(_) if stats.deadline_exceeded => c.timed_out.fetch_add(1, Ordering::Relaxed),
            Err(_) if stats.cancelled => c.cancelled.fetch_add(1, Ordering::Relaxed),
            Err(_) => c.failed.fetch_add(1, Ordering::Relaxed),
        };

        inner.active.lock().remove(&job.id);
        inner.running.fetch_sub(1, Ordering::Relaxed);
        inner.in_flight.fetch_sub(1, Ordering::Relaxed);
        let _ = job.reply.send(QueryResponse {
            id: job.id,
            outcome,
            stats,
        });
    }
}
