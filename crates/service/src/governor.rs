//! The global memory governor.
//!
//! Tukwila's storage layer tracks memory per operator
//! ([`tukwila_storage::MemoryReservation`]); the governor layers two more
//! levels on top for a fleet of concurrent queries:
//!
//! * a **per-query budget** — each admitted query executes in its own
//!   [`MemoryManager`] whose pool budget is the query's grant, so the
//!   engine's overflow resolution (`under_pressure`) fires when the query
//!   as a whole outgrows its share, not just when one operator does;
//! * a **fleet budget** — every per-query pool is parented to a
//!   reservation on the governor's fleet pool, so total usage is visible
//!   in one place and fleet-level overage pressures *every* query (and the
//!   shared source-result cache) into shedding memory.
//!
//! The effect the service tier needs: one spilling query resolves its own
//! overflow against its own budget and cannot starve the rest of the
//! fleet.

use tukwila_storage::{MemoryManager, MemoryReservation};

/// Point-in-time view of fleet memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorSnapshot {
    /// Fleet budget in bytes (0 = unlimited).
    pub total_budget: usize,
    /// Bytes currently charged across all queries and the cache.
    pub total_used: usize,
    /// Fleet high-water mark.
    pub peak_used: usize,
}

/// Fleet-wide memory governor.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    fleet: MemoryManager,
}

impl MemoryGovernor {
    /// Governor with a fleet-wide budget in bytes (0 = unlimited).
    pub fn new(total_budget: usize) -> Self {
        MemoryGovernor {
            fleet: MemoryManager::new().with_budget(total_budget),
        }
    }

    /// The fleet pool (for registering non-query consumers such as the
    /// shared source-result cache).
    pub fn fleet(&self) -> &MemoryManager {
        &self.fleet
    }

    /// Grant `budget` bytes to a named consumer as a reservation on the
    /// fleet pool.
    pub fn grant(&self, label: impl Into<String>, budget: usize) -> MemoryReservation {
        self.fleet.register(label, budget)
    }

    /// Build the per-query memory pool for one admitted query: its charges
    /// propagate into a fleet-pool grant, and its pool budget makes
    /// query-level overage trigger operator overflow resolution.
    pub fn query_pool(&self, label: impl Into<String>, budget: usize) -> MemoryManager {
        MemoryManager::with_parent(self.grant(label, budget)).with_budget(budget)
    }

    /// Fleet memory snapshot.
    pub fn snapshot(&self) -> GovernorSnapshot {
        GovernorSnapshot {
            total_budget: self.fleet.budget(),
            total_used: self.fleet.total_used(),
            peak_used: self.fleet.peak_used(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_pools_roll_up_to_fleet() {
        let gov = MemoryGovernor::new(1000);
        let p1 = gov.query_pool("q1", 400);
        let p2 = gov.query_pool("q2", 400);
        let r1 = p1.register("op1", 1_000_000);
        let r2 = p2.register("op2", 1_000_000);
        r1.charge(300);
        r2.charge(350);
        let snap = gov.snapshot();
        assert_eq!(snap.total_used, 650);
        assert_eq!(snap.total_budget, 1000);
        assert!(!r1.under_pressure() && !r2.under_pressure());
        // q1 exceeds its own 400-byte grant → only q1 is pressured
        r1.charge(150);
        assert!(r1.under_pressure());
        assert!(!r2.under_pressure(), "q2 is unaffected by q1's overage");
        // fleet exceeds 1000 → everyone is pressured
        r2.charge(1_000);
        assert!(r2.under_pressure() && r1.under_pressure());
    }
}
