//! Concurrency stress: many queries through one `QueryService` from many
//! client threads — mixed fast/slow sources, a spilling query, a client
//! cancellation, a deadline — asserting *isolation*: every completed
//! query's result multiset matches its trusted single-query reference.

use std::sync::Arc;
use std::time::Duration;

use tukwila_core::TpchDeployment;
use tukwila_opt::{OptimizerConfig, PipelinePolicy};
use tukwila_service::{QueryOptions, QueryService, QueryServiceConfig};
use tukwila_source::LinkModel;
use tukwila_tpchgen::TpchTable;

const SF: f64 = 0.002;

/// Deployment with a fast core (region/nation/supplier), a bursty "slow"
/// pair (partsupp/part), and a stalling orders source for the
/// cancellation/deadline queries.
fn deployment() -> TpchDeployment {
    let bursty = LinkModel {
        burst_size: 200,
        burst_gap: Duration::from_millis(2),
        ..LinkModel::instant()
    };
    let stalling = LinkModel {
        stall_after: Some(20),
        stall_duration: Duration::from_secs(3),
        ..LinkModel::instant()
    };
    TpchDeployment::builder(SF, 31)
        .tables(&[
            TpchTable::Region,
            TpchTable::Nation,
            TpchTable::Supplier,
            TpchTable::Partsupp,
            TpchTable::Part,
            TpchTable::Customer,
            TpchTable::Orders,
        ])
        .link(TpchTable::Partsupp, bursty.clone())
        .link(TpchTable::Part, bursty)
        .link(TpchTable::Orders, stalling)
        .build()
}

fn service(d: &TpchDeployment, config: OptimizerConfig) -> QueryService {
    QueryService::new(
        d.system(config),
        QueryServiceConfig {
            workers: 6,
            queue_capacity: 32,
            cache_memory: Some(8 << 20),
            ..QueryServiceConfig::default()
        },
    )
}

#[test]
fn eight_plus_concurrent_queries_stay_isolated() {
    let d = deployment();
    // Tiny fixed join budgets force the big partsupp⋈part query through
    // overflow resolution while the small ones stay in memory.
    let config = OptimizerConfig {
        policy: PipelinePolicy::Adaptive,
        join_memory_budget: 64 << 10,
        estimate_driven_memory: false,
        ..OptimizerConfig::default()
    };
    let svc = Arc::new(service(&d, config));

    let q_small = d.query_for("q-small", &[TpchTable::Supplier, TpchTable::Nation]);
    let q_med = d.query_for(
        "q-med",
        &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
    );
    let q_big = d.query_for(
        "q-big",
        &[TpchTable::Supplier, TpchTable::Partsupp, TpchTable::Part],
    );
    let q_stall = d.query_for("q-stall", &[TpchTable::Customer, TpchTable::Orders]);

    let gold_small = d.gold(&q_small).unwrap();
    let gold_med = d.gold(&q_med).unwrap();
    let gold_big = d.gold(&q_big).unwrap();

    // One query cancelled by the client, one killed by its deadline; both
    // sit on the stalling orders source so they are reliably mid-flight.
    let cancelled = svc.submit(&q_stall).unwrap();
    let timed_out = svc
        .submit_with(
            &q_stall,
            QueryOptions::with_timeout(Duration::from_millis(120)),
        )
        .unwrap();

    // 12 queries from 4 client threads (3 each, mixed sizes).
    let mut results = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let svc = svc.clone();
            let queries = [&q_small, &q_med, &q_big];
            handles.push(s.spawn(move || {
                queries
                    .into_iter()
                    .map(|q| {
                        let name = q.name.clone();
                        (name, svc.submit(q).unwrap().wait())
                    })
                    .collect::<Vec<_>>()
            }));
        }
        std::thread::sleep(Duration::from_millis(40));
        cancelled.cancel();
        for h in handles {
            results.extend(h.join().unwrap());
        }
    });

    // Isolation: every concurrent run matches its single-query reference.
    let mut big_spilled = false;
    for (name, resp) in &results {
        let result = resp
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("query `{name}` failed: {e}"));
        let gold = match name.as_str() {
            "q-small" => &gold_small,
            "q-med" => &gold_med,
            "q-big" => &gold_big,
            other => panic!("unexpected query {other}"),
        };
        assert!(
            result.relation.bag_eq_unordered(gold),
            "query `{}` diverged under concurrency: got {} tuples, want {}",
            name,
            result.relation.len(),
            gold.len()
        );
        if name == "q-big" && result.stats.spill_bytes_written > 0 {
            big_spilled = true;
        }
    }
    assert_eq!(results.len(), 12);
    assert!(
        big_spilled,
        "the partsupp⋈part query must spill under its tiny join budget"
    );

    // The cancelled query reports a client cancellation...
    let c = cancelled.wait();
    assert_eq!(c.outcome.unwrap_err().kind(), "cancelled");
    assert!(c.stats.cancelled, "client cancel must be flagged in stats");
    assert!(!c.stats.deadline_exceeded);
    // ...the timed-out one a deadline, well before the 3s stall would end.
    let t = timed_out.wait();
    assert_eq!(t.outcome.unwrap_err().kind(), "deadline_exceeded");
    assert!(
        t.stats.deadline_exceeded,
        "deadline must be flagged in stats"
    );
    assert!(t.stats.duration < Duration::from_secs(2));

    let stats = svc.stats();
    assert_eq!(stats.submitted, 14);
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.failed, 0);

    // The shared cache coalesced repeated fetches of the same tables.
    let cache = svc.cache_stats().unwrap();
    assert!(
        cache.hits > 0,
        "concurrent identical queries must hit the cache"
    );

    // Fleet memory was accounted and released.
    let snap = svc.governor().snapshot();
    assert!(snap.peak_used > 0);
}

#[test]
fn admission_control_rejects_when_queue_is_full() {
    let d = deployment();
    let svc = QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers: 1,
            queue_capacity: 2,
            cache_memory: None,
            ..QueryServiceConfig::default()
        },
    );
    let q_stall = d.query_for("q-stall", &[TpchTable::Customer, TpchTable::Orders]);
    let q_fast = d.query_for("q-fast", &[TpchTable::Supplier, TpchTable::Nation]);

    // Occupy the single worker with a stalling query, then fill the queue.
    let running = svc.submit(&q_stall).unwrap();
    std::thread::sleep(Duration::from_millis(50)); // worker picks it up
    let _queued1 = svc.submit(&q_fast).unwrap();
    let _queued2 = svc.submit(&q_fast).unwrap();
    let rejected = match svc.submit(&q_fast) {
        Err(e) => e,
        Ok(_) => panic!("queue of 2 is full; backpressure must reject"),
    };
    assert_eq!(rejected.kind(), "admission");
    assert_eq!(svc.stats().rejected, 1);

    running.cancel();
    let resp = running.wait();
    assert!(resp.stats.cancelled);
}

#[test]
fn shutdown_cancels_in_flight_queries() {
    let d = deployment();
    let svc = service(&d, OptimizerConfig::default());
    let q_stall = d.query_for("q-stall", &[TpchTable::Customer, TpchTable::Orders]);
    let ticket = svc.submit(&q_stall).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let start = std::time::Instant::now();
    svc.shutdown(); // must not wait out the 3s stall
    assert!(start.elapsed() < Duration::from_secs(2));
    let resp = ticket.wait();
    assert!(resp.outcome.is_err());
}

/// The intra-query thread budget: an explicit setting is surfaced in
/// `ServiceStats` and parallel execution through the service stays
/// gold-correct; the auto default resolves to cores/workers (min 1).
#[test]
fn intra_query_thread_budget_is_surfaced_and_correct() {
    let d = deployment();
    // Parallel lowering on: low threshold so the small joins partition.
    let cfg = OptimizerConfig {
        policy: PipelinePolicy::Adaptive,
        max_parallelism: 3,
        parallel_min_rows: 16,
        ..OptimizerConfig::default()
    };
    let svc = QueryService::new(
        d.system(cfg),
        QueryServiceConfig {
            workers: 2,
            intra_query_threads: 3,
            cache_memory: None,
            ..QueryServiceConfig::default()
        },
    );
    assert_eq!(svc.stats().intra_query_threads, 3);
    let q = d.query_for(
        "q-par",
        &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
    );
    let gold = d.gold(&q).unwrap();
    let resp = svc.execute(&q);
    let result = resp.outcome.expect("parallel service query failed");
    assert!(result.relation.bag_eq_unordered(&gold));

    // Auto budget: cores / workers, floored at 1 — never zero.
    let svc_auto = QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers: 64, // more workers than any box has cores
            cache_memory: None,
            ..QueryServiceConfig::default()
        },
    );
    assert_eq!(svc_auto.stats().intra_query_threads, 1);
}
