//! Coordinator role at the service tier: a `QueryService` configured with
//! `remote_workers` scatters its exchanges to worker processes (loopback
//! harness here) and must return exactly the single-node reference result,
//! with the distributed trace events present in the query's timeline.

use std::sync::Arc;

use tukwila_core::TpchDeployment;
use tukwila_net::WorkerServer;
use tukwila_opt::OptimizerConfig;
use tukwila_service::{QueryService, QueryServiceConfig};
use tukwila_tpchgen::TpchTable;
use tukwila_trace::TraceLevel;

const SF: f64 = 0.005;

fn deployment() -> TpchDeployment {
    TpchDeployment::builder(SF, 17)
        .tables(&[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier])
        .build()
}

/// Exchanges on every join, degree 2, regardless of estimates.
fn parallel_config() -> OptimizerConfig {
    OptimizerConfig {
        max_parallelism: 2,
        parallel_min_rows: 1,
        ..OptimizerConfig::default()
    }
}

#[test]
fn service_with_remote_workers_matches_reference() {
    let d = deployment();
    let system = d.system(parallel_config());
    let sources = system.env().sources.clone();

    // Two loopback workers sharing the coordinator's source registry.
    let w1 = WorkerServer::bind("127.0.0.1:0", sources.clone())
        .expect("bind w1")
        .spawn()
        .expect("spawn w1");
    let w2 = WorkerServer::bind("127.0.0.1:0", sources)
        .expect("bind w2")
        .spawn()
        .expect("spawn w2");

    let svc = Arc::new(QueryService::new(
        system,
        QueryServiceConfig {
            workers: 2,
            remote_workers: vec![w1.addr(), w2.addr()],
            trace_level: TraceLevel::Events,
            ..QueryServiceConfig::default()
        },
    ));

    let q = d.query_for(
        "dist",
        &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
    );
    let gold = d.gold(&q).expect("reference result");

    let resp = svc.submit(&q).expect("submit").wait();
    let result = resp
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("distributed query failed: {e}"));
    assert!(
        result.relation.bag_eq_unordered(&gold),
        "distributed service result diverged: got {} tuples, want {}",
        result.relation.len(),
        gold.len()
    );

    // The distributed taxonomy shows up in the query's own trace.
    let trace = result.trace.as_ref().expect("trace snapshot");
    let kinds: Vec<&str> = trace.events.iter().map(|r| r.event.kind()).collect();
    assert!(
        kinds.contains(&"worker-connected"),
        "missing worker-connected in {kinds:?}"
    );
    assert!(
        kinds.contains(&"net-batch-sent"),
        "missing net-batch-sent in {kinds:?}"
    );
    assert!(
        kinds.contains(&"net-batch-received"),
        "missing net-batch-received in {kinds:?}"
    );

    drop(svc);
    w1.shutdown();
    w2.shutdown();
}

#[test]
fn service_without_remote_workers_is_unchanged() {
    let d = deployment();
    let svc = QueryService::new(d.system(parallel_config()), QueryServiceConfig::default());
    let q = d.query_for("local", &[TpchTable::Nation, TpchTable::Supplier]);
    let gold = d.gold(&q).expect("reference result");
    let resp = svc.submit(&q).expect("submit").wait();
    let result = resp
        .outcome
        .as_ref()
        .unwrap_or_else(|e| panic!("local query failed: {e}"));
    assert!(result.relation.bag_eq_unordered(&gold));
}
