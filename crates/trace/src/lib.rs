//! Structured per-query execution traces and operator metrics.
//!
//! Tukwila's thesis is *adaptivity*: rules fire on source timeouts, joins
//! switch overflow methods under memory pressure, the scheduler reroutes
//! around stalled fragments. End-of-query counters cannot show any of
//! that — this crate records *when* each adaptive decision happened.
//!
//! A [`QueryTrace`] is attached to every query control and shared by all
//! layers the query passes through (admission, scheduler, rule engine,
//! operators, source cache, spill store). It holds:
//!
//! * a bounded ring of timestamped [`TraceEvent`]s (the event taxonomy of
//!   DESIGN.md §10) — oldest entries are dropped, never blocking the
//!   engine;
//! * a [`MetricsRegistry`] of per-operator counters (rows in/out, batches,
//!   build/probe time, output-queue stalls) sampled at batch boundaries.
//!
//! Tracing is gated at runtime by [`TraceLevel`]: `Off` reduces every
//! emit to one relaxed atomic load, `Events` (default) records the event
//! ring only, `Metrics` adds the per-operator counters. A [`TraceSnapshot`]
//! taken at query completion travels with the result and renders as JSON,
//! CSV, or a human-readable timeline (see `render`).

mod json;
mod metrics;
mod render;

pub use json::JsonValue;
pub use metrics::{MetricsRegistry, OpMetrics, OpMetricsSnapshot};

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// How much a query records. Ordered: each level includes the previous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing; every emit point is one relaxed atomic load.
    Off,
    /// Record the timestamped event ring (adaptivity decisions).
    #[default]
    Events,
    /// Events plus per-operator counters sampled at batch boundaries.
    Metrics,
}

impl TraceLevel {
    /// Stable lowercase name (used in JSON and `TUKWILA_TRACE`).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Events => "events",
            TraceLevel::Metrics => "metrics",
        }
    }

    /// Parse a level name (inverse of [`TraceLevel::as_str`]).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "events" => Some(TraceLevel::Events),
            "metrics" => Some(TraceLevel::Metrics),
            _ => None,
        }
    }
}

/// Outcome of a per-query source-cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from a completed cache entry.
    Hit,
    /// This query led the fetch (cache miss).
    Miss,
    /// Coalesced onto another query's in-flight fetch of the same key.
    Coalesced,
    /// The cache declined (uncacheable, over budget, or lease held).
    Bypass,
}

impl CacheOutcome {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
            CacheOutcome::Bypass => "bypass",
        }
    }

    /// Parse an outcome name (inverse of [`CacheOutcome::as_str`]).
    pub fn parse(s: &str) -> Option<CacheOutcome> {
        match s {
            "hit" => Some(CacheOutcome::Hit),
            "miss" => Some(CacheOutcome::Miss),
            "coalesced" => Some(CacheOutcome::Coalesced),
            "bypass" => Some(CacheOutcome::Bypass),
            _ => None,
        }
    }
}

/// One structured execution event. Variants carry the identifiers needed
/// to line the timeline up with the plan (fragment ids, operator ids,
/// source and rule names); timestamps live on the enclosing
/// [`TraceRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The scheduler handed a fragment to a worker. `overlapped` marks
    /// dispatches made while a sibling fragment was already in flight.
    FragmentDispatched { fragment: u32, overlapped: bool },
    /// A fragment finished, producing `tuples`.
    FragmentCompleted { fragment: u32, tuples: u64 },
    /// A fragment was aborted and deferred for retry (query scrambling).
    FragmentRescheduled { fragment: u32 },
    /// An ECA rule fired: `trigger` describes the event that matched.
    RuleFired { rule: String, trigger: String },
    /// A rule requested mid-query re-optimization.
    ReplanRequested { reason: String },
    /// The optimizer's replacement plan was installed.
    ReplanInstalled {
        fragments_before: u32,
        fragments_after: u32,
    },
    /// A join ran out of memory and began overflow resolution.
    OverflowOnset { op: u32, method: String },
    /// Overflow resolution for one memory-pressure episode finished.
    OverflowResolved { op: u32, tuples_spilled: u64 },
    /// Tuples written to spill storage by an operator.
    SpillWrite { op: u32, tuples: u64 },
    /// Tuples read back from spill storage by an operator.
    SpillRead { op: u32, tuples: u64 },
    /// First tuple arrived from a wrapped source.
    SourceFirstTuple { source: String, elapsed_ms: u64 },
    /// A source produced nothing for its configured timeout.
    SourceStall { source: String, waited_ms: u64 },
    /// Data resumed from a source after a stall.
    SourceBurst { source: String, tuples: u64 },
    /// Per-query source-cache lookup outcome.
    CacheLookup {
        source: String,
        outcome: CacheOutcome,
    },
    /// Per-partition output row counts of one exchange at close — the skew
    /// snapshot (`rows[i]` = rows routed through partition `i`).
    PartitionSkew { op: u32, rows: Vec<u64> },
    /// The memory governor granted this query a reservation.
    ReservationGranted { bytes: u64 },
    /// The memory governor denied (clamped) a reservation request.
    ReservationDenied { bytes: u64 },
    /// An operator observed memory pressure against its budget.
    GovernorPressure { used: u64, budget: u64 },
    /// The query entered the service's admission queue.
    AdmissionEnqueued { queued: u64 },
    /// A worker picked the query up after `waited_ms` in the queue.
    AdmissionDequeued { waited_ms: u64 },
    /// Terminal event: how the query ended (`ok`, `deadline`, `cancelled`,
    /// `error`).
    QueryCompleted { outcome: String },
    /// The coordinator sent a frame to a worker (dispatch payload or
    /// shipped table): `bytes` is the encoded frame size on the wire.
    NetBatchSent { worker: String, bytes: u64 },
    /// The coordinator received one batch frame from a worker.
    NetBatchReceived { worker: String, bytes: u64 },
    /// A shard finished having blocked `stalls` times waiting for send
    /// credit — the wire-level backpressure summary.
    BackpressureStall { worker: String, stalls: u64 },
    /// A worker connection was established and handshaken for a shard.
    WorkerConnected { worker: String },
    /// A worker connection died mid-query (process death, network error).
    WorkerLost { worker: String, reason: String },
}

impl TraceEvent {
    /// Stable kebab-case kind name (the JSON/CSV discriminant).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::FragmentDispatched { .. } => "fragment-dispatched",
            TraceEvent::FragmentCompleted { .. } => "fragment-completed",
            TraceEvent::FragmentRescheduled { .. } => "fragment-rescheduled",
            TraceEvent::RuleFired { .. } => "rule-fired",
            TraceEvent::ReplanRequested { .. } => "replan-requested",
            TraceEvent::ReplanInstalled { .. } => "replan-installed",
            TraceEvent::OverflowOnset { .. } => "overflow-onset",
            TraceEvent::OverflowResolved { .. } => "overflow-resolved",
            TraceEvent::SpillWrite { .. } => "spill-write",
            TraceEvent::SpillRead { .. } => "spill-read",
            TraceEvent::SourceFirstTuple { .. } => "source-first-tuple",
            TraceEvent::SourceStall { .. } => "source-stall",
            TraceEvent::SourceBurst { .. } => "source-burst",
            TraceEvent::CacheLookup { .. } => "cache-lookup",
            TraceEvent::PartitionSkew { .. } => "partition-skew",
            TraceEvent::ReservationGranted { .. } => "reservation-granted",
            TraceEvent::ReservationDenied { .. } => "reservation-denied",
            TraceEvent::GovernorPressure { .. } => "governor-pressure",
            TraceEvent::AdmissionEnqueued { .. } => "admission-enqueued",
            TraceEvent::AdmissionDequeued { .. } => "admission-dequeued",
            TraceEvent::QueryCompleted { .. } => "query-completed",
            TraceEvent::NetBatchSent { .. } => "net-batch-sent",
            TraceEvent::NetBatchReceived { .. } => "net-batch-received",
            TraceEvent::BackpressureStall { .. } => "backpressure-stall",
            TraceEvent::WorkerConnected { .. } => "worker-connected",
            TraceEvent::WorkerLost { .. } => "worker-lost",
        }
    }

    /// Payload as `(field, value)` pairs in declaration order — the single
    /// source of truth for the JSON, CSV, and timeline renderers.
    pub fn fields(&self) -> Vec<(&'static str, JsonValue)> {
        use JsonValue as J;
        match self {
            TraceEvent::FragmentDispatched {
                fragment,
                overlapped,
            } => vec![
                ("fragment", J::UInt(*fragment as u64)),
                ("overlapped", J::Bool(*overlapped)),
            ],
            TraceEvent::FragmentCompleted { fragment, tuples } => vec![
                ("fragment", J::UInt(*fragment as u64)),
                ("tuples", J::UInt(*tuples)),
            ],
            TraceEvent::FragmentRescheduled { fragment } => {
                vec![("fragment", J::UInt(*fragment as u64))]
            }
            TraceEvent::RuleFired { rule, trigger } => vec![
                ("rule", J::Str(rule.clone())),
                ("trigger", J::Str(trigger.clone())),
            ],
            TraceEvent::ReplanRequested { reason } => vec![("reason", J::Str(reason.clone()))],
            TraceEvent::ReplanInstalled {
                fragments_before,
                fragments_after,
            } => vec![
                ("fragments_before", J::UInt(*fragments_before as u64)),
                ("fragments_after", J::UInt(*fragments_after as u64)),
            ],
            TraceEvent::OverflowOnset { op, method } => vec![
                ("op", J::UInt(*op as u64)),
                ("method", J::Str(method.clone())),
            ],
            TraceEvent::OverflowResolved { op, tuples_spilled } => vec![
                ("op", J::UInt(*op as u64)),
                ("tuples_spilled", J::UInt(*tuples_spilled)),
            ],
            TraceEvent::SpillWrite { op, tuples } => {
                vec![("op", J::UInt(*op as u64)), ("tuples", J::UInt(*tuples))]
            }
            TraceEvent::SpillRead { op, tuples } => {
                vec![("op", J::UInt(*op as u64)), ("tuples", J::UInt(*tuples))]
            }
            TraceEvent::SourceFirstTuple { source, elapsed_ms } => vec![
                ("source", J::Str(source.clone())),
                ("elapsed_ms", J::UInt(*elapsed_ms)),
            ],
            TraceEvent::SourceStall { source, waited_ms } => vec![
                ("source", J::Str(source.clone())),
                ("waited_ms", J::UInt(*waited_ms)),
            ],
            TraceEvent::SourceBurst { source, tuples } => vec![
                ("source", J::Str(source.clone())),
                ("tuples", J::UInt(*tuples)),
            ],
            TraceEvent::CacheLookup { source, outcome } => vec![
                ("source", J::Str(source.clone())),
                ("outcome", J::Str(outcome.as_str().to_string())),
            ],
            TraceEvent::PartitionSkew { op, rows } => vec![
                ("op", J::UInt(*op as u64)),
                ("rows", J::Arr(rows.iter().map(|r| J::UInt(*r)).collect())),
            ],
            TraceEvent::ReservationGranted { bytes } => vec![("bytes", J::UInt(*bytes))],
            TraceEvent::ReservationDenied { bytes } => vec![("bytes", J::UInt(*bytes))],
            TraceEvent::GovernorPressure { used, budget } => {
                vec![("used", J::UInt(*used)), ("budget", J::UInt(*budget))]
            }
            TraceEvent::AdmissionEnqueued { queued } => vec![("queued", J::UInt(*queued))],
            TraceEvent::AdmissionDequeued { waited_ms } => {
                vec![("waited_ms", J::UInt(*waited_ms))]
            }
            TraceEvent::QueryCompleted { outcome } => vec![("outcome", J::Str(outcome.clone()))],
            TraceEvent::NetBatchSent { worker, bytes } => vec![
                ("worker", J::Str(worker.clone())),
                ("bytes", J::UInt(*bytes)),
            ],
            TraceEvent::NetBatchReceived { worker, bytes } => vec![
                ("worker", J::Str(worker.clone())),
                ("bytes", J::UInt(*bytes)),
            ],
            TraceEvent::BackpressureStall { worker, stalls } => vec![
                ("worker", J::Str(worker.clone())),
                ("stalls", J::UInt(*stalls)),
            ],
            TraceEvent::WorkerConnected { worker } => vec![("worker", J::Str(worker.clone()))],
            TraceEvent::WorkerLost { worker, reason } => vec![
                ("worker", J::Str(worker.clone())),
                ("reason", J::Str(reason.clone())),
            ],
        }
    }

    /// Rebuild an event from its kind name and JSON payload (inverse of
    /// [`TraceEvent::kind`] + [`TraceEvent::fields`]).
    pub fn from_kind_fields(kind: &str, obj: &JsonValue) -> Result<TraceEvent, String> {
        let u64_of = |f: &str| -> Result<u64, String> {
            obj.get(f)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("event {kind}: missing u64 field {f}"))
        };
        let u32_of = |f: &str| -> Result<u32, String> { Ok(u64_of(f)? as u32) };
        let str_of = |f: &str| -> Result<String, String> {
            obj.get(f)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event {kind}: missing string field {f}"))
        };
        let bool_of = |f: &str| -> Result<bool, String> {
            obj.get(f)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("event {kind}: missing bool field {f}"))
        };
        Ok(match kind {
            "fragment-dispatched" => TraceEvent::FragmentDispatched {
                fragment: u32_of("fragment")?,
                overlapped: bool_of("overlapped")?,
            },
            "fragment-completed" => TraceEvent::FragmentCompleted {
                fragment: u32_of("fragment")?,
                tuples: u64_of("tuples")?,
            },
            "fragment-rescheduled" => TraceEvent::FragmentRescheduled {
                fragment: u32_of("fragment")?,
            },
            "rule-fired" => TraceEvent::RuleFired {
                rule: str_of("rule")?,
                trigger: str_of("trigger")?,
            },
            "replan-requested" => TraceEvent::ReplanRequested {
                reason: str_of("reason")?,
            },
            "replan-installed" => TraceEvent::ReplanInstalled {
                fragments_before: u32_of("fragments_before")?,
                fragments_after: u32_of("fragments_after")?,
            },
            "overflow-onset" => TraceEvent::OverflowOnset {
                op: u32_of("op")?,
                method: str_of("method")?,
            },
            "overflow-resolved" => TraceEvent::OverflowResolved {
                op: u32_of("op")?,
                tuples_spilled: u64_of("tuples_spilled")?,
            },
            "spill-write" => TraceEvent::SpillWrite {
                op: u32_of("op")?,
                tuples: u64_of("tuples")?,
            },
            "spill-read" => TraceEvent::SpillRead {
                op: u32_of("op")?,
                tuples: u64_of("tuples")?,
            },
            "source-first-tuple" => TraceEvent::SourceFirstTuple {
                source: str_of("source")?,
                elapsed_ms: u64_of("elapsed_ms")?,
            },
            "source-stall" => TraceEvent::SourceStall {
                source: str_of("source")?,
                waited_ms: u64_of("waited_ms")?,
            },
            "source-burst" => TraceEvent::SourceBurst {
                source: str_of("source")?,
                tuples: u64_of("tuples")?,
            },
            "cache-lookup" => TraceEvent::CacheLookup {
                source: str_of("source")?,
                outcome: CacheOutcome::parse(&str_of("outcome")?)
                    .ok_or_else(|| "cache-lookup: bad outcome".to_string())?,
            },
            "partition-skew" => TraceEvent::PartitionSkew {
                op: u32_of("op")?,
                rows: obj
                    .get("rows")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| "partition-skew: missing rows".to_string())?
                    .iter()
                    .map(|v| {
                        v.as_u64()
                            .ok_or_else(|| "partition-skew: bad row".to_string())
                    })
                    .collect::<Result<Vec<u64>, String>>()?,
            },
            "reservation-granted" => TraceEvent::ReservationGranted {
                bytes: u64_of("bytes")?,
            },
            "reservation-denied" => TraceEvent::ReservationDenied {
                bytes: u64_of("bytes")?,
            },
            "governor-pressure" => TraceEvent::GovernorPressure {
                used: u64_of("used")?,
                budget: u64_of("budget")?,
            },
            "admission-enqueued" => TraceEvent::AdmissionEnqueued {
                queued: u64_of("queued")?,
            },
            "admission-dequeued" => TraceEvent::AdmissionDequeued {
                waited_ms: u64_of("waited_ms")?,
            },
            "query-completed" => TraceEvent::QueryCompleted {
                outcome: str_of("outcome")?,
            },
            "net-batch-sent" => TraceEvent::NetBatchSent {
                worker: str_of("worker")?,
                bytes: u64_of("bytes")?,
            },
            "net-batch-received" => TraceEvent::NetBatchReceived {
                worker: str_of("worker")?,
                bytes: u64_of("bytes")?,
            },
            "backpressure-stall" => TraceEvent::BackpressureStall {
                worker: str_of("worker")?,
                stalls: u64_of("stalls")?,
            },
            "worker-connected" => TraceEvent::WorkerConnected {
                worker: str_of("worker")?,
            },
            "worker-lost" => TraceEvent::WorkerLost {
                worker: str_of("worker")?,
                reason: str_of("reason")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

/// A [`TraceEvent`] stamped with its ring sequence number and microseconds
/// since the trace epoch (query submission).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic per-trace sequence number (gaps mean dropped events).
    pub seq: u64,
    /// Microseconds since the trace epoch.
    pub at_us: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Default event-ring capacity; oldest events are dropped beyond it.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

struct Ring {
    buf: VecDeque<TraceRecord>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

/// The per-query trace: a bounded event ring plus the operator-metrics
/// registry, shared (via `Arc`) by every layer a query passes through.
pub struct QueryTrace {
    level: AtomicU8,
    epoch: Instant,
    ring: Mutex<Ring>,
    metrics: MetricsRegistry,
}

fn encode_level(l: TraceLevel) -> u8 {
    match l {
        TraceLevel::Off => 0,
        TraceLevel::Events => 1,
        TraceLevel::Metrics => 2,
    }
}

fn decode_level(v: u8) -> TraceLevel {
    match v {
        0 => TraceLevel::Off,
        1 => TraceLevel::Events,
        _ => TraceLevel::Metrics,
    }
}

impl QueryTrace {
    /// A trace recording at `level` with the default ring capacity.
    pub fn new(level: TraceLevel) -> Arc<QueryTrace> {
        Self::with_capacity(level, DEFAULT_RING_CAPACITY)
    }

    /// A trace with an explicit ring capacity (min 1).
    pub fn with_capacity(level: TraceLevel, cap: usize) -> Arc<QueryTrace> {
        Arc::new(QueryTrace {
            level: AtomicU8::new(encode_level(level)),
            epoch: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
            }),
            metrics: MetricsRegistry::new(),
        })
    }

    /// Current level.
    pub fn level(&self) -> TraceLevel {
        decode_level(self.level.load(Ordering::Relaxed))
    }

    /// Change the level (e.g. the service installing its configured level
    /// on a control created elsewhere).
    pub fn set_level(&self, level: TraceLevel) {
        self.level.store(encode_level(level), Ordering::Relaxed);
    }

    /// Whether event emission is on — one relaxed load; emit points check
    /// this before building an event so `Off` pays nothing else.
    #[inline]
    pub fn events_enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) >= encode_level(TraceLevel::Events)
    }

    /// Whether per-operator metric sampling is on.
    #[inline]
    pub fn metrics_enabled(&self) -> bool {
        self.level.load(Ordering::Relaxed) >= encode_level(TraceLevel::Metrics)
    }

    /// Microseconds since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record an event (no-op below `Events`). The ring is bounded: when
    /// full the oldest record is dropped and the drop counter advances.
    pub fn emit(&self, event: TraceEvent) {
        if !self.events_enabled() {
            return;
        }
        let at_us = self.now_us();
        let mut ring = self.ring.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(TraceRecord { seq, at_us, event });
    }

    /// The operator-metrics registry (register handles via
    /// [`MetricsRegistry::register`] only when [`Self::metrics_enabled`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Events dropped so far to the ring bound.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Total events recorded over the trace's lifetime, including any
    /// since dropped to the ring bound (service-level rollups).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().next_seq
    }

    /// Copy out everything recorded so far.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = self.ring.lock();
        TraceSnapshot {
            level: self.level(),
            dropped: ring.dropped,
            events: ring.buf.iter().cloned().collect(),
            ops: self.metrics.snapshot(),
        }
    }
}

impl std::fmt::Debug for QueryTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTrace")
            .field("level", &self.level())
            .field("events", &self.ring.lock().buf.len())
            .field("dropped", &self.ring.lock().dropped)
            .finish()
    }
}

/// A point-in-time copy of a [`QueryTrace`] — what travels with the query
/// result and feeds the JSON/CSV/timeline renderers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceSnapshot {
    /// Level the trace was recording at when snapshotted.
    pub level: TraceLevel,
    /// Events lost to the ring bound before this snapshot.
    pub dropped: u64,
    /// Recorded events, oldest first.
    pub events: Vec<TraceRecord>,
    /// Per-operator metric snapshots (empty below `Metrics`).
    pub ops: Vec<OpMetricsSnapshot>,
}

impl TraceSnapshot {
    /// Count of recorded events per kind, for rollups.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count()
    }

    /// First recorded event matching `pred`, if any.
    pub fn find<F: Fn(&TraceEvent) -> bool>(&self, pred: F) -> Option<&TraceRecord> {
        self.events.iter().find(|r| pred(&r.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_gating() {
        let t = QueryTrace::new(TraceLevel::Off);
        assert!(!t.events_enabled());
        assert!(!t.metrics_enabled());
        t.emit(TraceEvent::ReplanRequested { reason: "x".into() });
        assert!(t.snapshot().events.is_empty());
        t.set_level(TraceLevel::Events);
        assert!(t.events_enabled());
        assert!(!t.metrics_enabled());
        t.emit(TraceEvent::ReplanRequested { reason: "x".into() });
        assert_eq!(t.snapshot().events.len(), 1);
        t.set_level(TraceLevel::Metrics);
        assert!(t.metrics_enabled());
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let t = QueryTrace::with_capacity(TraceLevel::Events, 3);
        for i in 0..5u64 {
            t.emit(TraceEvent::AdmissionEnqueued { queued: i });
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 2);
        // Oldest two dropped; sequence numbers expose the gap.
        assert_eq!(snap.events[0].seq, 2);
        assert_eq!(snap.events[2].seq, 4);
    }

    #[test]
    fn timestamps_monotonic() {
        let t = QueryTrace::new(TraceLevel::Events);
        for _ in 0..10 {
            t.emit(TraceEvent::ReplanRequested {
                reason: "tick".into(),
            });
        }
        let snap = t.snapshot();
        for w in snap.events.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn trace_level_parse_round_trip() {
        for l in [TraceLevel::Off, TraceLevel::Events, TraceLevel::Metrics] {
            assert_eq!(TraceLevel::parse(l.as_str()), Some(l));
        }
        assert_eq!(TraceLevel::parse("verbose"), None);
    }
}
