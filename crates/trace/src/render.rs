//! Trace exporters: JSON (machine), CSV (spreadsheets), and a
//! human-readable per-query timeline + operator table.

use std::fmt::Write as _;

use crate::json::{write_escaped, JsonValue};
use crate::{OpMetricsSnapshot, TraceEvent, TraceLevel, TraceRecord, TraceSnapshot};

impl TraceSnapshot {
    /// Serialize the full snapshot as one JSON document:
    /// `{"level","dropped","events":[{"seq","at_us","kind",...}],"ops":[...]}`.
    pub fn to_json(&self) -> String {
        let mut events = Vec::with_capacity(self.events.len());
        for rec in &self.events {
            let mut members = vec![
                ("seq".to_string(), JsonValue::UInt(rec.seq)),
                ("at_us".to_string(), JsonValue::UInt(rec.at_us)),
                (
                    "kind".to_string(),
                    JsonValue::Str(rec.event.kind().to_string()),
                ),
            ];
            for (k, v) in rec.event.fields() {
                members.push((k.to_string(), v));
            }
            events.push(JsonValue::Obj(members));
        }
        let ops = self
            .ops
            .iter()
            .map(|m| {
                JsonValue::Obj(vec![
                    ("op".to_string(), JsonValue::UInt(m.op as u64)),
                    ("name".to_string(), JsonValue::Str(m.name.clone())),
                    ("rows_in".to_string(), JsonValue::UInt(m.rows_in)),
                    ("rows_out".to_string(), JsonValue::UInt(m.rows_out)),
                    ("batches_in".to_string(), JsonValue::UInt(m.batches_in)),
                    ("batches_out".to_string(), JsonValue::UInt(m.batches_out)),
                    ("build_ns".to_string(), JsonValue::UInt(m.build_ns)),
                    ("probe_ns".to_string(), JsonValue::UInt(m.probe_ns)),
                    (
                        "queue_stall_ns".to_string(),
                        JsonValue::UInt(m.queue_stall_ns),
                    ),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            (
                "level".to_string(),
                JsonValue::Str(self.level.as_str().to_string()),
            ),
            ("dropped".to_string(), JsonValue::UInt(self.dropped)),
            ("events".to_string(), JsonValue::Arr(events)),
            ("ops".to_string(), JsonValue::Arr(ops)),
        ])
        .to_json()
    }

    /// Parse a document produced by [`TraceSnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<TraceSnapshot, String> {
        let v = JsonValue::parse(text)?;
        let level = v
            .get("level")
            .and_then(JsonValue::as_str)
            .and_then(TraceLevel::parse)
            .ok_or("missing/bad level")?;
        let dropped = v.get("dropped").and_then(JsonValue::as_u64).unwrap_or(0);
        let mut events = Vec::new();
        for e in v.get("events").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let kind = e
                .get("kind")
                .and_then(JsonValue::as_str)
                .ok_or("event missing kind")?;
            events.push(TraceRecord {
                seq: e.get("seq").and_then(JsonValue::as_u64).ok_or("no seq")?,
                at_us: e
                    .get("at_us")
                    .and_then(JsonValue::as_u64)
                    .ok_or("no at_us")?,
                event: TraceEvent::from_kind_fields(kind, e)?,
            });
        }
        let mut ops = Vec::new();
        for o in v.get("ops").and_then(JsonValue::as_arr).unwrap_or(&[]) {
            let u = |f: &str| o.get(f).and_then(JsonValue::as_u64).unwrap_or(0);
            ops.push(OpMetricsSnapshot {
                op: u("op") as u32,
                name: o
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("")
                    .to_string(),
                rows_in: u("rows_in"),
                rows_out: u("rows_out"),
                batches_in: u("batches_in"),
                batches_out: u("batches_out"),
                build_ns: u("build_ns"),
                probe_ns: u("probe_ns"),
                queue_stall_ns: u("queue_stall_ns"),
            });
        }
        Ok(TraceSnapshot {
            level,
            dropped,
            events,
            ops,
        })
    }

    /// Events as CSV (`seq,at_us,kind,detail`; the detail column packs the
    /// payload as `k=v` pairs joined by `;` so it stays one CSV field).
    pub fn events_csv(&self) -> String {
        let mut out = String::from("seq,at_us,kind,detail\n");
        for rec in &self.events {
            let detail = rec
                .event
                .fields()
                .iter()
                .map(|(k, v)| format!("{k}={}", csv_scalar(v)))
                .collect::<Vec<_>>()
                .join(";");
            let mut quoted = String::new();
            write_escaped(&mut quoted, &detail);
            let _ = writeln!(
                out,
                "{},{},{},{}",
                rec.seq,
                rec.at_us,
                rec.event.kind(),
                quoted
            );
        }
        out
    }

    /// Operator metrics as CSV, one row per plan operator.
    pub fn ops_csv(&self) -> String {
        let mut out = String::from(
            "op,name,rows_in,rows_out,selectivity,batches_in,batches_out,build_ms,probe_ms,queue_stall_ms\n",
        );
        for m in &self.ops {
            let sel = m
                .selectivity()
                .map(|s| format!("{s:.4}"))
                .unwrap_or_default();
            let mut name = String::new();
            write_escaped(&mut name, &m.name);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{:.3},{:.3},{:.3}",
                m.op,
                name,
                m.rows_in,
                m.rows_out,
                sel,
                m.batches_in,
                m.batches_out,
                m.build_ns as f64 / 1e6,
                m.probe_ns as f64 / 1e6,
                m.queue_stall_ns as f64 / 1e6,
            );
        }
        out
    }

    /// Human-readable per-query timeline plus (at `Metrics`) the operator
    /// table — what the `query-profile` bin prints.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace level={} events={} dropped={}",
            self.level.as_str(),
            self.events.len(),
            self.dropped
        );
        for rec in &self.events {
            let detail = rec
                .event
                .fields()
                .iter()
                .map(|(k, v)| format!("{k}={}", csv_scalar(v)))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "[{:>10.3} ms] {:<20} {}",
                rec.at_us as f64 / 1e3,
                rec.event.kind(),
                detail
            );
        }
        if !self.ops.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<4} {:<22} {:>10} {:>10} {:>6} {:>8} {:>9} {:>9} {:>9}",
                "op",
                "name",
                "rows_in",
                "rows_out",
                "sel",
                "batches",
                "build_ms",
                "probe_ms",
                "stall_ms"
            );
            for m in &self.ops {
                let sel = m
                    .selectivity()
                    .map(|s| format!("{s:.3}"))
                    .unwrap_or_else(|| "-".to_string());
                let _ = writeln!(
                    out,
                    "{:<4} {:<22} {:>10} {:>10} {:>6} {:>8} {:>9.3} {:>9.3} {:>9.3}",
                    m.op,
                    m.name,
                    m.rows_in,
                    m.rows_out,
                    sel,
                    m.batches_out,
                    m.build_ns as f64 / 1e6,
                    m.probe_ns as f64 / 1e6,
                    m.queue_stall_ns as f64 / 1e6,
                );
            }
        }
        out
    }
}

/// Render one payload value inline for CSV/timeline details.
fn csv_scalar(v: &JsonValue) -> String {
    match v {
        JsonValue::Str(s) => s.clone(),
        JsonValue::Arr(items) => format!(
            "[{}]",
            items.iter().map(csv_scalar).collect::<Vec<_>>().join("|")
        ),
        other => other.to_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheOutcome, QueryTrace};

    fn sample() -> TraceSnapshot {
        let t = QueryTrace::new(TraceLevel::Metrics);
        t.emit(TraceEvent::AdmissionEnqueued { queued: 2 });
        t.emit(TraceEvent::FragmentDispatched {
            fragment: 0,
            overlapped: false,
        });
        t.emit(TraceEvent::SourceStall {
            source: "books \"quoted\"".into(),
            waited_ms: 40,
        });
        t.emit(TraceEvent::RuleFired {
            rule: "timeout-reschedule".into(),
            trigger: "timeout(op 0)".into(),
        });
        t.emit(TraceEvent::CacheLookup {
            source: "books".into(),
            outcome: CacheOutcome::Coalesced,
        });
        t.emit(TraceEvent::PartitionSkew {
            op: 4,
            rows: vec![10, 0, 90],
        });
        t.emit(TraceEvent::QueryCompleted {
            outcome: "ok".into(),
        });
        let m = t.metrics().register(4, "dpj");
        m.add_input(100);
        m.add_output(42);
        m.add_build_ns(1_500_000);
        t.snapshot()
    }

    #[test]
    fn json_round_trip() {
        let snap = sample();
        let text = snap.to_json();
        let back = TraceSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn timeline_mentions_events_and_ops() {
        let text = sample().render_timeline();
        assert!(text.contains("source-stall"));
        assert!(text.contains("rule-fired"));
        assert!(text.contains("rows=[10|0|90]"));
        assert!(text.contains("dpj"));
        assert!(text.contains("0.420")); // selectivity column
    }

    #[test]
    fn csv_headers_and_rows() {
        let snap = sample();
        let ev = snap.events_csv();
        assert!(ev.starts_with("seq,at_us,kind,detail\n"));
        assert_eq!(ev.lines().count(), 1 + snap.events.len());
        let ops = snap.ops_csv();
        assert!(ops.contains("selectivity"));
        assert!(ops.lines().count() == 2);
    }
}
