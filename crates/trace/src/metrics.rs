//! Per-operator counters sampled at batch boundaries.
//!
//! An operator's harness registers one [`OpMetrics`] handle per plan
//! operator (partition instances of an exchange share the handle, so a
//! partitioned join's counters aggregate across its instances) and bumps
//! plain relaxed atomics — no locks on the batch path. Everything here is
//! only touched at `TraceLevel::Metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Registry of the per-operator metric handles one query created.
pub struct MetricsRegistry {
    ops: Mutex<Vec<Arc<OpMetrics>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            ops: Mutex::new(Vec::new()),
        }
    }

    /// The metrics handle for plan operator `op`, creating it on first
    /// call. Re-registration (a fragment retry, a partition instance)
    /// returns the existing handle so counts aggregate per plan operator.
    pub fn register(&self, op: u32, name: &str) -> Arc<OpMetrics> {
        let mut ops = self.ops.lock();
        if let Some(existing) = ops.iter().find(|m| m.op == op) {
            return existing.clone();
        }
        let m = Arc::new(OpMetrics {
            op,
            name: name.to_string(),
            rows_in: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            batches_in: AtomicU64::new(0),
            batches_out: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
            probe_ns: AtomicU64::new(0),
            queue_stall_ns: AtomicU64::new(0),
        });
        ops.push(m.clone());
        m
    }

    /// Snapshot every registered operator, in operator-id order.
    pub fn snapshot(&self) -> Vec<OpMetricsSnapshot> {
        let mut out: Vec<OpMetricsSnapshot> =
            self.ops.lock().iter().map(|m| m.snapshot()).collect();
        out.sort_by_key(|m| m.op);
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

/// Counters for one plan operator. All methods are relaxed atomic adds.
pub struct OpMetrics {
    op: u32,
    name: String,
    rows_in: AtomicU64,
    rows_out: AtomicU64,
    batches_in: AtomicU64,
    batches_out: AtomicU64,
    build_ns: AtomicU64,
    probe_ns: AtomicU64,
    queue_stall_ns: AtomicU64,
}

impl OpMetrics {
    /// Record one input batch of `rows` tuples.
    pub fn add_input(&self, rows: u64) {
        self.rows_in.fetch_add(rows, Ordering::Relaxed);
        self.batches_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one output batch of `rows` tuples.
    pub fn add_output(&self, rows: u64) {
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
        self.batches_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Add time spent building (inserting into hash tables).
    pub fn add_build_ns(&self, ns: u64) {
        self.build_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add time spent probing.
    pub fn add_probe_ns(&self, ns: u64) {
        self.probe_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add time this operator spent blocked on a full output queue.
    pub fn add_queue_stall_ns(&self, ns: u64) {
        self.queue_stall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> OpMetricsSnapshot {
        OpMetricsSnapshot {
            op: self.op,
            name: self.name.clone(),
            rows_in: self.rows_in.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches_in: self.batches_in.load(Ordering::Relaxed),
            batches_out: self.batches_out.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            probe_ns: self.probe_ns.load(Ordering::Relaxed),
            queue_stall_ns: self.queue_stall_ns.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one operator's counters.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpMetricsSnapshot {
    /// Plan operator id.
    pub op: u32,
    /// Operator display name (e.g. `dpj`, `wrapper-scan(A)`).
    pub name: String,
    /// Tuples consumed.
    pub rows_in: u64,
    /// Tuples produced.
    pub rows_out: u64,
    /// Input batches.
    pub batches_in: u64,
    /// Output batches.
    pub batches_out: u64,
    /// Nanoseconds spent building.
    pub build_ns: u64,
    /// Nanoseconds spent probing.
    pub probe_ns: u64,
    /// Nanoseconds blocked on a full output queue.
    pub queue_stall_ns: u64,
}

impl OpMetricsSnapshot {
    /// Output rows per input row, when any input was seen.
    pub fn selectivity(&self) -> Option<f64> {
        if self.rows_in == 0 {
            None
        } else {
            Some(self.rows_out as f64 / self.rows_in as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_dedups_by_op_id() {
        let reg = MetricsRegistry::new();
        let a = reg.register(3, "dpj");
        let b = reg.register(3, "dpj");
        assert!(Arc::ptr_eq(&a, &b));
        a.add_input(10);
        b.add_input(5);
        b.add_output(6);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].rows_in, 15);
        assert_eq!(snap[0].batches_in, 2);
        assert_eq!(snap[0].rows_out, 6);
        assert_eq!(snap[0].selectivity(), Some(0.4));
    }

    #[test]
    fn snapshot_sorted_by_op() {
        let reg = MetricsRegistry::new();
        reg.register(7, "b");
        reg.register(2, "a");
        let snap = reg.snapshot();
        assert_eq!(snap[0].op, 2);
        assert_eq!(snap[1].op, 7);
    }

    #[test]
    fn selectivity_none_without_input() {
        let reg = MetricsRegistry::new();
        let m = reg.register(1, "scan");
        m.add_output(100);
        assert_eq!(m.snapshot().selectivity(), None);
    }
}
