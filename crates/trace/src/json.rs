//! Self-contained JSON support for trace export.
//!
//! The workspace's serde shim is deliberately minimal, so the trace
//! exporter hand-writes its JSON (like `tukwila-plan`'s diagnostics) and
//! carries a small recursive-descent parser so a snapshot can be read
//! back — the round-trip the proptest in `tests/` pins down.

use std::fmt::Write as _;

/// A parsed JSON value. Integers are kept exact (`UInt`/`Int`) so u64
/// counters survive a round-trip; `Float` is only used when the text has
/// a fraction or exponent.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer without fraction/exponent.
    UInt(u64),
    /// Negative integer without fraction/exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object, preserving member order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// As u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// As f64 for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Int(n) => Some(*n as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// As a borrowed string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// As a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array's elements.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize (compact, no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Int(n) => {
                let _ = write!(out, "{n}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escape and quote `s` as a JSON string.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte slice is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                if !stripped.is_empty() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(JsonValue::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = JsonValue::Obj(vec![
            ("a".into(), JsonValue::UInt(u64::MAX)),
            ("b".into(), JsonValue::Int(-7)),
            ("c".into(), JsonValue::Str("q\"\\\n\u{1}é".into())),
            (
                "d".into(),
                JsonValue::Arr(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("e".into(), JsonValue::Float(1.5)),
        ]);
        let text = v.to_json();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_whitespace_and_nesting() {
        let v = JsonValue::parse(" { \"x\" : [ 1 , 2.5 , { } ] } ").unwrap();
        assert_eq!(v.get("x").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("x").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }
}
