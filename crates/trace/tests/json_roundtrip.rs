//! Property test: a trace snapshot survives its JSON renderer exactly —
//! `TraceSnapshot::from_json(snap.to_json()) == snap` for arbitrary event
//! mixes, payload strings (including quotes, escapes, and multi-byte
//! chars), and full-range u64 counters.

use proptest::prelude::*;
use tukwila_trace::{
    CacheOutcome, OpMetricsSnapshot, TraceEvent, TraceLevel, TraceRecord, TraceSnapshot,
};

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (any::<u32>(), any::<bool>()).prop_map(|(fragment, overlapped)| {
            TraceEvent::FragmentDispatched {
                fragment,
                overlapped,
            }
        }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(fragment, tuples)| TraceEvent::FragmentCompleted { fragment, tuples }),
        (0u32..64).prop_map(|fragment| TraceEvent::FragmentRescheduled { fragment }),
        ("\\PC{0,16}", "\\PC{0,24}")
            .prop_map(|(rule, trigger)| TraceEvent::RuleFired { rule, trigger }),
        "\\PC{0,24}".prop_map(|reason| TraceEvent::ReplanRequested { reason }),
        (any::<u32>(), any::<u32>()).prop_map(|(fragments_before, fragments_after)| {
            TraceEvent::ReplanInstalled {
                fragments_before,
                fragments_after,
            }
        }),
        (any::<u32>(), "\\PC{0,16}")
            .prop_map(|(op, method)| TraceEvent::OverflowOnset { op, method }),
        (any::<u32>(), any::<u64>()).prop_map(|(op, tuples_spilled)| {
            TraceEvent::OverflowResolved { op, tuples_spilled }
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(op, tuples)| TraceEvent::SpillWrite { op, tuples }),
        (any::<u32>(), any::<u64>()).prop_map(|(op, tuples)| TraceEvent::SpillRead { op, tuples }),
        ("\\PC{0,12}", any::<u64>()).prop_map(|(source, elapsed_ms)| {
            TraceEvent::SourceFirstTuple { source, elapsed_ms }
        }),
        ("\\PC{0,12}", any::<u64>())
            .prop_map(|(source, waited_ms)| TraceEvent::SourceStall { source, waited_ms }),
        ("\\PC{0,12}", any::<u64>())
            .prop_map(|(source, tuples)| TraceEvent::SourceBurst { source, tuples }),
        ("\\PC{0,12}", 0u64..4).prop_map(|(source, o)| TraceEvent::CacheLookup {
            source,
            outcome: match o {
                0 => CacheOutcome::Hit,
                1 => CacheOutcome::Miss,
                2 => CacheOutcome::Coalesced,
                _ => CacheOutcome::Bypass,
            },
        }),
        (any::<u32>(), proptest::collection::vec(any::<u64>(), 0..9))
            .prop_map(|(op, rows)| TraceEvent::PartitionSkew { op, rows }),
        any::<u64>().prop_map(|bytes| TraceEvent::ReservationGranted { bytes }),
        any::<u64>().prop_map(|bytes| TraceEvent::ReservationDenied { bytes }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(used, budget)| TraceEvent::GovernorPressure { used, budget }),
        any::<u64>().prop_map(|queued| TraceEvent::AdmissionEnqueued { queued }),
        any::<u64>().prop_map(|waited_ms| TraceEvent::AdmissionDequeued { waited_ms }),
        "\\PC{0,12}".prop_map(|outcome| TraceEvent::QueryCompleted { outcome }),
        ("\\PC{0,16}", any::<u64>())
            .prop_map(|(worker, bytes)| TraceEvent::NetBatchSent { worker, bytes }),
        ("\\PC{0,16}", any::<u64>())
            .prop_map(|(worker, bytes)| TraceEvent::NetBatchReceived { worker, bytes }),
        ("\\PC{0,16}", any::<u64>())
            .prop_map(|(worker, stalls)| TraceEvent::BackpressureStall { worker, stalls }),
        "\\PC{0,16}".prop_map(|worker| TraceEvent::WorkerConnected { worker }),
        ("\\PC{0,16}", "\\PC{0,24}")
            .prop_map(|(worker, reason)| TraceEvent::WorkerLost { worker, reason }),
    ]
}

fn arb_op() -> impl Strategy<Value = OpMetricsSnapshot> {
    (
        (any::<u32>(), "\\PC{0,16}", any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((op, name, rows_in, rows_out), (batches_in, batches_out, build_ns, probe_ns))| {
                OpMetricsSnapshot {
                    op,
                    name,
                    rows_in,
                    rows_out,
                    batches_in,
                    batches_out,
                    build_ns,
                    probe_ns,
                    queue_stall_ns: build_ns ^ probe_ns,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn snapshot_round_trips_through_json(
        level in 0u64..3,
        dropped in any::<u64>(),
        events in proptest::collection::vec(arb_event(), 0..24),
        ops in proptest::collection::vec(arb_op(), 0..6),
    ) {
        let level = match level {
            0 => TraceLevel::Off,
            1 => TraceLevel::Events,
            _ => TraceLevel::Metrics,
        };
        let snap = TraceSnapshot {
            level,
            dropped,
            events: events
                .into_iter()
                .enumerate()
                .map(|(i, event)| TraceRecord {
                    seq: i as u64,
                    at_us: (i as u64) * 17,
                    event,
                })
                .collect(),
            ops,
        };
        let text = snap.to_json();
        let back = TraceSnapshot::from_json(&text)
            .map_err(|e| TestCaseError(format!("parse failed: {e}\n{text}")))?;
        prop_assert_eq!(back, snap);
    }
}
