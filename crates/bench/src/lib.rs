//! # tukwila-bench
//!
//! The benchmark harness that regenerates **every table and figure** in the
//! Tukwila paper's evaluation (§6). Each scenario in [`scenarios`] is used
//! twice:
//!
//! * by a `--bin` harness that prints the same rows/series the paper
//!   reports (plus shape-check verdicts), recorded in EXPERIMENTS.md;
//! * by the Criterion benches under `benches/`, which time the same
//!   workloads at reduced scale.
//!
//! | experiment | paper artifact | bin |
//! |------------|----------------|-----|
//! | F3A  | Figure 3a — DPJ vs hybrid, 3-way LAN join      | `fig3a` |
//! | F3B  | Figure 3b — DPJ vs hybrid over a WAN           | `fig3b` |
//! | T62  | §6.2 — all 2/3-way joins, DPJ vs hybrid        | `table62` |
//! | F4   | Figure 4 — overflow strategies under memory limits | `fig4` |
//! | A423 | §4.2.3 — analytical I/O cost comparison        | `overflow_io` |
//! | F5   | Figure 5 — interleaved planning strategies     | `fig5` |
//! | E65  | §6.5 — optimizer state saving / usage pointers | `exp65` |

pub mod dist;
pub mod runner;
pub mod scenarios;

pub use runner::{print_series_csv, run_single_fragment, JoinRunResult};
