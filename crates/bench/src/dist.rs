//! Shared harness for the distributed-exchange benchmark and e2e tests.
//!
//! Both the `perf_smoke` `dist_speedup` scenario and the process-level
//! tests in `tests/distributed.rs` need the same deterministic workload on
//! both sides of the wire: the coordinator builds the exchange plan, and
//! each `dist_worker` process rebuilds the *identical* source registry
//! from its command line (`--rows/--dup/--pace-us`), so the cluster
//! agrees on the data without shipping it out of band.
//!
//! The coordinator's own registry stays empty — the scatter ships only the
//! plan text plus materialized `table_scan` dependencies, and this
//! workload has none: its wrapper scans are served from each worker's
//! registry.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use tukwila_common::{tuple, DataType, Relation, Result, Schema, TukwilaError, Tuple};
use tukwila_exec::runtime::PlanRuntime;
use tukwila_exec::{build_operator, drain, ExecEnv};
use tukwila_net::Cluster;
use tukwila_plan::{JoinKind, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

/// `n` tuples `(i % dup, i)` under schema `name(k, v)` — the same keyed
/// shape the rest of the bench suite uses.
pub fn dist_relation(name: &str, n: i64, dup: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(tuple![i % dup.max(1), i]);
    }
    r
}

/// The workload's two sources, `L` and `R`, each `n` rows over `dup`
/// distinct keys. `pace` throttles the simulated link per tuple — zero for
/// CPU-bound speedup runs, non-zero to stretch a query long enough to kill
/// a worker mid-flight.
pub fn dist_registry(n: i64, dup: i64, pace: Duration) -> SourceRegistry {
    let link = LinkModel {
        per_tuple: pace,
        ..LinkModel::instant()
    };
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "L",
        dist_relation("l", n, dup),
        link.clone(),
    ));
    reg.register(SimulatedSource::new("R", dist_relation("r", n, dup), link));
    reg
}

/// `L ⋈ R on k` under an exchange of `partitions` shards. A `budget`
/// yields a join memory reservation, which the remote exchange slices into
/// per-shard leases on the coordinator's governor.
pub fn dist_plan(partitions: usize, budget: Option<usize>) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let l = b.wrapper_scan("L");
    let r = b.wrapper_scan("R");
    let mut j = b.join(JoinKind::HybridHash, l, r, "k", "k");
    if let Some(bytes) = budget {
        j = j.with_memory(bytes);
    }
    let x = b.exchange(j, partitions);
    let f = b.fragment(x, "out");
    b.build(f)
}

/// Coordinator environment: empty local registry, cluster dialed from
/// `addrs` installed as the shard executor.
pub fn coordinator_env(addrs: &[String], batch: usize) -> Result<ExecEnv> {
    let cluster = Cluster::connect(addrs)?;
    Ok(ExecEnv::new(SourceRegistry::new())
        .with_batch_size(batch)
        .with_shard_executor(Arc::new(cluster)))
}

/// Build and drain the plan's single fragment in `env`.
pub fn run_plan(env: ExecEnv, plan: &QueryPlan) -> Result<Vec<Tuple>> {
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt)?;
    drain(op.as_mut())
}

/// Reference run: the same plan against a local registry, no executor.
pub fn run_local(n: i64, dup: i64, plan: &QueryPlan, batch: usize) -> Result<Vec<Tuple>> {
    let env = ExecEnv::new(dist_registry(n, dup, Duration::ZERO)).with_batch_size(batch);
    run_plan(env, plan)
}

/// A `dist_worker` child process; killed (and reaped) on drop.
pub struct WorkerProc {
    child: Child,
    addr: String,
}

impl WorkerProc {
    /// `host:port` the worker is listening on.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Kill the worker now — the "worker dies mid-query" fault injection.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawn `exe` as a worker serving the `(n, dup, pace)` workload and wait
/// for it to report its port (`PORT <n>` on stdout).
pub fn spawn_worker_process(exe: &Path, n: i64, dup: i64, pace: Duration) -> Result<WorkerProc> {
    let mut child = Command::new(exe)
        .arg("--rows")
        .arg(n.to_string())
        .arg("--dup")
        .arg(dup.to_string())
        .arg("--pace-us")
        .arg(pace.as_micros().to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| TukwilaError::Io(format!("spawn {}: {e}", exe.display())))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| TukwilaError::Io(format!("read worker port: {e}")))?;
    let port = line
        .trim()
        .strip_prefix("PORT ")
        .and_then(|p| p.parse::<u16>().ok())
        .ok_or_else(|| {
            let _ = child.kill();
            TukwilaError::Io(format!("worker printed {line:?}, expected `PORT <n>`"))
        })?;
    Ok(WorkerProc {
        child,
        addr: format!("127.0.0.1:{port}"),
    })
}

/// Path of the `dist_worker` binary next to the currently running one
/// (cargo puts all of a profile's binaries in the same directory), if it
/// has been built.
pub fn sibling_worker_exe() -> Option<PathBuf> {
    let mut p = std::env::current_exe().ok()?;
    p.set_file_name(format!("dist_worker{}", std::env::consts::EXE_SUFFIX));
    p.exists().then_some(p)
}
