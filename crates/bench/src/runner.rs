//! Shared measurement machinery: run one plan fragment, record the
//! tuples-vs-time series the paper's figures plot.

use std::time::Duration;

use tukwila_exec::{run_fragment_observed, ExecEnv, FragmentOutcome, PlanRuntime};
use tukwila_plan::{FragmentId, QueryPlan};
use tukwila_source::SourceRegistry;

/// One measured execution of a join pipeline.
#[derive(Debug, Clone)]
pub struct JoinRunResult {
    /// Configuration label (legend entry in the paper's figure).
    pub label: String,
    /// Time until the first output tuple.
    pub time_to_first: Duration,
    /// Total completion time.
    pub total: Duration,
    /// Output cardinality.
    pub tuples: u64,
    /// `(tuples, elapsed)` samples.
    pub series: Vec<(u64, Duration)>,
    /// Spill I/O in tuples (written + read).
    pub spill_tuple_io: usize,
    /// Peak engine memory during the run, bytes.
    pub peak_memory: usize,
}

impl JoinRunResult {
    /// Downsample the series to ≤ `points` evenly spaced samples (figures
    /// don't need every tuple).
    pub fn downsampled(&self, points: usize) -> Vec<(u64, Duration)> {
        if self.series.len() <= points || points == 0 {
            return self.series.clone();
        }
        let step = self.series.len() as f64 / points as f64;
        (0..points)
            .map(|i| self.series[(i as f64 * step) as usize])
            .chain(self.series.last().copied())
            .collect()
    }
}

/// Execute one single-fragment plan against `registry`, recording the
/// output series.
pub fn run_single_fragment(
    label: &str,
    registry: &SourceRegistry,
    plan: &QueryPlan,
    frag: FragmentId,
) -> JoinRunResult {
    run_single_fragment_in_env(label, ExecEnv::new(registry.clone()), plan, frag)
}

/// Execute one single-fragment plan in a caller-provided environment (e.g.
/// with an overridden operator batch size or spill store).
pub fn run_single_fragment_in_env(
    label: &str,
    env: ExecEnv,
    plan: &QueryPlan,
    frag: FragmentId,
) -> JoinRunResult {
    let rt = PlanRuntime::for_plan(plan, env.clone());
    let mut series = Vec::new();
    let report = run_fragment_observed(plan, frag, &rt, &mut |n, d| series.push((n, d)))
        .unwrap_or_else(|e| panic!("{label}: fragment failed: {e}"));
    match report.outcome {
        FragmentOutcome::Completed { .. } => {}
        other => panic!("{label}: unexpected outcome {other:?}"),
    }
    let stats = env.spill.stats();
    JoinRunResult {
        label: label.to_string(),
        time_to_first: report.time_to_first.unwrap_or(report.duration),
        total: report.duration,
        tuples: report.produced,
        series,
        spill_tuple_io: stats.tuples_written() + stats.tuples_read(),
        peak_memory: env.memory.peak_used(),
    }
}

/// Print results as the figure's CSV: one column block per configuration.
pub fn print_series_csv(results: &[JoinRunResult], points: usize) {
    println!("# series: tuples_output, elapsed_ms (per configuration)");
    for r in results {
        println!("## {}", r.label);
        for (n, d) in r.downsampled(points) {
            println!("{n},{:.3}", d.as_secs_f64() * 1e3);
        }
    }
    println!("# summary: label, time_to_first_ms, total_ms, tuples, spill_tuple_io");
    for r in results {
        println!(
            "{}, {:.3}, {:.3}, {}, {}",
            r.label,
            r.time_to_first.as_secs_f64() * 1e3,
            r.total.as_secs_f64() * 1e3,
            r.tuples,
            r.spill_tuple_io
        );
    }
}

/// Render a PASS/FAIL shape verdict line.
pub fn verdict(name: &str, ok: bool, detail: String) {
    println!(
        "shape-check [{}] {}: {}",
        if ok { "PASS" } else { "FAIL" },
        name,
        detail
    );
}
