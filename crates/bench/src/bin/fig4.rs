//! Regenerates **Figure 4** (§6.3): overflow resolution for
//! `part ⋈ partsupp` at full memory and at 2/3 / 1/3 of the join's resident
//! demand, for both published strategies.
//!
//! Shape targets (paper): "Symmetric Flush outputs tuples more steadily,
//! but the rate tapers off more than with Left Flush. Overall performance
//! of both strategies is similar" — and both overflowing configurations are
//! slower than fits-in-memory but still correct.

use tukwila_bench::print_series_csv;
use tukwila_bench::runner::verdict;
use tukwila_bench::scenarios::fig4;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.006);
    let results = fig4::run(scale);
    print_series_csv(&results, 50);

    let get = |label: &str| results.iter().find(|r| r.label == label).unwrap();
    let fits = get("Fits in Memory");
    let left23 = get("Left Flush - 2/3 mem");
    let left13 = get("Left Flush - 1/3 mem");
    let sym23 = get("Symmetric Flush - 2/3 mem");
    let sym13 = get("Symmetric Flush - 1/3 mem");

    for r in &results {
        assert_eq!(r.tuples, fits.tuples, "{}: wrong cardinality", r.label);
    }
    verdict(
        "fits-has-no-spill",
        fits.spill_tuple_io == 0,
        format!("fits-in-memory spill = {}", fits.spill_tuple_io),
    );
    verdict(
        "overflow-costs-io",
        left23.spill_tuple_io > 0 && sym23.spill_tuple_io > 0,
        format!(
            "left 2/3: {} IOs, symmetric 2/3: {} IOs",
            left23.spill_tuple_io, sym23.spill_tuple_io
        ),
    );
    verdict(
        "less-memory-more-io",
        left13.spill_tuple_io > left23.spill_tuple_io
            && sym13.spill_tuple_io > sym23.spill_tuple_io,
        format!(
            "left: {} → {}; symmetric: {} → {}",
            left23.spill_tuple_io,
            left13.spill_tuple_io,
            sym23.spill_tuple_io,
            sym13.spill_tuple_io
        ),
    );
    // The paper's smoothness observation: Left Flush has an abrupt
    // production pattern (a long stall while the right side drains),
    // Symmetric keeps producing.
    let stall = |r| fig4::longest_stall(r);
    verdict(
        "left-flush-stalls-longer-than-symmetric",
        stall(left13) > stall(sym13),
        format!(
            "longest stall at 1/3 mem: left {:?} vs symmetric {:?}",
            stall(left13),
            stall(sym13)
        ),
    );
    verdict(
        "overall-times-similar",
        {
            let a = left13.total.as_secs_f64();
            let b = sym13.total.as_secs_f64();
            a / b < 1.6 && b / a < 1.6
        },
        format!(
            "left 1/3 {:?} vs symmetric 1/3 {:?} (paper: 'relatively close')",
            left13.total, sym13.total
        ),
    );
}
