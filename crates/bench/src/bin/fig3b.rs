//! Regenerates **Figure 3b** (§6.2): wide-area `partsupp ⋈ part` with slow
//! links on one or both sides.
//!
//! Shape targets (paper): "the double pipelined join begins producing
//! tuples much earlier, and … completes the query much faster as well";
//! hybrid is sensitive to *which* side is slow (a slow inner delays all
//! output), the DPJ is not.

use tukwila_bench::runner::verdict;
use tukwila_bench::{print_series_csv, scenarios::fig3b};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.004);
    let results = fig3b::run(scale, 0.3);
    print_series_csv(&results, 40);

    let get = |label: &str| {
        results
            .iter()
            .find(|r| r.label.starts_with(label))
            .unwrap_or_else(|| panic!("missing config {label}"))
    };
    let h_both = get("Hybrid - Both");
    let h_inner = get("Hybrid - Inner");
    let d_both = get("Double Pipelined - Both");
    let d_inner = get("Double Pipelined - Inner");
    let d_outer = get("Double Pipelined - Outer");

    verdict(
        "dpj-first-tuple-both-slow",
        d_both.time_to_first < h_both.time_to_first,
        format!(
            "DPJ ttf {:?} vs hybrid {:?} (both slow)",
            d_both.time_to_first, h_both.time_to_first
        ),
    );
    verdict(
        "dpj-completes-faster-both-slow",
        d_both.total < h_both.total,
        format!("DPJ {:?} vs hybrid {:?}", d_both.total, h_both.total),
    );
    verdict(
        "hybrid-inner-slow-delays-first-output",
        h_inner.time_to_first > d_inner.time_to_first.mul_f64(1.5),
        format!(
            "hybrid inner-slow ttf {:?} vs DPJ {:?}",
            h_inner.time_to_first, d_inner.time_to_first
        ),
    );
    verdict(
        "dpj-insensitive-to-slow-side",
        {
            let a = d_inner.total.as_secs_f64();
            let b = d_outer.total.as_secs_f64();
            (a - b).abs() / a.max(b) < 0.5
        },
        format!(
            "DPJ inner-slow {:?} ≈ outer-slow {:?}",
            d_inner.total, d_outer.total
        ),
    );
}
