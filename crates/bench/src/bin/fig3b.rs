//! Regenerates **Figure 3b** (§6.2): wide-area `partsupp ⋈ part` with slow
//! links on one or both sides.
//!
//! Shape targets (paper): "the double pipelined join begins producing
//! tuples much earlier, and … completes the query much faster as well";
//! hybrid is sensitive to *which* side is slow (a slow inner delays all
//! output), the DPJ is not.

use tukwila_bench::runner::verdict;
use tukwila_bench::{print_series_csv, scenarios::fig3b};

/// WAN link scale for both the scenario run and the transfer-floor
/// normalization — the verdict below is only meaningful if they agree.
const WAN_SCALE: f64 = 0.3;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.004);
    let results = fig3b::run(scale, WAN_SCALE);
    let (inner_bound, outer_bound) = fig3b::slow_transfer_bounds(scale, WAN_SCALE);
    print_series_csv(&results, 40);

    let get = |label: &str| {
        results
            .iter()
            .find(|r| r.label.starts_with(label))
            .unwrap_or_else(|| panic!("missing config {label}"))
    };
    let h_both = get("Hybrid - Both");
    let h_inner = get("Hybrid - Inner");
    let d_both = get("Double Pipelined - Both");
    let d_inner = get("Double Pipelined - Inner");
    let d_outer = get("Double Pipelined - Outer");

    verdict(
        "dpj-first-tuple-both-slow",
        d_both.time_to_first < h_both.time_to_first,
        format!(
            "DPJ ttf {:?} vs hybrid {:?} (both slow)",
            d_both.time_to_first, h_both.time_to_first
        ),
    );
    verdict(
        "dpj-completes-faster-both-slow",
        d_both.total < h_both.total,
        format!("DPJ {:?} vs hybrid {:?}", d_both.total, h_both.total),
    );
    verdict(
        "hybrid-inner-slow-delays-first-output",
        h_inner.time_to_first > d_inner.time_to_first.mul_f64(1.5),
        format!(
            "hybrid inner-slow ttf {:?} vs DPJ {:?}",
            h_inner.time_to_first, d_inner.time_to_first
        ),
    );
    // Insensitivity to the slow side is about *when output is produced*,
    // not about raw completion time: partsupp carries 4× the rows of part,
    // so the two configurations move very different volumes over the slow
    // link and their totals are incomparable (the slow transfer is a hard
    // floor either way). The DPJ's claim is (a) first output arrives at
    // WAN-initial-delay scale whichever side is slow — unlike hybrid,
    // whose slow inner delays all output — and (b) each run stays
    // network-bound relative to its own slow-side transfer floor.
    let ttf_i = d_inner.time_to_first.as_secs_f64();
    let ttf_o = d_outer.time_to_first.as_secs_f64();
    let hybrid_blocked = h_inner.time_to_first.as_secs_f64();
    let ttf_close = (ttf_i - ttf_o).abs() < 0.025; // both ≈ WAN initial delay
    let both_early = ttf_i.max(ttf_o) < hybrid_blocked * 0.5;
    let bound_i = d_inner.total.as_secs_f64() / inner_bound.as_secs_f64();
    let bound_o = d_outer.total.as_secs_f64() / outer_bound.as_secs_f64();
    let network_bound = bound_i < 6.0 && bound_o < 6.0;
    verdict(
        "dpj-insensitive-to-slow-side",
        ttf_close && both_early && network_bound,
        format!(
            "DPJ ttf inner-slow {:?} ≈ outer-slow {:?} (hybrid inner-slow {:?}); \
             total/slow-transfer-floor inner {bound_i:.2}x, outer {bound_o:.2}x",
            d_inner.time_to_first, d_outer.time_to_first, h_inner.time_to_first
        ),
    );
}
