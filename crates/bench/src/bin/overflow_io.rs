//! Regenerates the **§4.2.3 analytical comparison**: tuple I/O of the
//! overflow strategies as N grows past memory M.
//!
//! Shape targets (paper): "our analysis suggests that incremental
//! left-flush will perform fewer disk I/Os than the symmetric strategy";
//! the naive flush-everything conversion is worst for mild overflow.

use tukwila_bench::runner::verdict;
use tukwila_bench::scenarios::overflow_io;

fn main() {
    let m = 800;
    let ns = [500, 700, 900, 1100, 1400];
    let points = overflow_io::run(m, &ns);

    println!("# N, M, left_io, symmetric_io, flush_all_io (tuples written+read)");
    for p in &points {
        let io = |i: usize| p.io[i].0 + p.io[i].1;
        println!("{}, {}, {}, {}, {}", p.n, p.m, io(0), io(1), io(2));
    }

    let mild = &points[0]; // N < M: B fits comfortably
    let io = |p: &overflow_io::Point, i: usize| p.io[i].0 + p.io[i].1;
    verdict(
        "left-flush-at-most-symmetric",
        points
            .iter()
            .all(|p| io(p, 0) as f64 <= io(p, 1) as f64 * 1.05 + 64.0),
        "left ≤ symmetric (within bucket-granularity noise) at every N".to_string(),
    );
    verdict(
        "flush-all-worst-on-mild-overflow",
        io(mild, 2) >= io(mild, 0),
        format!(
            "N={} M={}: flush-all {} vs incremental {}",
            mild.n,
            mild.m,
            io(mild, 2),
            io(mild, 0)
        ),
    );
    verdict(
        "io-grows-with-n",
        points.windows(2).all(|w| io(&w[1], 0) >= io(&w[0], 0)),
        "left-flush I/O monotone in N".to_string(),
    );
}
