//! `plan-lint`: static analysis for plan-text files, suitable for CI.
//!
//! Parses each file with [`tukwila_plan::parse_plan_unchecked`] (so a
//! semantically malformed plan still yields a full report instead of the
//! first parse-stage validation error) and runs the complete
//! [`tukwila_analyze::Analyzer`] pass stack over it. Without a catalog the
//! schema pass degrades gracefully: wrapper schemas are opaque and checks
//! resume wherever a `project` fixes the column set.
//!
//! ```text
//! plan-lint [--json] [--max-parallelism N] [--codes] <file.plan>...
//! ```
//!
//! * `--json` — one machine-readable report object per file (the
//!   [`tukwila_plan::diag::Report::to_json`] shape, wrapped with the file
//!   name) instead of rustc-style rendered diagnostics;
//! * `--max-parallelism N` — enable the TA031 partition-count bound;
//! * `--codes` — print the diagnostic code registry and exit.
//!
//! Exit status: 0 when no file has Error-severity findings, 1 when any
//! does, 2 on usage or unreadable/unparseable input.

use std::process::ExitCode;

use tukwila_analyze::Analyzer;
use tukwila_plan::diag::codes;
use tukwila_plan::parse_plan_unchecked;

fn usage() -> ExitCode {
    eprintln!("usage: plan-lint [--json] [--max-parallelism N] [--codes] <file.plan>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut max_parallelism: Option<usize> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--max-parallelism" => {
                let Some(n) = args.next().and_then(|v| v.parse().ok()) else {
                    return usage();
                };
                max_parallelism = Some(n);
            }
            "--codes" => {
                for c in codes::ALL {
                    println!(
                        "{}  {:5}  {:9}  {}",
                        c.code,
                        c.severity.label(),
                        c.pass.label(),
                        c.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            _ if arg.starts_with("--") => return usage(),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return usage();
    }

    let mut analyzer = Analyzer::new();
    if let Some(n) = max_parallelism {
        analyzer = analyzer.with_max_parallelism(n);
    }

    let mut any_error = false;
    let mut broken = false;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("plan-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        let plan = match parse_plan_unchecked(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("plan-lint: {file}: parse error: {e}");
                broken = true;
                continue;
            }
        };
        let report = analyzer.analyze(&plan);
        any_error |= report.error_count() > 0;
        if json {
            // `{"file": ..., "report": <Report::to_json shape>}`
            let name: String = file.chars().flat_map(char::escape_default).collect();
            println!("{{\"file\":\"{}\",\"report\":{}}}", name, report.to_json());
        } else if report.diagnostics.is_empty() {
            println!("{file}: clean");
        } else {
            println!("{file}:");
            println!("{}", report.render(&plan));
        }
    }
    if broken {
        ExitCode::from(2)
    } else if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
