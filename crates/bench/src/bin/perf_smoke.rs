//! Hot-path performance smoke: scan, join, spill, and intra-query
//! parallelism scenarios with machine-readable output.
//!
//! Runs each scenario several times and writes `BENCH_join.json` (or
//! `--out <path>`) with rows/sec, p50 latency, peak engine memory, and
//! spill I/O — the recorded perf trajectory every subsequent PR measures
//! against. `--quick` shrinks data sizes and repetitions for CI, where the
//! goal is "completes and emits valid JSON", not stable timings.
//!
//! The `par_speedup` scenario runs a dpj3_join-class fragment DAG (two
//! independent paced-source join fragments feeding a partitioned top
//! join) at intra-query thread budgets 1, 2, and 4, asserts the results
//! are multiset-identical, and reports the 4-thread-vs-1 median speedup.
//!
//! The `dist_speedup` scenarios scatter the same class of keyed join to
//! 1, 2, and 4 worker *processes* (`dist_worker` siblings when built,
//! in-process loopback servers otherwise) over the TCP wire protocol,
//! assert multiset identity across worker counts, and report the
//! 2-vs-1-worker median speedup plus the host core count — on a
//! single-core host the curve plateaus at ~1x because every worker shares
//! the core, and `cores` makes that distinguishable from a regression.
//!
//! Reproduce the committed baseline with:
//! ```text
//! cargo run --release -p tukwila-bench --bin perf_smoke
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tukwila_bench::dist;
use tukwila_bench::runner::run_single_fragment_in_env;
use tukwila_common::{tuple, DataType, Relation, Schema, Tuple};
use tukwila_core::execute_plan;
use tukwila_exec::ExecEnv;
use tukwila_net::{WorkerHandle, WorkerServer};
use tukwila_plan::{JoinKind, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};
use tukwila_trace::TraceLevel;

/// `n` tuples `(i % dup, i)` under schema `name(k, v)`.
fn keyed(name: &str, n: i64, dup: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(tuple![i % dup.max(1), i]);
    }
    r
}

struct ScenarioResult {
    name: &'static str,
    runs: usize,
    rows: u64,
    p50: Duration,
    rows_per_sec: f64,
    peak_mem_bytes: usize,
    spill_tuple_io: usize,
}

/// Run `f` `runs` times; report the median duration and the stats of the
/// median run (all runs must produce the same row count).
fn measure(
    name: &'static str,
    runs: usize,
    mut f: impl FnMut() -> (u64, Duration, usize, usize),
) -> ScenarioResult {
    let mut samples: Vec<(u64, Duration, usize, usize)> = (0..runs).map(|_| f()).collect();
    let rows = samples[0].0;
    assert!(
        samples.iter().all(|s| s.0 == rows),
        "{name}: row count varied across runs"
    );
    samples.sort_by_key(|s| s.1);
    let median = samples[samples.len() / 2];
    ScenarioResult {
        name,
        runs,
        rows,
        p50: median.1,
        rows_per_sec: rows as f64 / median.1.as_secs_f64(),
        peak_mem_bytes: median.2,
        spill_tuple_io: median.3,
    }
}

/// Single wrapper scan of `n` rows — the source replay / delivery floor.
fn scan_scenario(n: i64, batch: usize, level: TraceLevel) -> (u64, Duration, usize, usize) {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "S",
        keyed("s", n, n.max(1)),
        LinkModel::instant(),
    ));
    let mut pb = PlanBuilder::new();
    let s = pb.wrapper_scan("S");
    let f = pb.fragment(s, "result");
    let plan = pb.build(f);
    let env = ExecEnv::new(reg)
        .with_batch_size(batch)
        .with_trace_level(level);
    let start = Instant::now();
    let r = run_single_fragment_in_env("scan", env, &plan, f);
    (r.tuples, start.elapsed(), r.peak_memory, r.spill_tuple_io)
}

/// The 3-way double-pipelined join pipeline (the `batch_throughput` shape).
fn join_scenario(scale: i64, batch: usize, level: TraceLevel) -> (u64, Duration, usize, usize) {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "A",
        keyed("a", 3_000 * scale, 200),
        LinkModel::instant(),
    ));
    reg.register(SimulatedSource::new(
        "B",
        keyed("b", 1_000 * scale, 200),
        LinkModel::instant(),
    ));
    reg.register(SimulatedSource::new(
        "C",
        keyed("c", 600, 200),
        LinkModel::instant(),
    ));
    let mut pb = PlanBuilder::new();
    let a = pb.wrapper_scan("A");
    let b = pb.wrapper_scan("B");
    let c = pb.wrapper_scan("C");
    let j1 = pb.join(JoinKind::DoublePipelined, a, b, "k", "k");
    let top = pb.join(JoinKind::DoublePipelined, j1, c, "a.k", "k");
    let f = pb.fragment(top, "result");
    let plan = pb.build(f);
    let env = ExecEnv::new(reg)
        .with_batch_size(batch)
        .with_trace_level(level);
    let start = Instant::now();
    let r = run_single_fragment_in_env("join", env, &plan, f);
    (r.tuples, start.elapsed(), r.peak_memory, r.spill_tuple_io)
}

/// DPJ under a memory budget small enough to force overflow spilling.
fn spill_scenario(n: i64, batch: usize, level: TraceLevel) -> (u64, Duration, usize, usize) {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "L",
        keyed("l", n, n / 10),
        LinkModel::instant(),
    ));
    reg.register(SimulatedSource::new(
        "R",
        keyed("r", n, n / 10),
        LinkModel::instant(),
    ));
    let mut pb = PlanBuilder::new();
    let l = pb.wrapper_scan("L");
    let r = pb.wrapper_scan("R");
    let j = pb
        .dpj(l, r, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
        .with_memory(8_000);
    let f = pb.fragment(j, "result");
    let plan = pb.build(f);
    let env = ExecEnv::new(reg)
        .with_batch_size(batch)
        .with_trace_level(level);
    let start = Instant::now();
    let res = run_single_fragment_in_env("spill", env, &plan, f);
    (
        res.tuples,
        start.elapsed(),
        res.peak_memory,
        res.spill_tuple_io,
    )
}

/// The `par_speedup` scenario: a dpj3_join-class fragment DAG — two
/// independent double-pipelined join fragments over paced (latency-bound)
/// sources feeding a final exchange-partitioned join. Sequential
/// execution pays both fragments' source stalls back to back; the DAG
/// scheduler overlaps them, and the exchange partitions the top join.
/// Returns the timing tuple plus the result relation so the caller can
/// assert multiset equality across thread budgets.
fn par_speedup_scenario(
    n: i64,
    threads: usize,
    batch: usize,
    level: TraceLevel,
) -> ((u64, Duration, usize, usize), Relation) {
    let paced = LinkModel {
        per_tuple: Duration::from_micros(30),
        ..LinkModel::instant()
    };
    let reg = SourceRegistry::new();
    let distinct = |name: &str, n: i64| {
        let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i, i]);
        }
        r
    };
    for src in ["A", "B", "C", "D"] {
        reg.register(SimulatedSource::new(src, distinct(src, n), paced.clone()));
    }
    let mut pb = PlanBuilder::new();
    let a = pb.wrapper_scan("A");
    let b = pb.wrapper_scan("B");
    let j0 = pb.join(JoinKind::DoublePipelined, a, b, "k", "k");
    let f0 = pb.fragment(j0, "mat0");
    let c = pb.wrapper_scan("C");
    let d = pb.wrapper_scan("D");
    let j1 = pb.join(JoinKind::DoublePipelined, c, d, "k", "k");
    let f1 = pb.fragment(j1, "mat1");
    let m0 = pb.table_scan("mat0");
    let m1 = pb.table_scan("mat1");
    let top = pb.join(JoinKind::DoublePipelined, m0, m1, "A.k", "C.k");
    let root = if threads > 1 {
        pb.exchange(top, threads)
    } else {
        top
    };
    let f2 = pb.fragment(root, "result");
    pb.depends(f0, f2);
    pb.depends(f1, f2);
    let plan = pb.build(f2);
    let env = ExecEnv::new(reg)
        .with_batch_size(batch)
        .with_threads(threads)
        .with_trace_level(level);
    let start = Instant::now();
    let (rel, stats) = execute_plan(&plan, env).expect("par_speedup plan failed");
    (
        (
            rel.len() as u64,
            start.elapsed(),
            stats.peak_memory,
            stats.spill_tuples_written + stats.spill_tuples_read,
        ),
        rel.as_ref().clone(),
    )
}

/// A `dist_speedup` cluster: real sibling `dist_worker` processes when the
/// binary is built, in-process loopback servers otherwise. Dropping it
/// tears the workers down either way.
enum DistCluster {
    Procs { _guard: Vec<dist::WorkerProc> },
    Threads { _guard: Vec<WorkerHandle> },
}

impl DistCluster {
    fn spawn(workers: usize, rows: i64) -> (Vec<String>, DistCluster) {
        if let Some(exe) = dist::sibling_worker_exe() {
            let procs: Vec<dist::WorkerProc> = (0..workers)
                .map(|_| {
                    dist::spawn_worker_process(&exe, rows, rows, Duration::ZERO)
                        .expect("spawn dist_worker process")
                })
                .collect();
            let addrs = procs.iter().map(|p| p.addr().to_string()).collect();
            (addrs, DistCluster::Procs { _guard: procs })
        } else {
            let reg = dist::dist_registry(rows, rows, Duration::ZERO);
            let handles: Vec<WorkerHandle> = (0..workers)
                .map(|_| {
                    WorkerServer::bind("127.0.0.1:0", reg.clone())
                        .expect("bind loopback worker")
                        .spawn()
                        .expect("spawn loopback worker")
                })
                .collect();
            let addrs = handles.iter().map(|h| h.addr()).collect();
            (addrs, DistCluster::Threads { _guard: handles })
        }
    }

    fn mode(&self) -> &'static str {
        match self {
            DistCluster::Procs { .. } => "process",
            DistCluster::Threads { .. } => "inproc",
        }
    }
}

/// One distributed run: dial the workers, scatter the exchange, gather
/// the union. Dialing is part of the measured time — it is part of what a
/// coordinator pays per query.
fn dist_scenario(
    addrs: &[String],
    plan: &QueryPlan,
    batch: usize,
) -> ((u64, Duration, usize, usize), Vec<Tuple>) {
    let start = Instant::now();
    let env = dist::coordinator_env(addrs, batch).expect("dial dist cluster");
    let mem = env.memory.clone();
    let out = dist::run_plan(env, plan).expect("dist run failed");
    ((out.len() as u64, start.elapsed(), mem.peak_used(), 0), out)
}

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // Timing baselines are recorded at `off`; `--trace-level events` /
    // `metrics` exist for the paired-run overhead protocol in
    // EXPERIMENTS.md, never for BENCH_join.json updates.
    let level = args
        .iter()
        .position(|a| a == "--trace-level")
        .and_then(|i| args.get(i + 1))
        .map(|v| TraceLevel::parse(v).expect("--trace-level off|events|metrics"))
        .unwrap_or(TraceLevel::Off);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_join.json".to_string());

    let batch = 1024usize;
    let (runs, scan_rows, join_scale, spill_rows, par_rows, dist_rows) = if quick {
        (3, 20_000i64, 1i64, 800i64, 600i64, 20_000i64)
    } else {
        (9, 200_000i64, 1i64, 2_000i64, 2_000i64, 120_000i64)
    };

    eprintln!(
        "perf_smoke: quick={quick} batch={batch} runs={runs} trace_level={}",
        level.as_str()
    );
    let mut results = vec![
        measure("scan", runs, || scan_scenario(scan_rows, batch, level)),
        measure("dpj3_join", runs, || {
            join_scenario(join_scale, batch, level)
        }),
        measure("dpj_spill", runs, || {
            spill_scenario(spill_rows, batch, level)
        }),
    ];

    // Intra-query parallelism: the same DAG at thread budgets 1/2/4, with
    // a multiset-identity check across budgets.
    let mut par_relations: Vec<(usize, Relation)> = Vec::new();
    for &threads in &[1usize, 2, 4] {
        let name = match threads {
            1 => "par_speedup_t1",
            2 => "par_speedup_t2",
            _ => "par_speedup_t4",
        };
        let mut last: Option<Relation> = None;
        let res = measure(name, runs, || {
            let (timing, rel) = par_speedup_scenario(par_rows, threads, batch, level);
            last = Some(rel);
            timing
        });
        par_relations.push((threads, last.expect("scenario ran")));
        results.push(res);
    }
    let baseline = &par_relations[0].1;
    for (threads, rel) in &par_relations[1..] {
        assert!(
            rel.bag_eq(baseline),
            "par_speedup: {threads}-thread result diverged from sequential"
        );
    }
    let p50_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.p50.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let par_speedup_4v1 = p50_of("par_speedup_t1") / p50_of("par_speedup_t4");
    eprintln!("  par_speedup: 4 threads vs 1 = {par_speedup_4v1:.2}x (results multiset-identical)");

    // Distributed exchange: the dist workload scattered to 1/2/4 worker
    // processes over the TCP wire protocol, with a multiset-identity
    // check across worker counts.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut dist_outputs: Vec<(usize, HashMap<Tuple, usize>)> = Vec::new();
    let mut dist_mode = "inproc";
    for &workers in &[1usize, 2, 4] {
        let name = match workers {
            1 => "dist_speedup_w1",
            2 => "dist_speedup_w2",
            _ => "dist_speedup_w4",
        };
        let (addrs, cluster) = DistCluster::spawn(workers, dist_rows);
        dist_mode = cluster.mode();
        let plan = dist::dist_plan(workers, None);
        let mut last: Option<Vec<Tuple>> = None;
        let res = measure(name, runs, || {
            let (timing, out) = dist_scenario(&addrs, &plan, batch);
            last = Some(out);
            timing
        });
        dist_outputs.push((workers, multiset(&last.expect("scenario ran"))));
        results.push(res);
        drop(cluster);
    }
    let dist_baseline = &dist_outputs[0].1;
    for (workers, out) in &dist_outputs[1..] {
        assert_eq!(
            out, dist_baseline,
            "dist_speedup: {workers}-worker result diverged from 1-worker"
        );
    }
    let p50_of = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.p50.as_secs_f64())
            .unwrap_or(f64::NAN)
    };
    let dist_speedup_2v1 = p50_of("dist_speedup_w1") / p50_of("dist_speedup_w2");
    let dist_speedup_4v1 = p50_of("dist_speedup_w1") / p50_of("dist_speedup_w4");
    eprintln!(
        "  dist_speedup: 2 workers vs 1 = {dist_speedup_2v1:.2}x, 4 vs 1 = {dist_speedup_4v1:.2}x \
         ({dist_mode} workers, {cores} core(s), results multiset-identical)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"version\": 1,");
    let _ = writeln!(json, "  \"bench\": \"perf_smoke\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"batch_size\": {batch},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"par_speedup_4v1\": {par_speedup_4v1:.3},");
    let _ = writeln!(json, "  \"dist_speedup_2v1\": {dist_speedup_2v1:.3},");
    let _ = writeln!(json, "  \"dist_speedup_4v1\": {dist_speedup_4v1:.3},");
    let _ = writeln!(json, "  \"dist_workers\": \"{dist_mode}\",");
    json.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", json_escape(r.name));
        let _ = writeln!(json, "      \"runs\": {},", r.runs);
        let _ = writeln!(json, "      \"rows\": {},", r.rows);
        let _ = writeln!(json, "      \"p50_ms\": {:.3},", r.p50.as_secs_f64() * 1e3);
        let _ = writeln!(json, "      \"rows_per_sec\": {:.0},", r.rows_per_sec);
        let _ = writeln!(json, "      \"peak_mem_bytes\": {},", r.peak_mem_bytes);
        let _ = writeln!(json, "      \"spill_tuple_io\": {}", r.spill_tuple_io);
        json.push_str(if i + 1 < results.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    for r in &results {
        eprintln!(
            "  {:>10}: rows={:<8} p50={:>9.3}ms  rows/sec={:>12.0}  peak_mem={:>9}  spill_io={}",
            r.name,
            r.rows,
            r.p50.as_secs_f64() * 1e3,
            r.rows_per_sec,
            r.peak_mem_bytes,
            r.spill_tuple_io
        );
    }
    std::fs::write(&out_path, &json).expect("write BENCH json");
    eprintln!("perf_smoke: wrote {out_path}");
}
