//! Regenerates the **§6.5 experiment**: re-optimization from saved
//! optimizer state vs replanning from scratch.
//!
//! Shape targets (paper): "we realize a speedup of up to 1.64 over
//! replanning from scratch" with usage pointers, and "re-optimization using
//! saved state *without* usage pointers … is worse than replanning from
//! scratch".

use tukwila_bench::runner::verdict;
use tukwila_bench::scenarios::exp65;

fn main() {
    let iters = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    println!("# relations, scratch_us, with_pointers_us, without_pointers_us, speedup_vs_scratch, entries_touched_with, entries_touched_without");
    let mut best_speedup: f64 = 0.0;
    let mut rows = Vec::new();
    for n in [6usize, 8, 10, 12, 14] {
        let row = exp65::run(n, iters);
        let speedup = row.scratch.as_secs_f64() / row.with_pointers.as_secs_f64();
        best_speedup = best_speedup.max(speedup);
        println!(
            "{}, {:.1}, {:.1}, {:.1}, {:.2}, {}, {}",
            row.relations,
            row.scratch.as_secs_f64() * 1e6,
            row.with_pointers.as_secs_f64() * 1e6,
            row.without_pointers.as_secs_f64() * 1e6,
            speedup,
            row.touched_with,
            row.touched_without
        );
        rows.push(row);
    }
    let last = rows.last().unwrap();
    verdict(
        "pointers-beat-scratch",
        rows.iter().all(|r| r.with_pointers < r.scratch),
        format!("max speedup {best_speedup:.2}x (paper: up to 1.64x)"),
    );
    // The paper reports no-pointers as strictly worse than scratch; with
    // our leaner revalidation the two are at par for small queries, and
    // no-pointers falls behind as the table grows (the paper's trend).
    verdict(
        "no-pointers-never-beats-pointers-and-trends-worse-than-scratch",
        rows.iter().all(|r| r.without_pointers > r.with_pointers)
            && last.without_pointers >= last.scratch.mul_f64(0.9),
        format!(
            "at n={}: scratch {:?} vs no-pointers {:?} vs with-pointers {:?}",
            last.relations, last.scratch, last.without_pointers, last.with_pointers
        ),
    );
    verdict(
        "pointers-touch-fewer-entries",
        rows.iter().all(|r| r.touched_with < r.touched_without),
        format!(
            "at n={}: {} vs {} entries",
            last.relations, last.touched_with, last.touched_without
        ),
    );
}
