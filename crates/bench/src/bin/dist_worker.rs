//! Standalone shard worker for the distributed bench/test harness.
//!
//! Rebuilds the deterministic `dist` workload from its arguments, binds a
//! [`WorkerServer`] on an OS-assigned port, reports `PORT <n>` on stdout,
//! and serves plan fragments until killed. Spawned by `perf_smoke`'s
//! `dist_speedup` scenarios and by `tests/distributed.rs` (which also
//! kills one mid-query to test coordinator-side fault handling).
//!
//! ```text
//! dist_worker [--addr 127.0.0.1:0] [--rows N] [--dup D] [--pace-us P]
//! ```

use std::io::Write as _;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

use tukwila_bench::dist::dist_registry;
use tukwila_net::WorkerServer;

fn arg_i64(args: &[String], name: &str, default: i64) -> i64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} wants a number, got {v:?}"))
        })
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let rows = arg_i64(&args, "--rows", 20_000);
    let dup = arg_i64(&args, "--dup", rows);
    let pace = Duration::from_micros(arg_i64(&args, "--pace-us", 0).max(0) as u64);

    let reg = dist_registry(rows, dup, pace);
    let server =
        WorkerServer::bind(&addr, reg).unwrap_or_else(|e| panic!("dist_worker: bind {addr}: {e}"));
    let local = server.local_addr().expect("bound address");
    // The spawner reads this line to learn the OS-assigned port.
    println!("PORT {}", local.port());
    std::io::stdout().flush().expect("flush port line");

    let stop = AtomicBool::new(false);
    server.run(&stop); // serves until the process is killed
}
