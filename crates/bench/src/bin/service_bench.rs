//! Multi-client service throughput/latency scenario.
//!
//! An open-loop client mix over the TPC-H deployment: each client submits
//! a stream of queries (small 2-way, medium 3-way, large 4-way joins) at a
//! fixed arrival interval — queries keep arriving whether or not earlier
//! ones finished, so the service's admission control is part of the
//! measurement. Reports p50/p99 latency, queries/sec, rejections, and
//! cache counters at 1 / 4 / 16 concurrent clients, with and without the
//! shared source-result cache.
//!
//! ```text
//! cargo run --release -p tukwila-bench --bin service_bench
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use tukwila_core::TpchDeployment;
use tukwila_opt::OptimizerConfig;
use tukwila_query::ConjunctiveQuery;
use tukwila_service::{QueryService, QueryServiceConfig};
use tukwila_source::LinkModel;
use tukwila_tpchgen::TpchTable;

const SF: f64 = 0.002;
const QUERIES_PER_CLIENT: usize = 12;
const ARRIVAL_INTERVAL: Duration = Duration::from_millis(8);

fn deployment() -> TpchDeployment {
    // WAN-ish links: the engine is mostly waiting on sources, which is the
    // regime the service tier exists for.
    let wan = LinkModel {
        initial_delay: Duration::from_millis(6),
        ..LinkModel::instant()
    };
    let bursty = LinkModel {
        initial_delay: Duration::from_millis(6),
        burst_size: 400,
        burst_gap: Duration::from_millis(1),
        ..LinkModel::instant()
    };
    TpchDeployment::builder(SF, 23)
        .tables(&[
            TpchTable::Region,
            TpchTable::Nation,
            TpchTable::Supplier,
            TpchTable::Partsupp,
            TpchTable::Part,
        ])
        .default_link(wan)
        .link(TpchTable::Partsupp, bursty.clone())
        .link(TpchTable::Part, bursty)
        .build()
}

fn query_mix(d: &TpchDeployment) -> Vec<ConjunctiveQuery> {
    vec![
        d.query_for("small", &[TpchTable::Supplier, TpchTable::Nation]),
        d.query_for(
            "medium",
            &[TpchTable::Region, TpchTable::Nation, TpchTable::Supplier],
        ),
        d.query_for(
            "large",
            &[
                TpchTable::Nation,
                TpchTable::Supplier,
                TpchTable::Partsupp,
                TpchTable::Part,
            ],
        ),
    ]
}

struct RunReport {
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    completed: u64,
    timed_out: u64,
    cancelled: u64,
    failed: u64,
    rejected: u64,
    queue_high_water: usize,
    cache_hits: u64,
    cache_misses: u64,
}

/// Open-loop drive: each client fires `QUERIES_PER_CLIENT` submissions at
/// `ARRIVAL_INTERVAL`, collecting tickets as it goes and only then waiting
/// for the tail. Rejected submissions (admission backpressure) count as
/// such, not as latency samples.
fn run(clients: usize, cache: bool) -> RunReport {
    let d = deployment();
    let svc = Arc::new(QueryService::new(
        d.system(OptimizerConfig::default()),
        QueryServiceConfig {
            workers: clients.min(16),
            queue_capacity: 8 * clients,
            cache_memory: cache.then_some(32 << 20),
            ..QueryServiceConfig::default()
        },
    ));
    let mix = query_mix(&d);

    let start = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|s| {
        (0..clients)
            .map(|c| {
                let svc = svc.clone();
                let mix = mix.clone();
                s.spawn(move || {
                    let mut tickets = Vec::new();
                    for i in 0..QUERIES_PER_CLIENT {
                        if let Ok(t) = svc.submit(&mix[(c + i) % mix.len()]) {
                            tickets.push(t);
                        }
                        std::thread::sleep(ARRIVAL_INTERVAL);
                    }
                    // Latency = queue wait + execution, stamped by the
                    // worker at completion — independent of the order this
                    // client drains its tickets in. Outcome counting lives
                    // in `ServiceStats`, not here.
                    tickets
                        .into_iter()
                        .filter_map(|t| {
                            let resp = t.wait();
                            resp.is_ok()
                                .then(|| resp.stats.queue_wait + resp.stats.duration)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed = start.elapsed();
    latencies.sort_unstable();

    let stats = svc.stats();
    let cache_stats = svc.cache_stats();
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return f64::NAN;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    RunReport {
        qps: latencies.len() as f64 / elapsed.as_secs_f64(),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        completed: stats.completed,
        timed_out: stats.timed_out,
        cancelled: stats.cancelled,
        failed: stats.failed,
        rejected: stats.rejected,
        queue_high_water: stats.queue_depth_high_water,
        cache_hits: cache_stats.map(|c| c.hits).unwrap_or(0),
        cache_misses: cache_stats.map(|c| c.misses).unwrap_or(0),
    }
}

fn main() {
    println!("# service_bench: open-loop client mix over TPC-H (SF {SF})");
    println!(
        "# {} queries/client @ {:?} arrival interval; mix = small/medium/large joins",
        QUERIES_PER_CLIENT, ARRIVAL_INTERVAL
    );
    println!(
        "clients, cache, qps, p50_ms, p99_ms, completed, timed_out, cancelled, failed, \
         rejected, queue_hw, cache_hits, cache_misses"
    );
    let mut baseline: Option<f64> = None;
    for &cache in &[false, true] {
        for &clients in &[1usize, 4, 16] {
            let r = run(clients, cache);
            println!(
                "{clients}, {}, {:.1}, {:.2}, {:.2}, {}, {}, {}, {}, {}, {}, {}, {}",
                if cache { "on" } else { "off" },
                r.qps,
                r.p50_ms,
                r.p99_ms,
                r.completed,
                r.timed_out,
                r.cancelled,
                r.failed,
                r.rejected,
                r.queue_high_water,
                r.cache_hits,
                r.cache_misses
            );
            if !cache {
                match (clients, baseline) {
                    (1, _) => baseline = Some(r.qps),
                    (16, Some(base)) => {
                        let speedup = r.qps / base;
                        println!(
                            "shape-check [{}] service-throughput-scales: \
                             16-client qps = {:.2}x 1-client (need >= 2x)",
                            if speedup >= 2.0 { "PASS" } else { "FAIL" },
                            speedup
                        );
                    }
                    _ => {}
                }
            } else if clients == 16 {
                println!(
                    "shape-check [{}] cache-serves-repeats: {} hits / {} misses",
                    if r.cache_hits > 0 { "PASS" } else { "FAIL" },
                    r.cache_hits,
                    r.cache_misses
                );
            }
        }
    }
}
