//! Regenerates **Figure 5** (§6.4): the seven four-table joins (no
//! lineitem) under the three interleaved-planning strategies, with correct
//! source cardinalities but misestimated join selectivities.
//!
//! Shape targets (paper): "In every case, the materialize and replan
//! strategy was fastest, with a total speedup of 1.42 over pipeline and
//! 1.69 over the naïve strategy of materializing alone."

use tukwila_bench::runner::verdict;
use tukwila_bench::scenarios::fig5;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.006);
    let rows = fig5::run(scale, 30.0, 8 << 20);

    println!("# query, materialize_ms, materialize_and_replan_ms, pipeline_ms, replans");
    for r in &rows {
        println!(
            "{}, {:.1}, {:.1}, {:.1}, {}",
            r.query,
            r.materialize.as_secs_f64() * 1e3,
            r.replan.as_secs_f64() * 1e3,
            r.pipeline.as_secs_f64() * 1e3,
            r.replan_count
        );
    }
    let (vs_pipeline, vs_materialize) = fig5::speedups(&rows);
    println!("# speedup of materialize-and-replan: {vs_pipeline:.2}x vs pipeline, {vs_materialize:.2}x vs materialize");

    verdict(
        "replanning-occurred",
        rows.iter().any(|r| r.replan_count > 0),
        format!(
            "replans per query: {:?}",
            rows.iter().map(|r| r.replan_count).collect::<Vec<_>>()
        ),
    );
    verdict(
        "replan-beats-materialize",
        vs_materialize > 1.0,
        format!("{vs_materialize:.2}x (paper: 1.69x)"),
    );
    verdict(
        "replan-beats-or-ties-pipeline",
        vs_pipeline > 0.95,
        format!("{vs_pipeline:.2}x (paper: 1.42x)"),
    );
}
