//! Regenerates **Figure 3a** (§6.2): tuples-vs-time for
//! `lineitem ⋈ supplier ⋈ orders` on a LAN — double pipelined join vs both
//! inner/outer assignments of hybrid hash.
//!
//! Shape targets (paper): the DPJ shows a huge improvement in time to first
//! tuple, completes no slower than the best hybrid configuration, and is
//! insensitive to operand order, while hybrid's two configurations differ.

use tukwila_bench::runner::verdict;
use tukwila_bench::{print_series_csv, scenarios::fig3a};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    let results = fig3a::run(scale, 1.0);
    print_series_csv(&results, 40);

    let dpj = &results[0];
    let hybrid_good = &results[1];
    let hybrid_bad = &results[2];
    verdict(
        "dpj-first-tuple",
        dpj.time_to_first < hybrid_good.time_to_first
            && dpj.time_to_first < hybrid_bad.time_to_first,
        format!(
            "DPJ ttf {:?} vs hybrid(good) {:?} / hybrid(bad) {:?}",
            dpj.time_to_first, hybrid_good.time_to_first, hybrid_bad.time_to_first
        ),
    );
    verdict(
        "dpj-completion",
        dpj.total <= hybrid_good.total.mul_f64(1.10),
        format!(
            "DPJ total {:?} vs best hybrid {:?} (paper: slightly faster)",
            dpj.total, hybrid_good.total
        ),
    );
    // The inner/outer assignment shows up in the output *curve*: with the
    // huge lineitem as the build side, nothing is emitted until it has
    // fully loaded. (Totals converge — both configurations must transfer
    // the same data — exactly as in the paper's Figure 3a, where the two
    // hybrid curves end together but start far apart.)
    verdict(
        "hybrid-asymmetry",
        hybrid_bad.time_to_first >= hybrid_good.time_to_first.mul_f64(1.5),
        format!(
            "inner/outer choice matters for hybrid first output: good {:?} ≪ bad {:?}",
            hybrid_good.time_to_first, hybrid_bad.time_to_first
        ),
    );
    assert_eq!(dpj.tuples, hybrid_good.tuples);
    assert_eq!(dpj.tuples, hybrid_bad.tuples);
}
