//! `query-profile`: run one query with tracing on and export its trace.
//!
//! By default runs a built-in Figure-3-style scenario — a 3-way double
//! pipelined join over simulated sources with an initial delay and bursty
//! delivery, so the timeline shows first-tuple latency, bursts, and
//! fragment scheduling — and prints the human-readable timeline plus the
//! per-operator metrics table. Pass `--plan FILE` to profile a plan-text
//! file instead (sources referenced by the plan are synthesized as
//! instant `(k, v)` relations).
//!
//! ```text
//! query-profile [--plan FILE] [--json | --csv] [--level off|events|metrics]
//! ```
//!
//! * `--json` — print the [`TraceSnapshot::to_json`] document (and nothing
//!   else) to stdout, for machine consumption / CI validation;
//! * `--csv`  — print the events CSV, a blank line, then the operator CSV;
//! * `--level` — trace level to run at (default `metrics`).
//!
//! Exit status: 0 on success, 1 when execution fails, 2 on usage errors.

use std::process::ExitCode;
use std::time::Duration;

use tukwila_common::{tuple, DataType, Relation, Schema};
use tukwila_core::execute_plan_traced;
use tukwila_exec::ExecEnv;
use tukwila_plan::{parse_plan, JoinKind, OperatorSpec, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};
use tukwila_trace::TraceLevel;

/// `n` tuples `(i % dup, i)` under schema `name(k, v)`.
fn keyed(name: &str, n: i64, dup: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(tuple![i % dup.max(1), i]);
    }
    r
}

/// The built-in scenario: two delayed/bursty sources joined pipelined,
/// then joined against a small instant dimension source.
fn builtin() -> (QueryPlan, SourceRegistry) {
    let delayed = LinkModel {
        initial_delay: Duration::from_millis(30),
        burst_size: 500,
        burst_gap: Duration::from_millis(2),
        ..LinkModel::instant()
    };
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "A",
        keyed("a", 4_000, 200),
        delayed.clone(),
    ));
    reg.register(SimulatedSource::new("B", keyed("b", 2_000, 200), delayed));
    reg.register(SimulatedSource::new(
        "C",
        keyed("c", 400, 200),
        LinkModel::instant(),
    ));
    let mut pb = PlanBuilder::new();
    let a = pb.wrapper_scan("A");
    let b = pb.wrapper_scan("B");
    let c = pb.wrapper_scan("C");
    let j1 = pb.join(JoinKind::DoublePipelined, a, b, "k", "k");
    let top = pb.join(JoinKind::DoublePipelined, j1, c, "a.k", "k");
    let f = pb.fragment(top, "result");
    (pb.build(f), reg)
}

/// Every source name a plan fetches from (wrapper scans, dependent joins,
/// collector children).
fn plan_sources(plan: &QueryPlan) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let seen = |names: &mut Vec<String>, s: &str| {
        if !names.iter().any(|n| n == s) {
            names.push(s.to_string());
        }
    };
    for frag in &plan.fragments {
        frag.root.walk(&mut |node| match &node.spec {
            OperatorSpec::WrapperScan { source, .. } => seen(&mut names, source),
            OperatorSpec::DependentJoin { source, .. } => seen(&mut names, source),
            OperatorSpec::Collector { children, .. } => {
                for c in children {
                    seen(&mut names, &c.source);
                }
            }
            _ => {}
        });
    }
    names
}

fn usage() -> ExitCode {
    eprintln!("usage: query-profile [--plan FILE] [--json | --csv] [--level off|events|metrics]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut plan_file: Option<String> = None;
    let mut json = false;
    let mut csv = false;
    let mut level = TraceLevel::Metrics;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plan" => match args.next() {
                Some(f) => plan_file = Some(f),
                None => return usage(),
            },
            "--json" => json = true,
            "--csv" => csv = true,
            "--level" => match args.next().as_deref().and_then(TraceLevel::parse) {
                Some(l) => level = l,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    if json && csv {
        return usage();
    }

    let (plan, reg) = match &plan_file {
        Some(file) => {
            let text = match std::fs::read_to_string(file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("query-profile: {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            let plan = match parse_plan(&text) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("query-profile: {file}: {e}");
                    return ExitCode::from(2);
                }
            };
            // Synthesize an instant source for every name the plan
            // fetches; the schema qualifier is the lowercased source name
            // so qualified key references like `a.k` resolve.
            let reg = SourceRegistry::new();
            for name in plan_sources(&plan) {
                reg.register(SimulatedSource::new(
                    &name,
                    keyed(&name.to_lowercase(), 2_000, 50),
                    LinkModel::instant(),
                ));
            }
            (plan, reg)
        }
        None => builtin(),
    };

    let env = ExecEnv::new(reg).with_trace_level(level);
    let start = std::time::Instant::now();
    let (rel, _stats, trace) = match execute_plan_traced(&plan, env) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("query-profile: execution failed: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "query-profile: {} rows in {:.3} ms (level {})",
        rel.len(),
        start.elapsed().as_secs_f64() * 1e3,
        level.as_str()
    );
    let Some(trace) = trace else {
        // Off: nothing recorded; the run itself is the measurement.
        return ExitCode::SUCCESS;
    };
    if json {
        println!("{}", trace.to_json());
    } else if csv {
        println!("{}", trace.events_csv());
        println!("{}", trace.ops_csv());
    } else {
        print!("{}", trace.render_timeline());
    }
    ExitCode::SUCCESS
}
