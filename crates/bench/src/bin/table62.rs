//! Regenerates the **§6.2 comparison table**: all two- and three-relation
//! joins, double pipelined vs hybrid hash.
//!
//! Shape targets (paper): "not only did the double pipelined join show a
//! huge improvement in time to first tuple, but it also had a slightly
//! faster time-to-completion than the hybrid hash join" — in all cases a
//! measurable difference.

use tukwila_bench::runner::verdict;
use tukwila_bench::scenarios::table62;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.004);
    let rows = table62::run(scale, 0.5);

    println!("# join, dpj_first_ms, hybrid_first_ms, dpj_total_ms, hybrid_total_ms, tuples");
    let mut dpj_first_wins = 0;
    let mut dpj_total_ok = 0;
    for r in &rows {
        println!(
            "{}, {:.2}, {:.2}, {:.2}, {:.2}, {}",
            r.name,
            r.dpj.time_to_first.as_secs_f64() * 1e3,
            r.hybrid.time_to_first.as_secs_f64() * 1e3,
            r.dpj.total.as_secs_f64() * 1e3,
            r.hybrid.total.as_secs_f64() * 1e3,
            r.dpj.tuples
        );
        assert_eq!(r.dpj.tuples, r.hybrid.tuples, "{}: result mismatch", r.name);
        if r.dpj.time_to_first <= r.hybrid.time_to_first {
            dpj_first_wins += 1;
        }
        if r.dpj.total <= r.hybrid.total.mul_f64(1.15) {
            dpj_total_ok += 1;
        }
    }
    verdict(
        "dpj-first-tuple-wins",
        dpj_first_wins * 10 >= rows.len() * 9,
        format!("{dpj_first_wins}/{} joins", rows.len()),
    );
    verdict(
        "dpj-total-no-slower",
        dpj_total_ok * 10 >= rows.len() * 9,
        format!("{dpj_total_ok}/{} joins within 1.15x of hybrid", rows.len()),
    );
}
