//! The paper's experiments as reusable scenario functions (one per figure
//! or table of §6, plus the §4.2.3 analysis). See DESIGN.md §4 for the
//! experiment index.

use std::time::Duration;

use tukwila_core::{StatsQuality, TpchDeployment};
use tukwila_opt::{OptimizerConfig, PipelinePolicy};
use tukwila_plan::{FragmentId, JoinKind, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};
use tukwila_tpchgen::TpchTable;

use crate::runner::{run_single_fragment, JoinRunResult};

/// Figure 3a (§6.2): `lineitem ⋈ supplier ⋈ orders` on a LAN — the double
/// pipelined join against both inner/outer assignments of hybrid hash.
pub mod fig3a {
    use super::*;

    /// Run the three configurations of the figure at `scale` with links
    /// scaled by `link_scale`.
    pub fn run(scale: f64, link_scale: f64) -> Vec<JoinRunResult> {
        let deployment = TpchDeployment::builder(scale, 42)
            .tables(&[TpchTable::Lineitem, TpchTable::Supplier, TpchTable::Orders])
            .default_link(LinkModel::lan(link_scale))
            .build();
        let registry = &deployment.registry;

        let dpj = |b: &mut PlanBuilder| {
            let li = b.wrapper_scan("lineitem");
            let su = b.wrapper_scan("supplier");
            let or = b.wrapper_scan("orders");
            let ls = b.join(JoinKind::DoublePipelined, li, su, "l_suppkey", "s_suppkey");
            let top = b.join(
                JoinKind::DoublePipelined,
                ls,
                or,
                "l_orderkey",
                "o_orderkey",
            );
            b.fragment(top, "result")
        };
        // Hybrid, good inner choice: (Lineitem ⋈ Supplier) ⋈ Order with
        // supplier (small) as the inner build side, then orders built over
        // the intermediate's probe.
        let hybrid_good = |b: &mut PlanBuilder| {
            let li = b.wrapper_scan("lineitem");
            let su = b.wrapper_scan("supplier");
            let or = b.wrapper_scan("orders");
            let ls = b.join(JoinKind::HybridHash, li, su, "l_suppkey", "s_suppkey");
            let top = b.join(JoinKind::HybridHash, ls, or, "l_orderkey", "o_orderkey");
            b.fragment(top, "result")
        };
        // Hybrid, bad inner choice: (Supplier ⋈ Lineitem) ⋈ Order — the
        // huge lineitem as the build side.
        let hybrid_bad = |b: &mut PlanBuilder| {
            let su = b.wrapper_scan("supplier");
            let li = b.wrapper_scan("lineitem");
            let or = b.wrapper_scan("orders");
            let sl = b.join(JoinKind::HybridHash, su, li, "s_suppkey", "l_suppkey");
            let top = b.join(JoinKind::HybridHash, sl, or, "l_orderkey", "o_orderkey");
            b.fragment(top, "result")
        };

        vec![
            run_config("Double Pipelined", registry, dpj),
            run_config(
                "Hybrid - (Lineitem x Supplier) x Order",
                registry,
                hybrid_good,
            ),
            run_config(
                "Hybrid - (Supplier x Lineitem) x Order",
                registry,
                hybrid_bad,
            ),
        ]
    }
}

/// Figure 3b (§6.2): wide-area `partsupp ⋈ part`, varying which side of the
/// link is slow.
pub mod fig3b {
    use super::*;

    /// Estimated wall-clock floor of each DPJ slow-side configuration: the
    /// slow relation's full WAN transfer. `partsupp` holds 4× the rows of
    /// `part`, so the two configurations move very different amounts of
    /// data over the slow link and their raw totals are incomparable —
    /// sensitivity claims must be normalized by these bounds. Returns
    /// `(inner_slow, outer_slow)` = (part over WAN, partsupp over WAN).
    pub fn slow_transfer_bounds(scale: f64, wan_scale: f64) -> (Duration, Duration) {
        let wan = LinkModel::wide_area(wan_scale);
        (
            wan.estimated_transfer(TpchTable::Part.cardinality(scale)),
            wan.estimated_transfer(TpchTable::Partsupp.cardinality(scale)),
        )
    }

    /// `partsupp` is the outer (larger) relation; `part` the inner.
    pub fn run(scale: f64, wan_scale: f64) -> Vec<JoinRunResult> {
        let fast = LinkModel::lan(0.05);
        let slow = LinkModel::wide_area(wan_scale);

        let mk_registry = |ps_link: LinkModel, p_link: LinkModel| {
            let d = TpchDeployment::builder(scale, 42)
                .tables(&[TpchTable::Partsupp, TpchTable::Part])
                .link(TpchTable::Partsupp, ps_link)
                .link(TpchTable::Part, p_link)
                .build();
            d.registry
        };
        let hybrid = |b: &mut PlanBuilder| {
            let ps = b.wrapper_scan("partsupp");
            let p = b.wrapper_scan("part");
            let j = b.join(JoinKind::HybridHash, ps, p, "ps_partkey", "p_partkey");
            b.fragment(j, "result")
        };
        let dpj = |b: &mut PlanBuilder| {
            let ps = b.wrapper_scan("partsupp");
            let p = b.wrapper_scan("part");
            let j = b.join(JoinKind::DoublePipelined, ps, p, "ps_partkey", "p_partkey");
            b.fragment(j, "result")
        };

        vec![
            run_config(
                "Hybrid - Both Slow",
                &mk_registry(slow.clone(), slow.clone()),
                hybrid,
            ),
            run_config(
                "Hybrid - Outer Slow",
                &mk_registry(slow.clone(), fast.clone()),
                hybrid,
            ),
            run_config(
                "Hybrid - Inner Slow",
                &mk_registry(fast.clone(), slow.clone()),
                hybrid,
            ),
            run_config(
                "Double Pipelined - Both Slow",
                &mk_registry(slow.clone(), slow.clone()),
                dpj,
            ),
            run_config(
                "Double Pipelined - Inner Slow",
                &mk_registry(fast.clone(), slow.clone()),
                dpj,
            ),
            run_config(
                "Double Pipelined - Outer Slow",
                &mk_registry(slow, fast),
                dpj,
            ),
        ]
    }
}

/// §6.2's table: all two- and three-relation joins, DPJ vs hybrid hash.
pub mod table62 {
    use super::*;
    use tukwila_tpchgen::all_k_table_joins;

    /// One row of the comparison.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Join name (tables joined).
        pub name: String,
        /// Double pipelined run.
        pub dpj: JoinRunResult,
        /// Hybrid hash run (smaller side as inner).
        pub hybrid: JoinRunResult,
    }

    /// Run every 2- and 3-way join (lineitem excluded for time; its
    /// behaviour is covered by Figure 3a).
    pub fn run(scale: f64, link_scale: f64) -> Vec<Row> {
        let deployment = TpchDeployment::builder(scale, 42)
            .default_link(LinkModel::lan(link_scale))
            .build();
        let mut rows = Vec::new();
        for k in [2usize, 3] {
            for (tables, edges) in all_k_table_joins(k, &[TpchTable::Lineitem]) {
                let name = tables
                    .iter()
                    .map(|t| t.name())
                    .collect::<Vec<_>>()
                    .join("-");
                let sizes: Vec<usize> = tables
                    .iter()
                    .map(|t| deployment.db.table(*t).len())
                    .collect();
                let (tables_r, edges_r, sizes_r) = (&tables, &edges, &sizes);
                let rel_of = move |t: TpchTable| tables_r.iter().position(|&x| x == t).unwrap();
                let build = |kind: JoinKind| {
                    move |b: &mut PlanBuilder| {
                        let (tables, edges, sizes) = (tables_r, edges_r, sizes_r);
                        // left-deep chain in table order, joining each next
                        // table along its first edge to the joined set;
                        // inner = the newly added table (smaller side for
                        // hybrid when tables are ordered descending).
                        let mut order: Vec<usize> = (0..tables.len()).collect();
                        order.sort_by_key(|&i| std::cmp::Reverse(sizes[i]));
                        // reorder greedily for connectivity
                        let mut seq = vec![order[0]];
                        while seq.len() < order.len() {
                            let next = order
                                .iter()
                                .find(|&&i| {
                                    !seq.contains(&i)
                                        && edges.iter().any(|e| {
                                            let (a, b2) = (rel_of(e.from), rel_of(e.to));
                                            (seq.contains(&a) && b2 == i)
                                                || (seq.contains(&b2) && a == i)
                                        })
                                })
                                .copied()
                                .expect("connected query");
                            seq.push(next);
                        }
                        let mut node = b.wrapper_scan(tables[seq[0]].name());
                        let mut joined = vec![seq[0]];
                        for &i in &seq[1..] {
                            let e = edges
                                .iter()
                                .find(|e| {
                                    let (a, b2) = (rel_of(e.from), rel_of(e.to));
                                    (joined.contains(&a) && b2 == i)
                                        || (joined.contains(&b2) && a == i)
                                })
                                .unwrap();
                            let (lk, rk) = if joined.contains(&rel_of(e.from)) {
                                (
                                    format!("{}.{}", e.from.name(), e.from_col),
                                    format!("{}.{}", e.to.name(), e.to_col),
                                )
                            } else {
                                (
                                    format!("{}.{}", e.to.name(), e.to_col),
                                    format!("{}.{}", e.from.name(), e.from_col),
                                )
                            };
                            let scan = b.wrapper_scan(tables[i].name());
                            node = b.join(kind, node, scan, &lk, &rk);
                            joined.push(i);
                        }
                        b.fragment(node, "result")
                    }
                };
                rows.push(Row {
                    name: name.clone(),
                    dpj: run_config(
                        &format!("{name} dpj"),
                        &deployment.registry,
                        build(JoinKind::DoublePipelined),
                    ),
                    hybrid: run_config(
                        &format!("{name} hybrid"),
                        &deployment.registry,
                        build(JoinKind::HybridHash),
                    ),
                });
            }
        }
        rows
    }
}

/// Figure 4 (§6.3): overflow strategies under memory pressure —
/// `part ⋈ partsupp` at full memory, 2/3, and 1/3 of its demand.
pub mod fig4 {
    use super::*;

    /// Named budget levels relative to the join's resident demand.
    pub fn run(scale: f64) -> Vec<JoinRunResult> {
        // Equal pacing so arrivals interleave (the §4.2.3 analysis model).
        let paced = LinkModel {
            per_tuple: Duration::from_micros(25),
            ..LinkModel::instant()
        };
        let deployment = TpchDeployment::builder(scale, 42)
            .tables(&[TpchTable::Part, TpchTable::Partsupp])
            .default_link(paced)
            .build();
        let upper_bound: usize = deployment.db.table(TpchTable::Part).mem_size()
            + deployment.db.table(TpchTable::Partsupp).mem_size();

        let build = |method: OverflowMethod, budget: usize| {
            move |b: &mut PlanBuilder| {
                let p = b.wrapper_scan("part");
                let ps = b.wrapper_scan("partsupp");
                let j = b
                    .dpj(p, ps, "p_partkey", "ps_partkey", method)
                    .with_memory(budget);
                b.fragment(j, "result")
            }
        };
        // Calibrate against the *measured* peak residency of the
        // unconstrained run (footnote 3's skip-storage means the join needs
        // less than the sum of both tables — the paper similarly speaks of
        // what the join "requires … in our system").
        let fits = run_config(
            "Fits in Memory",
            &deployment.registry,
            build(OverflowMethod::IncrementalLeftFlush, 2 * upper_bound),
        );
        let demand = fits.peak_memory.max(1);
        let two_thirds = demand * 2 / 3;
        let one_third = demand / 3;
        vec![
            fits,
            run_config(
                "Left Flush - 2/3 mem",
                &deployment.registry,
                build(OverflowMethod::IncrementalLeftFlush, two_thirds),
            ),
            run_config(
                "Left Flush - 1/3 mem",
                &deployment.registry,
                build(OverflowMethod::IncrementalLeftFlush, one_third),
            ),
            run_config(
                "Symmetric Flush - 2/3 mem",
                &deployment.registry,
                build(OverflowMethod::IncrementalSymmetricFlush, two_thirds),
            ),
            run_config(
                "Symmetric Flush - 1/3 mem",
                &deployment.registry,
                build(OverflowMethod::IncrementalSymmetricFlush, one_third),
            ),
        ]
    }

    /// The longest stall in tuple production (max gap between consecutive
    /// output samples) — the "smoothness" metric behind the figure's
    /// discussion.
    pub fn longest_stall(r: &JoinRunResult) -> Duration {
        r.series
            .windows(2)
            .map(|w| w[1].1.saturating_sub(w[0].1))
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// §4.2.3 analysis: I/O cost sweep of the overflow strategies.
pub mod overflow_io {
    use super::*;
    use tukwila_common::{DataType, Relation, Schema, Tuple, Value};
    use tukwila_exec::{run_fragment, ExecEnv, PlanRuntime};

    /// One sweep point.
    #[derive(Debug, Clone)]
    pub struct Point {
        /// Relation cardinality N (each side).
        pub n: usize,
        /// Memory in tuples M.
        pub m: usize,
        /// (written, read) per strategy: left, symmetric, flush-all.
        pub io: [(usize, usize); 3],
    }

    fn relation(name: &str, n: usize) -> Relation {
        let schema = Schema::of(name, &[("k", DataType::Int), ("pay", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int((i * 3) as i64),
            ]));
        }
        r
    }

    fn io_of(n: usize, m: usize, method: OverflowMethod) -> (usize, usize) {
        let a = relation("a", n);
        let b = relation("b", n);
        let tuple_bytes = a.tuples()[0].mem_size();
        let paced = LinkModel {
            per_tuple: Duration::from_micros(60),
            ..LinkModel::instant()
        };
        let registry = SourceRegistry::new();
        registry.register(SimulatedSource::new("A", a, paced.clone()));
        registry.register(SimulatedSource::new("B", b, paced));
        let mut builder = PlanBuilder::new();
        let l = builder.wrapper_scan("A");
        let r = builder.wrapper_scan("B");
        let j = builder
            .dpj(l, r, "k", "k", method)
            .with_memory(m * tuple_bytes);
        let frag = builder.fragment(j, "out");
        let plan = builder.build(frag);
        let env = ExecEnv::new(registry);
        let rt = PlanRuntime::for_plan(&plan, env.clone());
        run_fragment(&plan, frag, &rt).expect("fragment");
        let s = env.spill.stats();
        (s.tuples_written(), s.tuples_read())
    }

    /// Sweep N at fixed M.
    pub fn run(m: usize, ns: &[usize]) -> Vec<Point> {
        ns.iter()
            .map(|&n| Point {
                n,
                m,
                io: [
                    io_of(n, m, OverflowMethod::IncrementalLeftFlush),
                    io_of(n, m, OverflowMethod::IncrementalSymmetricFlush),
                    io_of(n, m, OverflowMethod::FlushAllLeft),
                ],
            })
            .collect()
    }
}

/// Figure 5 (§6.4): the seven four-table joins without lineitem under the
/// three interleaved-planning strategies.
pub mod fig5 {
    use super::*;
    use tukwila_tpchgen::fig5_queries;

    /// Timing of one query under the three strategies.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Query label (the paper numbers them 1–7).
        pub query: String,
        /// "Materialize" — fragment per join, no replan rules.
        pub materialize: Duration,
        /// "Materialize and replan".
        pub replan: Duration,
        /// Replans performed by the replan strategy.
        pub replan_count: usize,
        /// "Pipeline" — one fully pipelined fragment.
        pub pipeline: Duration,
    }

    /// The experimental condition: correct source cardinalities, wrong join
    /// selectivities (×/÷ `miss_factor` alternating), estimate-driven
    /// memory with a cap, LAN-attached sources, and disk-speed spill I/O
    /// (without the last two, re-reads and overflows are nearly free and
    /// the strategies collapse together).
    pub fn run(scale: f64, miss_factor: f64, memory_cap: usize) -> Vec<Row> {
        use std::sync::Arc;
        use tukwila_core::TukwilaSystem;
        use tukwila_exec::ExecEnv;
        use tukwila_opt::Optimizer;
        use tukwila_query::Reformulator;
        use tukwila_storage::{InMemorySpillStore, ThrottledSpillStore};

        let deployment = TpchDeployment::builder(scale, 42)
            .stats(StatsQuality::MisestimatedSelectivities(miss_factor))
            .default_link(LinkModel::lan(0.3))
            .build();

        let run_policy = |tables: &[TpchTable], policy: PipelinePolicy| {
            let config = OptimizerConfig {
                policy,
                join_memory_budget: memory_cap,
                ..OptimizerConfig::default()
            };
            let env = ExecEnv::new(deployment.registry.clone()).with_spill(Arc::new(
                ThrottledSpillStore::new(
                    Arc::new(InMemorySpillStore::new()),
                    Duration::from_micros(40),
                    Duration::from_micros(40),
                ),
            ));
            let system = TukwilaSystem::new(
                Reformulator::new(deployment.mediated.clone()),
                Optimizer::new(deployment.catalog.clone(), config),
                env,
            );
            let q = deployment.query_for("fig5", tables);
            let started = std::time::Instant::now();
            let result = system.execute(&q).expect("fig5 query");
            (started.elapsed(), result.stats.replans)
        };

        fig5_queries()
            .iter()
            .enumerate()
            .map(|(i, (tables, _))| {
                let name = format!(
                    "Q{} ({})",
                    i + 1,
                    tables
                        .iter()
                        .map(|t| t.name())
                        .collect::<Vec<_>>()
                        .join("-")
                );
                let (materialize, _) = run_policy(tables, PipelinePolicy::MaterializeEachJoin);
                let (replan, replan_count) =
                    run_policy(tables, PipelinePolicy::MaterializeAndReplan);
                let (pipeline, _) = run_policy(tables, PipelinePolicy::FullyPipelined);
                Row {
                    query: name,
                    materialize,
                    replan,
                    replan_count,
                    pipeline,
                }
            })
            .collect()
    }

    /// Aggregate speedups over the workload (paper: replan ≈1.42× vs
    /// pipeline, ≈1.69× vs materialize).
    pub fn speedups(rows: &[Row]) -> (f64, f64) {
        let total =
            |f: fn(&Row) -> Duration| -> f64 { rows.iter().map(|r| f(r).as_secs_f64()).sum() };
        let replan = total(|r| r.replan);
        (
            total(|r| r.pipeline) / replan,
            total(|r| r.materialize) / replan,
        )
    }
}

/// §6.5: optimizer-state saving — replan-from-scratch vs saved state with
/// and without usage pointers.
pub mod exp65 {
    use super::*;
    use tukwila_opt::memo::EdgeSpec;
    use tukwila_opt::{Estimate, Memo};

    /// Results of one comparison at a given query size.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Number of relations.
        pub relations: usize,
        /// Mean re-optimization time, from scratch.
        pub scratch: Duration,
        /// Mean re-optimization time, saved state with usage pointers.
        pub with_pointers: Duration,
        /// Mean re-optimization time, saved state without pointers.
        pub without_pointers: Duration,
        /// Memo entries touched with pointers vs without (work counters).
        pub touched_with: usize,
        /// Entries touched without pointers.
        pub touched_without: usize,
    }

    fn chain_with_chords(n: usize) -> Vec<EdgeSpec> {
        let mut edges: Vec<EdgeSpec> = (0..n - 1)
            .map(|i| EdgeSpec {
                a: i,
                b: i + 1,
                selectivity: 0.002,
                a_col: format!("r{i}.k"),
                b_col: format!("r{}.k", i + 1),
            })
            .collect();
        // chords widen the search space (more connected subsets)
        for i in 0..n.saturating_sub(2) {
            edges.push(EdgeSpec {
                a: i,
                b: i + 2,
                selectivity: 0.004,
                a_col: format!("r{i}.c"),
                b_col: format!("r{}.c", i + 2),
            });
        }
        edges
    }

    fn leaves(n: usize) -> Vec<Estimate> {
        (0..n)
            .map(|i| Estimate {
                cost_ms: 10.0 + i as f64,
                card: 500.0 * (i + 1) as f64,
                tuple_bytes: 80.0,
            })
            .collect()
    }

    fn coster(l: &Estimate, r: &Estimate, out: f64) -> f64 {
        (l.card + r.card + out) * 0.001
    }

    /// Observed estimate for the completed first fragment ({r0, r1}).
    fn observed() -> Estimate {
        Estimate {
            cost_ms: 0.5,
            card: 40.0,
            tuple_bytes: 160.0,
        }
    }

    /// Measure the three strategies, `iters` iterations each. Saved-state
    /// strategies operate on pre-made clones so the timing covers only the
    /// re-optimization itself (a live system keeps its memo; cloning is a
    /// harness artifact).
    pub fn run(n: usize, iters: usize) -> Row {
        let base = Memo::build(leaves(n), chain_with_chords(n), &coster);
        let mask = 0b11;

        let time = |f: &mut dyn FnMut() -> Memo| {
            let started = std::time::Instant::now();
            let mut out = None;
            for _ in 0..iters {
                out = Some(f());
            }
            // keep the result alive so the work isn't optimized away
            assert!(out.unwrap().entry_count() > 0);
            started.elapsed() / iters as u32
        };
        let time_on_clones = |f: &mut dyn FnMut(Memo) -> Memo| {
            let clones: Vec<Memo> = (0..iters).map(|_| base.clone()).collect();
            let started = std::time::Instant::now();
            let mut out = None;
            for m in clones {
                out = Some(f(m));
            }
            assert!(out.unwrap().entry_count() > 0);
            started.elapsed() / iters as u32
        };

        // Scratch follows the paper's methodology exactly: "the query gets
        // smaller by one operation after each join" — the completed join
        // collapses into a single pseudo-leaf and the dynamic program is
        // rebuilt over n−1 relations.
        let scratch = time(&mut || {
            let mut collapsed_leaves = vec![observed()];
            collapsed_leaves.extend(leaves(n).into_iter().skip(2));
            let remap = |i: usize| i.saturating_sub(1);
            let collapsed_edges: Vec<EdgeSpec> = chain_with_chords(n)
                .into_iter()
                .filter(|e| !(e.a <= 1 && e.b <= 1))
                .map(|mut e| {
                    e.a = remap(e.a);
                    e.b = remap(e.b);
                    e
                })
                .collect();
            Memo::build(collapsed_leaves, collapsed_edges, &coster)
        });
        let mut touched_with = 0;
        let with_pointers = time_on_clones(&mut |mut m: Memo| {
            m.pin_materialized(mask, observed());
            m.update_with_pointers(mask, &coster);
            touched_with = m.stats.entries_computed + m.stats.entries_revalidated;
            m
        });
        let mut touched_without = 0;
        let without_pointers = time_on_clones(&mut |mut m: Memo| {
            m.pin_materialized(mask, observed());
            m.update_without_pointers(&coster);
            touched_without = m.stats.entries_computed + m.stats.entries_revalidated;
            m
        });
        Row {
            relations: n,
            scratch,
            with_pointers,
            without_pointers,
            touched_with,
            touched_without,
        }
    }
}

/// Build and run a single-fragment plan from a closure.
pub fn run_config(
    label: &str,
    registry: &SourceRegistry,
    build: impl FnOnce(&mut PlanBuilder) -> FragmentId,
) -> JoinRunResult {
    let mut b = PlanBuilder::new();
    let frag = build(&mut b);
    let plan: QueryPlan = b.build(frag);
    run_single_fragment(label, registry, &plan, frag)
}
