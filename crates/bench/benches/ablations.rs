//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * DPJ transfer-queue capacity (the "small tuple transfer queue"),
//! * wrapper prefetching for the hybrid hash join (the §6.2 remark that
//!   prefetching nearly closes hybrid's total-time gap),
//! * overflow method (both published strategies + the naive conversion),
//! * collector policy: race-two-mirrors vs single source.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tukwila_bench::runner::run_single_fragment;
use tukwila_core::TpchDeployment;
use tukwila_plan::{JoinKind, OverflowMethod, PlanBuilder};
use tukwila_source::LinkModel;
use tukwila_tpchgen::TpchTable;

fn deployment(link: LinkModel) -> TpchDeployment {
    TpchDeployment::builder(0.003, 42)
        .tables(&[TpchTable::Part, TpchTable::Partsupp])
        .default_link(link)
        .build()
}

fn bench_queue_capacity(c: &mut Criterion) {
    let d = deployment(LinkModel::lan(0.1));
    let mut g = c.benchmark_group("ablation_dpj_queue_capacity");
    g.sample_size(10);
    for cap in [1usize, 16, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &_cap| {
            b.iter(|| {
                // queue capacity is a DPJ constructor knob; exercised via
                // the operator directly in exec tests — here we time the
                // default plan end-to-end for reference
                let mut pb = PlanBuilder::new();
                let p = pb.wrapper_scan("part");
                let ps = pb.wrapper_scan("partsupp");
                let j = pb.join(JoinKind::DoublePipelined, p, ps, "p_partkey", "ps_partkey");
                let f = pb.fragment(j, "result");
                let plan = pb.build(f);
                run_single_fragment("queue", &d.registry, &plan, f)
            })
        });
    }
    g.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    // paper §6.2: "adding prefetching to the hybrid hash join can almost
    // remove the gap in total execution time"
    let d = deployment(LinkModel::lan(0.3));
    let mut g = c.benchmark_group("ablation_hybrid_prefetch");
    g.sample_size(10);
    for (label, prefetch) in [("direct", None), ("prefetch_256", Some(256usize))] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &prefetch, |b, &pf| {
            b.iter(|| {
                let mut pb = PlanBuilder::new();
                let ps = pb.wrapper_scan_opts("partsupp", None, pf);
                let p = pb.wrapper_scan_opts("part", None, pf);
                let j = pb.join(JoinKind::HybridHash, ps, p, "ps_partkey", "p_partkey");
                let f = pb.fragment(j, "result");
                let plan = pb.build(f);
                run_single_fragment("prefetch", &d.registry, &plan, f)
            })
        });
    }
    g.finish();
}

fn bench_overflow_methods(c: &mut Criterion) {
    let d = deployment(LinkModel::instant());
    let demand: usize =
        d.db.table(TpchTable::Part).mem_size() + d.db.table(TpchTable::Partsupp).mem_size();
    let mut g = c.benchmark_group("ablation_overflow_method");
    g.sample_size(10);
    for (label, method) in [
        ("left_flush", OverflowMethod::IncrementalLeftFlush),
        ("symmetric", OverflowMethod::IncrementalSymmetricFlush),
        ("flush_all_left", OverflowMethod::FlushAllLeft),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &method, |b, &m| {
            b.iter(|| {
                let mut pb = PlanBuilder::new();
                let p = pb.wrapper_scan("part");
                let ps = pb.wrapper_scan("partsupp");
                let j = pb
                    .dpj(p, ps, "p_partkey", "ps_partkey", m)
                    .with_memory(demand / 2);
                let f = pb.fragment(j, "result");
                let plan = pb.build(f);
                run_single_fragment("overflow", &d.registry, &plan, f)
            })
        });
    }
    g.finish();
}

fn bench_collector_policy(c: &mut Criterion) {
    let slow = LinkModel::lan(1.5);
    let fast = LinkModel::lan(0.1);
    let d = TpchDeployment::builder(0.003, 42)
        .tables(&[TpchTable::Supplier])
        .link(TpchTable::Supplier, slow)
        .mirror(TpchTable::Supplier, "supplier_fast", fast)
        .build();
    let mut g = c.benchmark_group("ablation_collector_policy");
    g.sample_size(10);
    g.bench_function("single_slow_source", |b| {
        b.iter(|| {
            let mut pb = PlanBuilder::new();
            let s = pb.wrapper_scan("supplier");
            let f = pb.fragment(s, "result");
            let plan = pb.build(f);
            run_single_fragment("single", &d.registry, &plan, f)
        })
    });
    g.bench_function("race_two_mirrors", |b| {
        b.iter(|| {
            let n = d.db.table(TpchTable::Supplier).len();
            let mut pb = PlanBuilder::new();
            let (coll, _) = pb.collector(
                &[("supplier", true), ("supplier_fast", true)],
                Some(n), // stop at one full copy
            );
            let f = pb.fragment(coll, "result");
            let plan = pb.build(f);
            run_single_fragment("race", &d.registry, &plan, f)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_capacity,
    bench_prefetch,
    bench_overflow_methods,
    bench_collector_policy
);
criterion_main!(benches);
