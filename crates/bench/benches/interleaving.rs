//! Criterion bench for Figure 5 (§6.4): the three interleaved-planning
//! strategies over the seven-query workload, plus the §6.2 join table.

use criterion::{criterion_group, criterion_main, Criterion};

use tukwila_bench::scenarios::{fig5, table62};

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_interleaved_planning");
    g.sample_size(10);
    g.bench_function("seven_queries_three_strategies", |b| {
        b.iter(|| {
            let rows = fig5::run(0.002, 30.0, 8 << 20);
            assert_eq!(rows.len(), 7);
            rows
        })
    });
    g.finish();
}

fn bench_table62(c: &mut Criterion) {
    let mut g = c.benchmark_group("table62_dpj_vs_hybrid");
    g.sample_size(10);
    g.bench_function("all_2_and_3_way_joins", |b| {
        b.iter(|| table62::run(0.002, 0.1))
    });
    g.finish();
}

criterion_group!(benches, bench_fig5, bench_table62);
criterion_main!(benches);
