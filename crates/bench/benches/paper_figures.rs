//! Criterion benches for the join-level figures: Figure 3a (LAN, DPJ vs
//! hybrid), Figure 3b (WAN), Figure 4 (overflow strategies). Reduced scale
//! so `cargo bench` stays quick; the `--bin` harnesses print the full
//! series.

use criterion::{criterion_group, criterion_main, Criterion};

use tukwila_bench::scenarios::{fig3a, fig3b, fig4};

fn bench_fig3a(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3a_lineitem_supplier_orders");
    g.sample_size(10);
    g.bench_function("all_configs", |b| {
        b.iter(|| {
            let results = fig3a::run(0.0008, 0.2);
            assert_eq!(results.len(), 3);
            results
        })
    });
    g.finish();
}

fn bench_fig3b(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3b_wide_area_partsupp_part");
    g.sample_size(10);
    g.bench_function("all_configs", |b| {
        b.iter(|| {
            let results = fig3b::run(0.002, 0.1);
            assert_eq!(results.len(), 6);
            results
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_overflow_strategies");
    g.sample_size(10);
    g.bench_function("all_budgets", |b| {
        b.iter(|| {
            let results = fig4::run(0.003);
            assert_eq!(results.len(), 5);
            results
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig3a, bench_fig3b, bench_fig4);
criterion_main!(benches);
