//! Batch-size amortization curve: the same 3-way double-pipelined join
//! pipeline at operator batch sizes 1, 64, and 1024.
//!
//! Batch size 1 is the old tuple-at-a-time engine (one virtual call and one
//! transfer-queue message per tuple at every operator edge); larger batches
//! amortize that overhead over whole blocks. Sources use instant links so
//! the measurement isolates engine overhead from (simulated) network time —
//! the regime where per-tuple dispatch and channel sends dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tukwila_bench::runner::run_single_fragment_in_env;
use tukwila_common::{tuple, DataType, Relation, Schema};
use tukwila_exec::ExecEnv;
use tukwila_plan::{JoinKind, PlanBuilder};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

/// `n` tuples `(i % dup, i)` under schema `name(k, v)`.
fn keyed(name: &str, n: i64, dup: i64) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for i in 0..n {
        r.push(tuple![i % dup.max(1), i]);
    }
    r
}

fn registry() -> SourceRegistry {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new(
        "A",
        keyed("a", 3_000, 200),
        LinkModel::instant(),
    ));
    reg.register(SimulatedSource::new(
        "B",
        keyed("b", 1_000, 200),
        LinkModel::instant(),
    ));
    reg.register(SimulatedSource::new(
        "C",
        keyed("c", 600, 200),
        LinkModel::instant(),
    ));
    reg
}

fn bench_batch_throughput(c: &mut Criterion) {
    let reg = registry();
    let mut g = c.benchmark_group("batch_throughput");
    g.sample_size(10);
    for bs in [1usize, 64, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| {
                let mut pb = PlanBuilder::new();
                let a = pb.wrapper_scan("A");
                let bb = pb.wrapper_scan("B");
                let cc = pb.wrapper_scan("C");
                let j1 = pb.join(JoinKind::DoublePipelined, a, bb, "k", "k");
                let top = pb.join(JoinKind::DoublePipelined, j1, cc, "a.k", "k");
                let f = pb.fragment(top, "result");
                let plan = pb.build(f);
                let env = ExecEnv::new(reg.clone()).with_batch_size(bs);
                let r = run_single_fragment_in_env("batch_throughput", env, &plan, f);
                assert_eq!(r.tuples, 45_000);
                r
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_batch_throughput);
criterion_main!(benches);
