//! Criterion bench for §6.5: re-optimization strategies over the saved
//! dynamic program — scratch vs usage pointers vs full-table revisit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use tukwila_bench::scenarios::exp65;
use tukwila_opt::memo::EdgeSpec;
use tukwila_opt::{Estimate, Memo};

fn edges(n: usize) -> Vec<EdgeSpec> {
    let mut e: Vec<EdgeSpec> = (0..n - 1)
        .map(|i| EdgeSpec {
            a: i,
            b: i + 1,
            selectivity: 0.002,
            a_col: format!("r{i}.k"),
            b_col: format!("r{}.k", i + 1),
        })
        .collect();
    for i in 0..n.saturating_sub(2) {
        e.push(EdgeSpec {
            a: i,
            b: i + 2,
            selectivity: 0.004,
            a_col: format!("r{i}.c"),
            b_col: format!("r{}.c", i + 2),
        });
    }
    e
}

fn leaves(n: usize) -> Vec<Estimate> {
    (0..n)
        .map(|i| Estimate {
            cost_ms: 10.0 + i as f64,
            card: 500.0 * (i + 1) as f64,
            tuple_bytes: 80.0,
        })
        .collect()
}

fn coster(l: &Estimate, r: &Estimate, out: f64) -> f64 {
    (l.card + r.card + out) * 0.001
}

fn observed() -> Estimate {
    Estimate {
        cost_ms: 0.5,
        card: 40.0,
        tuple_bytes: 160.0,
    }
}

fn bench_reopt_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp65_reoptimization");
    for n in [8usize, 10, 12] {
        let base = Memo::build(leaves(n), edges(n), &coster);
        g.bench_with_input(BenchmarkId::new("scratch", n), &n, |b, &n| {
            b.iter(|| Memo::build_with_pins(leaves(n), edges(n), vec![(0b11, observed())], &coster))
        });
        g.bench_with_input(BenchmarkId::new("saved_with_pointers", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                m.pin_materialized(0b11, observed());
                m.update_with_pointers(0b11, &coster);
                m
            })
        });
        g.bench_with_input(BenchmarkId::new("saved_no_pointers", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                m.pin_materialized(0b11, observed());
                m.update_without_pointers(&coster);
                m
            })
        });
    }
    g.finish();
}

fn bench_exp65_scenario(c: &mut Criterion) {
    // the packaged scenario used by the bin harness
    c.bench_function("exp65_row_n10", |b| b.iter(|| exp65::run(10, 1)));
}

criterion_group!(benches, bench_reopt_strategies, bench_exp65_scenario);
criterion_main!(benches);
