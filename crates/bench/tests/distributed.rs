//! Process-level distributed execution: a coordinator scattering an
//! exchange to real `dist_worker` child processes over TCP.
//!
//! Two guarantees are pinned here, beyond what the in-process loopback
//! tests in `tukwila-net` cover:
//!
//! * crossing a genuine process boundary (separate address spaces, the
//!   workload rebuilt from the worker's command line) changes nothing —
//!   the gathered union is multiset-equal to the local join;
//! * killing a worker mid-query surfaces as a `TukwilaError` at the
//!   coordinator — not a hang — and the dead shard's lease on the
//!   coordinator's memory governor is released.

use std::collections::HashMap;
use std::path::Path;
use std::time::{Duration, Instant};

use tukwila_bench::dist::{coordinator_env, dist_plan, run_local, run_plan, spawn_worker_process};
use tukwila_common::Tuple;

const WORKER_EXE: &str = env!("CARGO_BIN_EXE_dist_worker");

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

#[test]
fn process_workers_match_local_reference() {
    let (rows, dup, batch) = (2_000i64, 200i64, 256usize);
    let w1 = spawn_worker_process(Path::new(WORKER_EXE), rows, dup, Duration::ZERO)
        .expect("spawn worker 1");
    let w2 = spawn_worker_process(Path::new(WORKER_EXE), rows, dup, Duration::ZERO)
        .expect("spawn worker 2");
    let addrs = vec![w1.addr().to_string(), w2.addr().to_string()];

    let plan = dist_plan(2, None);
    let env = coordinator_env(&addrs, batch).expect("dial cluster");
    let got = run_plan(env, &plan).expect("distributed run");
    let gold = run_local(rows, dup, &plan, batch).expect("local reference run");
    assert_eq!(
        multiset(&got),
        multiset(&gold),
        "process-distributed result diverged from local ({} vs {} tuples)",
        got.len(),
        gold.len()
    );
}

#[test]
fn killed_worker_surfaces_error_and_frees_governor_memory() {
    // Paced sources stretch each shard to many seconds, so the kill lands
    // mid-query with certainty.
    let (rows, pace, batch) = (20_000i64, Duration::from_micros(300), 64usize);
    let w1 = spawn_worker_process(Path::new(WORKER_EXE), rows, rows, pace).expect("spawn worker 1");
    let mut w2 =
        spawn_worker_process(Path::new(WORKER_EXE), rows, rows, pace).expect("spawn worker 2");
    let addrs = vec![w1.addr().to_string(), w2.addr().to_string()];

    // The join budget gives every shard a lease on the coordinator's
    // governor; the dead shard's lease must come back.
    let plan = dist_plan(2, Some(64 * 1024));
    let env = coordinator_env(&addrs, batch).expect("dial cluster");
    let mem = env.memory.clone();

    let query = std::thread::spawn(move || run_plan(env, &plan));
    std::thread::sleep(Duration::from_millis(400));
    w2.kill();

    // The coordinator must notice the death promptly — a hang here is the
    // exact failure mode this test exists to catch.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !query.is_finished() {
        assert!(
            Instant::now() < deadline,
            "coordinator still blocked 30s after the worker died"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let err = query
        .join()
        .expect("query thread panicked")
        .expect_err("worker death must surface as an error, not a result");
    let msg = err.to_string();
    assert!(
        msg.contains("died mid-query") || msg.contains("net:"),
        "unexpected error for a killed worker: {msg}"
    );
    assert_eq!(
        mem.total_used(),
        0,
        "dead shard's governor lease was not released"
    );
}
