//! Bucket-granularity spill storage with exact I/O accounting.
//!
//! The paper's overflow analysis (§4.2.3) counts *tuples* moved to and from
//! disk: "we count tuples rather than blocks". [`IoStats`] mirrors that
//! model, so tests can check the implemented strategies against the derived
//! cost formulas, and the `overflow_io` bench regenerates the analysis.
//!
//! Two implementations:
//! * [`InMemorySpillStore`] — deterministic, allocation-only; the default in
//!   tests and benches (I/O *accounting* is identical to the file store).
//! * [`FileSpillStore`] — real temp files via the [`crate::codec`] binary
//!   codec; proves the overflow path works against an actual filesystem.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use tukwila_common::{Result, TukwilaError, Tuple, TupleBatch};

use crate::codec;

/// Tuple-level spill I/O counters (shared, thread-safe).
#[derive(Debug, Default)]
pub struct IoStats {
    tuples_written: AtomicUsize,
    tuples_read: AtomicUsize,
    bytes_written: AtomicUsize,
    bytes_read: AtomicUsize,
    flush_events: AtomicUsize,
}

impl IoStats {
    /// Tuples written to spill storage since creation.
    pub fn tuples_written(&self) -> usize {
        self.tuples_written.load(Ordering::Relaxed)
    }

    /// Tuples read back from spill storage.
    pub fn tuples_read(&self) -> usize {
        self.tuples_read.load(Ordering::Relaxed)
    }

    /// Bytes written (per the tuple memory model).
    pub fn bytes_written(&self) -> usize {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Bytes read back.
    pub fn bytes_read(&self) -> usize {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Number of distinct flush events (bucket evictions).
    pub fn flush_events(&self) -> usize {
        self.flush_events.load(Ordering::Relaxed)
    }

    /// Total tuple I/O operations — the unit of the paper's §4.2.3 cost
    /// analysis (one write + one read-back = 2 I/Os).
    pub fn total_tuple_io(&self) -> usize {
        self.tuples_written() + self.tuples_read()
    }

    /// Record a flush event (strategy-level, not per tuple).
    pub fn record_flush_event(&self) {
        self.flush_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Copyable point-in-time snapshot — subtract two to attribute spill
    /// I/O to one query when the store is shared across a fleet.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            tuples_written: self.tuples_written(),
            tuples_read: self.tuples_read(),
            bytes_written: self.bytes_written(),
            bytes_read: self.bytes_read(),
        }
    }

    fn record_write(&self, tuples: usize, bytes: usize) {
        self.tuples_written.fetch_add(tuples, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    fn record_read(&self, tuples: usize, bytes: usize) {
        self.tuples_read.fetch_add(tuples, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`IoStats`] counters. Subtracting a start-of-query
/// snapshot from an end-of-query one yields that query's own spill I/O even
/// when several queries share the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Tuples written to spill storage.
    pub tuples_written: usize,
    /// Tuples read back.
    pub tuples_read: usize,
    /// Bytes written.
    pub bytes_written: usize,
    /// Bytes read back.
    pub bytes_read: usize,
}

impl IoSnapshot {
    /// Counter-wise saturating difference (`self` later, `earlier` first).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            tuples_written: self.tuples_written.saturating_sub(earlier.tuples_written),
            tuples_read: self.tuples_read.saturating_sub(earlier.tuples_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
        }
    }
}

/// Handle to one spill bucket (an overflow file in the paper's terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpillBucket(u64);

/// Abstract spill storage: create buckets, append tuples, read them back.
///
/// All methods take `&self`; implementations are internally synchronized
/// because the double pipelined join's threads spill concurrently.
pub trait SpillStore: Send + Sync {
    /// Create a new, empty bucket. `label` is diagnostic only.
    fn create_bucket(&self, label: &str) -> SpillBucket;

    /// Append tuples to a bucket, counting writes.
    fn write(&self, bucket: SpillBucket, tuples: &[Tuple]) -> Result<()>;

    /// Append a whole batch to a bucket in one operation — the batched
    /// encode path; the batch's cached `mem_size` spares a per-tuple sum.
    fn write_batch(&self, bucket: SpillBucket, batch: &TupleBatch) -> Result<()> {
        self.write(bucket, batch.tuples())
    }

    /// Read the entire bucket back, counting reads.
    fn read_all(&self, bucket: SpillBucket) -> Result<Vec<Tuple>>;

    /// Read the entire bucket back as one batch.
    fn read_all_batch(&self, bucket: SpillBucket) -> Result<TupleBatch> {
        Ok(TupleBatch::from_tuples(self.read_all(bucket)?))
    }

    /// Number of tuples currently in the bucket.
    fn len(&self, bucket: SpillBucket) -> usize;

    /// Whether the bucket holds no tuples.
    fn is_empty(&self, bucket: SpillBucket) -> bool {
        self.len(bucket) == 0
    }

    /// Reclaim a bucket's storage. Reading a removed bucket errors;
    /// removing an unknown bucket is a no-op. Long-lived stores shared by
    /// a query fleet rely on this — see [`ScopedSpillStore`], which
    /// removes every bucket its query created when the query's
    /// environment is dropped.
    fn remove_bucket(&self, bucket: SpillBucket);

    /// Shared I/O counters.
    fn stats(&self) -> &Arc<IoStats>;
}

/// Deterministic in-memory spill store (accounting identical to the file
/// store; storage is a vector).
#[derive(Debug, Default)]
pub struct InMemorySpillStore {
    next_id: AtomicU64,
    buckets: Mutex<HashMap<u64, Vec<Tuple>>>,
    stats: Arc<IoStats>,
}

impl InMemorySpillStore {
    /// Fresh store.
    pub fn new() -> Self {
        Self {
            stats: Arc::new(IoStats::default()),
            ..Default::default()
        }
    }
}

impl SpillStore for InMemorySpillStore {
    fn create_bucket(&self, _label: &str) -> SpillBucket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.buckets.lock().insert(id, Vec::new());
        SpillBucket(id)
    }

    fn write(&self, bucket: SpillBucket, tuples: &[Tuple]) -> Result<()> {
        let bytes: usize = tuples.iter().map(Tuple::mem_size).sum();
        let mut guard = self.buckets.lock();
        let b = guard
            .get_mut(&bucket.0)
            .ok_or_else(|| TukwilaError::Internal(format!("unknown spill bucket {bucket:?}")))?;
        b.extend_from_slice(tuples);
        self.stats.record_write(tuples.len(), bytes);
        Ok(())
    }

    fn read_all(&self, bucket: SpillBucket) -> Result<Vec<Tuple>> {
        let guard = self.buckets.lock();
        let b = guard
            .get(&bucket.0)
            .ok_or_else(|| TukwilaError::Internal(format!("unknown spill bucket {bucket:?}")))?;
        let out = b.clone();
        let bytes: usize = out.iter().map(Tuple::mem_size).sum();
        self.stats.record_read(out.len(), bytes);
        Ok(out)
    }

    fn len(&self, bucket: SpillBucket) -> usize {
        self.buckets
            .lock()
            .get(&bucket.0)
            .map(Vec::len)
            .unwrap_or(0)
    }

    fn remove_bucket(&self, bucket: SpillBucket) {
        self.buckets.lock().remove(&bucket.0);
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

/// File-backed spill store writing length-prefixed binary tuples into a
/// private temp directory (removed on drop).
#[derive(Debug)]
pub struct FileSpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
    files: Mutex<HashMap<u64, (PathBuf, File, usize)>>,
    stats: Arc<IoStats>,
}

impl FileSpillStore {
    /// Create a store under the system temp directory.
    pub fn new() -> Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "tukwila-spill-{}-{:x}",
            std::process::id(),
            // unique per store within a process
            NEXT_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        Ok(FileSpillStore {
            dir,
            next_id: AtomicU64::new(0),
            files: Mutex::new(HashMap::new()),
            stats: Arc::new(IoStats::default()),
        })
    }

    /// Directory holding the spill files (diagnostics).
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    fn append_frame(
        &self,
        bucket: SpillBucket,
        buf: &[u8],
        tuples: usize,
        bytes: usize,
    ) -> Result<()> {
        let mut guard = self.files.lock();
        let (_, file, count) = guard
            .get_mut(&bucket.0)
            .ok_or_else(|| TukwilaError::Internal(format!("unknown spill bucket {bucket:?}")))?;
        file.write_all(buf)?;
        *count += tuples;
        self.stats.record_write(tuples, bytes);
        Ok(())
    }
}

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

impl Drop for FileSpillStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

impl SpillStore for FileSpillStore {
    fn create_bucket(&self, label: &str) -> SpillBucket {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let sanitized: String = label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = self.dir.join(format!("{id:06}-{sanitized}.spill"));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)
            .expect("spill file create");
        self.files.lock().insert(id, (path, file, 0));
        SpillBucket(id)
    }

    fn write(&self, bucket: SpillBucket, tuples: &[Tuple]) -> Result<()> {
        // One batch frame per write call: the whole block is encoded and
        // appended in a single I/O, and read back frame-by-frame.
        let mut buf = Vec::new();
        codec::encode_batch(tuples, &mut buf);
        let bytes: usize = tuples.iter().map(Tuple::mem_size).sum();
        self.append_frame(bucket, &buf, tuples.len(), bytes)
    }

    fn write_batch(&self, bucket: SpillBucket, batch: &TupleBatch) -> Result<()> {
        // Columnar batches spill as column-major frames (typed payload
        // vectors, no per-value tags); row batches take the row frame.
        let mut buf = Vec::new();
        codec::encode_batch_frame(batch, &mut buf);
        self.append_frame(bucket, &buf, batch.len(), batch.mem_size())
    }

    fn read_all(&self, bucket: SpillBucket) -> Result<Vec<Tuple>> {
        let path = {
            let guard = self.files.lock();
            let (path, _, _) = guard.get(&bucket.0).ok_or_else(|| {
                TukwilaError::Internal(format!("unknown spill bucket {bucket:?}"))
            })?;
            path.clone()
        };
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let mut tuples = Vec::new();
        let mut mem = 0usize;
        for batch in codec::decode_all_batches(&bytes)? {
            mem += batch.mem_size();
            tuples.extend(batch);
        }
        self.stats.record_read(tuples.len(), mem);
        Ok(tuples)
    }

    fn len(&self, bucket: SpillBucket) -> usize {
        self.files
            .lock()
            .get(&bucket.0)
            .map(|(_, _, n)| *n)
            .unwrap_or(0)
    }

    fn remove_bucket(&self, bucket: SpillBucket) {
        if let Some((path, file, _)) = self.files.lock().remove(&bucket.0) {
            drop(file);
            let _ = std::fs::remove_file(path);
        }
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

/// Decorator giving one consumer (a query in a concurrent fleet) its own
/// I/O counters over a shared backing store: operations delegate to
/// `inner` (whose global counters still advance) while this store's
/// `stats()` count only the traffic that went through *this* handle — the
/// exact per-query attribution `ExecutionStats` reports. Dropping the
/// scope reclaims every bucket created through it, so a long-running
/// service does not accumulate finished queries' overflow data.
pub struct ScopedSpillStore {
    inner: Arc<dyn SpillStore>,
    stats: Arc<IoStats>,
    created: Mutex<Vec<SpillBucket>>,
}

impl ScopedSpillStore {
    /// Wrap `inner` with fresh counters.
    pub fn new(inner: Arc<dyn SpillStore>) -> Self {
        ScopedSpillStore {
            inner,
            stats: Arc::new(IoStats::default()),
            created: Mutex::new(Vec::new()),
        }
    }
}

impl Drop for ScopedSpillStore {
    fn drop(&mut self) {
        for bucket in self.created.get_mut().drain(..) {
            self.inner.remove_bucket(bucket);
        }
    }
}

impl SpillStore for ScopedSpillStore {
    fn create_bucket(&self, label: &str) -> SpillBucket {
        let bucket = self.inner.create_bucket(label);
        self.created.lock().push(bucket);
        bucket
    }

    fn write(&self, bucket: SpillBucket, tuples: &[Tuple]) -> Result<()> {
        self.inner.write(bucket, tuples)?;
        let bytes: usize = tuples.iter().map(Tuple::mem_size).sum();
        self.stats.record_write(tuples.len(), bytes);
        Ok(())
    }

    fn write_batch(&self, bucket: SpillBucket, batch: &TupleBatch) -> Result<()> {
        self.inner.write_batch(bucket, batch)?;
        self.stats.record_write(batch.len(), batch.mem_size());
        Ok(())
    }

    fn read_all(&self, bucket: SpillBucket) -> Result<Vec<Tuple>> {
        let out = self.inner.read_all(bucket)?;
        let bytes: usize = out.iter().map(Tuple::mem_size).sum();
        self.stats.record_read(out.len(), bytes);
        Ok(out)
    }

    fn len(&self, bucket: SpillBucket) -> usize {
        self.inner.len(bucket)
    }

    fn remove_bucket(&self, bucket: SpillBucket) {
        self.created.lock().retain(|b| *b != bucket);
        self.inner.remove_bucket(bucket);
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

/// Decorator adding a per-tuple service time to spill I/O — models the
/// disk the paper's overflow files landed on (our in-memory store would
/// otherwise make overflow nearly free, hiding the §6.3/§6.4 costs).
pub struct ThrottledSpillStore {
    inner: Arc<dyn SpillStore>,
    write_per_tuple: std::time::Duration,
    read_per_tuple: std::time::Duration,
}

impl ThrottledSpillStore {
    /// Wrap `inner`, charging the given per-tuple service times.
    pub fn new(
        inner: Arc<dyn SpillStore>,
        write_per_tuple: std::time::Duration,
        read_per_tuple: std::time::Duration,
    ) -> Self {
        ThrottledSpillStore {
            inner,
            write_per_tuple,
            read_per_tuple,
        }
    }
}

impl SpillStore for ThrottledSpillStore {
    fn create_bucket(&self, label: &str) -> SpillBucket {
        self.inner.create_bucket(label)
    }

    fn write(&self, bucket: SpillBucket, tuples: &[Tuple]) -> Result<()> {
        if !self.write_per_tuple.is_zero() && !tuples.is_empty() {
            std::thread::sleep(self.write_per_tuple * tuples.len() as u32);
        }
        self.inner.write(bucket, tuples)
    }

    fn read_all(&self, bucket: SpillBucket) -> Result<Vec<Tuple>> {
        let out = self.inner.read_all(bucket)?;
        if !self.read_per_tuple.is_zero() && !out.is_empty() {
            std::thread::sleep(self.read_per_tuple * out.len() as u32);
        }
        Ok(out)
    }

    fn len(&self, bucket: SpillBucket) -> usize {
        self.inner.len(bucket)
    }

    fn remove_bucket(&self, bucket: SpillBucket) {
        self.inner.remove_bucket(bucket);
    }

    fn stats(&self) -> &Arc<IoStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::tuple;

    #[test]
    fn scoped_store_attributes_io_per_handle() {
        let shared: Arc<dyn SpillStore> = Arc::new(InMemorySpillStore::new());
        let a = ScopedSpillStore::new(shared.clone());
        let b = ScopedSpillStore::new(shared.clone());
        let ba = a.create_bucket("a");
        let bb = b.create_bucket("b");
        a.write(ba, &[tuple![1], tuple![2]]).unwrap();
        b.write(bb, &[tuple![3]]).unwrap();
        let _ = a.read_all(ba).unwrap();
        // Each scope sees only its own traffic...
        assert_eq!(a.stats().tuples_written(), 2);
        assert_eq!(a.stats().tuples_read(), 2);
        assert_eq!(b.stats().tuples_written(), 1);
        assert_eq!(b.stats().tuples_read(), 0);
        // ...while the shared store aggregates everything.
        assert_eq!(shared.stats().tuples_written(), 3);
        // Buckets live in the shared store: b can read a's bucket.
        assert_eq!(b.read_all(ba).unwrap().len(), 2);
    }

    #[test]
    fn scoped_store_reclaims_its_buckets_on_drop() {
        let shared: Arc<dyn SpillStore> = Arc::new(InMemorySpillStore::new());
        let survivor = shared.create_bucket("keep");
        shared.write(survivor, &[tuple![0]]).unwrap();
        let scoped_bucket = {
            let scoped = ScopedSpillStore::new(shared.clone());
            let b = scoped.create_bucket("q1");
            scoped.write(b, &[tuple![1], tuple![2]]).unwrap();
            assert_eq!(shared.len(b), 2);
            b
        }; // query done → its overflow data is reclaimed
           // The scope's bucket is gone; unrelated buckets survive.
        assert_eq!(shared.len(scoped_bucket), 0);
        assert!(shared.read_all(scoped_bucket).is_err());
        assert_eq!(shared.len(survivor), 1);
    }

    fn exercise(store: &dyn SpillStore) {
        let b1 = store.create_bucket("left-3");
        let b2 = store.create_bucket("right-3");
        assert!(store.is_empty(b1));

        store.write(b1, &[tuple![1, "a"], tuple![2, "b"]]).unwrap();
        store.write(b2, &[tuple![9]]).unwrap();
        store.write(b1, &[tuple![3, "c"]]).unwrap();

        assert_eq!(store.len(b1), 3);
        assert_eq!(store.len(b2), 1);
        assert_eq!(store.stats().tuples_written(), 4);

        let back = store.read_all(b1).unwrap();
        assert_eq!(back, vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "c"]]);
        assert_eq!(store.stats().tuples_read(), 3);
        assert_eq!(store.stats().total_tuple_io(), 7);
        assert!(store.stats().bytes_written() > 0);
    }

    #[test]
    fn in_memory_store_round_trip() {
        exercise(&InMemorySpillStore::new());
    }

    #[test]
    fn file_store_round_trip() {
        exercise(&FileSpillStore::new().unwrap());
    }

    #[test]
    fn file_store_cleans_up_dir() {
        let dir;
        {
            let store = FileSpillStore::new().unwrap();
            dir = store.dir().clone();
            store.create_bucket("x");
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp dir should be removed on drop");
    }

    #[test]
    fn both_stores_account_identically() {
        let mem = InMemorySpillStore::new();
        let file = FileSpillStore::new().unwrap();
        for store in [&mem as &dyn SpillStore, &file as &dyn SpillStore] {
            let b = store.create_bucket("acct");
            store
                .write(b, &[tuple![1, "payload"], tuple![2, "x"]])
                .unwrap();
            store.read_all(b).unwrap();
        }
        assert_eq!(mem.stats().tuples_written(), file.stats().tuples_written());
        assert_eq!(mem.stats().bytes_written(), file.stats().bytes_written());
        assert_eq!(mem.stats().tuples_read(), file.stats().tuples_read());
    }

    #[test]
    fn batch_write_and_read_round_trip() {
        for store in [
            &InMemorySpillStore::new() as &dyn SpillStore,
            &FileSpillStore::new().unwrap() as &dyn SpillStore,
        ] {
            let b = store.create_bucket("batch");
            let batch = TupleBatch::from_tuples(vec![tuple![1, "a"], tuple![2, "b"]]);
            store.write_batch(b, &batch).unwrap();
            store
                .write_batch(b, &TupleBatch::singleton(tuple![3]))
                .unwrap();
            assert_eq!(store.len(b), 3);
            let back = store.read_all_batch(b).unwrap();
            assert_eq!(back.tuples(), &[tuple![1, "a"], tuple![2, "b"], tuple![3]]);
            assert_eq!(store.stats().tuples_written(), 3);
            assert_eq!(store.stats().tuples_read(), 3);
        }
    }

    #[test]
    fn unknown_bucket_is_internal_error() {
        let store = InMemorySpillStore::new();
        let err = store.write(SpillBucket(99), &[tuple![1]]).unwrap_err();
        assert_eq!(err.kind(), "internal");
    }

    #[test]
    fn throttled_store_delays_and_delegates() {
        use std::time::{Duration, Instant};
        let inner = Arc::new(InMemorySpillStore::new());
        let store = ThrottledSpillStore::new(
            inner.clone(),
            Duration::from_micros(500),
            Duration::from_micros(500),
        );
        let b = store.create_bucket("t");
        let tuples: Vec<_> = (0..20i64).map(|i| tuple![i]).collect();
        let start = Instant::now();
        store.write(b, &tuples).unwrap();
        let back = store.read_all(b).unwrap();
        assert_eq!(back.len(), 20);
        assert!(
            start.elapsed() >= Duration::from_millis(18),
            "throttle must charge per-tuple time: {:?}",
            start.elapsed()
        );
        assert_eq!(inner.stats().tuples_written(), 20);
        assert_eq!(store.len(b), 20);
    }

    #[test]
    fn flush_events_counted() {
        let store = InMemorySpillStore::new();
        store.stats().record_flush_event();
        store.stats().record_flush_event();
        assert_eq!(store.stats().flush_events(), 2);
    }
}
