//! The engine's local store: named materialized tables.
//!
//! Fragment execution ends by materializing its result (§3.1); subsequent
//! fragments read those results with ordinary table scans, and the optimizer
//! treats them as base relations with *known* cardinality — that knowledge
//! is exactly what triggers re-optimization when it contradicts the
//! estimate.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use tukwila_common::{Relation, Result, TukwilaError};

/// Thread-safe named table store (cheap to clone; clones share state).
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    tables: Arc<RwLock<HashMap<String, Arc<Relation>>>>,
}

impl LocalStore {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Materialize `rel` under `name`, replacing any previous table of that
    /// name (re-optimization may re-run a fragment after rescheduling).
    pub fn put(&self, name: impl Into<String>, rel: Relation) -> Arc<Relation> {
        let rel = Arc::new(rel);
        self.tables.write().insert(name.into(), rel.clone());
        rel
    }

    /// Fetch a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Relation>> {
        self.tables.read().get(name).cloned().ok_or_else(|| {
            TukwilaError::Plan(format!("local store: no materialized table `{name}`"))
        })
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Cardinality of a stored table, if present — the statistic shipped
    /// back to the optimizer at fragment completion (§3.2).
    pub fn cardinality(&self, name: &str) -> Option<usize> {
        self.tables.read().get(name).map(|r| r.len())
    }

    /// Remove a table (fragment results are dropped once consumed if the
    /// plan says so).
    pub fn remove(&self, name: &str) -> Option<Arc<Relation>> {
        self.tables.write().remove(name)
    }

    /// Names of all stored tables (sorted, for determinism).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> usize {
        self.tables.read().values().map(|r| r.mem_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::{tuple, DataType, Schema};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("t", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    #[test]
    fn put_get_round_trip() {
        let store = LocalStore::new();
        store.put("frag1", rel(3));
        assert_eq!(store.get("frag1").unwrap().len(), 3);
        assert!(store.contains("frag1"));
        assert_eq!(store.cardinality("frag1"), Some(3));
    }

    #[test]
    fn missing_table_is_plan_error() {
        let store = LocalStore::new();
        assert_eq!(store.get("nope").unwrap_err().kind(), "plan");
        assert_eq!(store.cardinality("nope"), None);
    }

    #[test]
    fn replace_on_rerun() {
        let store = LocalStore::new();
        store.put("frag1", rel(3));
        store.put("frag1", rel(5));
        assert_eq!(store.get("frag1").unwrap().len(), 5);
    }

    #[test]
    fn clones_share_state() {
        let a = LocalStore::new();
        let b = a.clone();
        a.put("x", rel(1));
        assert!(b.contains("x"));
        b.remove("x");
        assert!(!a.contains("x"));
    }

    #[test]
    fn names_sorted() {
        let store = LocalStore::new();
        store.put("b", rel(1));
        store.put("a", rel(1));
        assert_eq!(store.names(), vec!["a".to_string(), "b".to_string()]);
        assert!(store.total_bytes() > 0);
    }
}
