//! # tukwila-storage
//!
//! Storage substrate for the Tukwila execution engine:
//!
//! * [`MemoryManager`] / [`MemoryReservation`] — per-operator memory budgets
//!   (§3.1.1 item 4: every physical operator carries a memory allocation; the
//!   `out_of_memory` event of §3.3 fires when a reservation is exhausted).
//! * [`SpillStore`] — bucket-granularity spill files used by the hybrid hash
//!   join and the double pipelined join's overflow strategies (§4.2.3), with
//!   exact tuple-level I/O accounting ([`IoStats`]) so the paper's analytical
//!   cost formulas can be checked deterministically.
//! * [`LocalStore`] — named materialized tables written at fragment
//!   boundaries (§3.1: "at the end of a fragment, pipelines terminate,
//!   results are materialized").
//! * [`codec`] — a compact binary tuple codec backing the file-based spill
//!   store.
//!
//! The paper's own engine used "a custom memory-management system optimized
//! for efficient space usage in creating hash tables" (§5); this crate plays
//! that role.

pub mod codec;
pub mod local;
pub mod memory;
pub mod spill;

pub use local::LocalStore;
pub use memory::{MemoryManager, MemoryReservation, MemoryUsage};
pub use spill::{
    FileSpillStore, InMemorySpillStore, IoSnapshot, IoStats, ScopedSpillStore, SpillBucket,
    SpillStore, ThrottledSpillStore,
};
