//! Per-operator memory budgets.
//!
//! Tukwila plans annotate every operator with a memory allocation (§3.1.1)
//! and the engine raises an `out_of_memory` event when a join exhausts it
//! (§3.3). The [`MemoryManager`] tracks a global pool; operators hold
//! [`MemoryReservation`]s that charge and release bytes against both their
//! own budget and the pool.
//!
//! Charging never blocks and never fails: operators *ask* whether they are
//! over budget and then run their overflow strategy — mirroring the paper's
//! lazy overflow resolution ("waiting until memory runs out before breaking
//! down the relations", §4.2.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Snapshot of a reservation's accounting, for stats reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Bytes currently charged.
    pub used: usize,
    /// Budget in bytes.
    pub budget: usize,
    /// High-water mark.
    pub peak: usize,
}

#[derive(Debug)]
struct ReservationInner {
    name: String,
    used: AtomicUsize,
    peak: AtomicUsize,
    budget: AtomicUsize,
    pool: Arc<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    used: AtomicUsize,
    peak: AtomicUsize,
    /// Pool-level budget in bytes; 0 means unlimited. Exceeding it puts
    /// every reservation in the pool [`MemoryReservation::under_pressure`].
    budget: AtomicUsize,
    /// Reservation in an enclosing pool that mirrors this pool's usage —
    /// the governor layering: a per-query pool parented to a per-query
    /// reservation on the fleet pool.
    parent: Option<MemoryReservation>,
    /// Weak handles so short-lived reservations (per-query grants in a
    /// long-running service) are reclaimed when their last clone drops;
    /// dead entries are pruned on the next registry access.
    registry: Mutex<Vec<std::sync::Weak<ReservationInner>>>,
}

/// A per-operator memory budget. Cloneable handle; all clones share the
/// accounting (the double pipelined join's child threads charge the same
/// reservation).
#[derive(Debug, Clone)]
pub struct MemoryReservation {
    inner: Arc<ReservationInner>,
}

impl MemoryReservation {
    /// Operator name this reservation belongs to.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Charge `bytes` to this reservation (and the global pool).
    pub fn charge(&self, bytes: usize) {
        let used = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        let pool_used = self.inner.pool.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.pool.peak.fetch_max(pool_used, Ordering::Relaxed);
        if let Some(parent) = &self.inner.pool.parent {
            parent.charge(bytes);
        }
    }

    /// Release `bytes` previously charged. Saturates at zero (releasing
    /// more than charged is an accounting bug surfaced by `debug_assert`),
    /// and only the amount actually held propagates to the pool and the
    /// parent chain — an over-release must not deflate a shared pool that
    /// still holds *other* reservations' live charges.
    pub fn release(&self, bytes: usize) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory accounting underflow");
        let actual = if prev < bytes {
            self.inner.used.store(0, Ordering::Relaxed);
            prev
        } else {
            bytes
        };
        let pool_prev = self.inner.pool.used.fetch_sub(actual, Ordering::Relaxed);
        if pool_prev < actual {
            self.inner.pool.used.store(0, Ordering::Relaxed);
        }
        if let Some(parent) = &self.inner.pool.parent {
            parent.release(actual);
        }
    }

    /// Whether the reservation is over its budget — the trigger for the
    /// `out_of_memory` event.
    pub fn over_budget(&self) -> bool {
        self.inner.used.load(Ordering::Relaxed) > self.inner.budget.load(Ordering::Relaxed)
    }

    /// Whether this reservation should shed memory *now*: it is over its
    /// own budget, its pool is over the pool budget, or an enclosing pool
    /// up the parent chain is — the memory governor's enforcement hook.
    /// Operators use this instead of [`MemoryReservation::over_budget`] so
    /// query-level and fleet-level pressure trigger the same overflow
    /// resolution as an operator-level overage.
    pub fn under_pressure(&self) -> bool {
        if self.over_budget() || self.inner.pool.over_budget() {
            return true;
        }
        match &self.inner.pool.parent {
            Some(parent) => parent.under_pressure(),
            None => false,
        }
    }

    /// Bytes that must be freed to get back under budget (0 if under).
    pub fn overage(&self) -> usize {
        self.inner
            .used
            .load(Ordering::Relaxed)
            .saturating_sub(self.inner.budget.load(Ordering::Relaxed))
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> MemoryUsage {
        MemoryUsage {
            used: self.inner.used.load(Ordering::Relaxed),
            budget: self.inner.budget.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
        }
    }

    /// Adjust the budget at runtime — the `alter a memory allotment` rule
    /// action (§3.1.2).
    pub fn set_budget(&self, budget: usize) {
        self.inner.budget.store(budget, Ordering::Relaxed);
    }

    /// Budget in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget.load(Ordering::Relaxed)
    }
}

impl PoolInner {
    fn over_budget(&self) -> bool {
        let budget = self.budget.load(Ordering::Relaxed);
        budget != 0 && self.used.load(Ordering::Relaxed) > budget
    }
}

/// The engine-wide memory pool from which operators reserve budgets.
#[derive(Debug, Clone, Default)]
pub struct MemoryManager {
    pool: Arc<PoolInner>,
}

impl MemoryManager {
    /// Fresh pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh pool whose usage is mirrored into `parent` — a reservation in
    /// an enclosing pool. This is how the service's memory governor layers
    /// per-query budgets over per-operator reservations: every charge in
    /// the query's pool also charges the query's grant on the fleet pool.
    pub fn with_parent(parent: MemoryReservation) -> Self {
        MemoryManager {
            pool: Arc::new(PoolInner {
                parent: Some(parent),
                ..Default::default()
            }),
        }
    }

    /// Set the pool-level budget in bytes (0 = unlimited). Exceeding it
    /// makes every reservation in this pool report
    /// [`MemoryReservation::under_pressure`].
    pub fn set_budget(&self, budget: usize) {
        self.pool.budget.store(budget, Ordering::Relaxed);
    }

    /// Builder-style [`MemoryManager::set_budget`].
    pub fn with_budget(self, budget: usize) -> Self {
        self.set_budget(budget);
        self
    }

    /// Pool-level budget (0 = unlimited).
    pub fn budget(&self) -> usize {
        self.pool.budget.load(Ordering::Relaxed)
    }

    /// Whether the pool as a whole exceeds its budget.
    pub fn over_budget(&self) -> bool {
        self.pool.over_budget()
    }

    /// Register an operator with a budget (bytes). The budget is advisory —
    /// the engine reacts to overflow adaptively rather than rejecting the
    /// charge, per the paper's model.
    pub fn register(&self, name: impl Into<String>, budget: usize) -> MemoryReservation {
        let inner = Arc::new(ReservationInner {
            name: name.into(),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            budget: AtomicUsize::new(budget),
            pool: self.pool.clone(),
        });
        let mut registry = self.pool.registry.lock();
        registry.retain(|w| w.strong_count() > 0);
        registry.push(Arc::downgrade(&inner));
        drop(registry);
        MemoryReservation { inner }
    }

    /// Total bytes currently charged across operators.
    pub fn total_used(&self) -> usize {
        self.pool.used.load(Ordering::Relaxed)
    }

    /// Pool high-water mark.
    pub fn peak_used(&self) -> usize {
        self.pool.peak.load(Ordering::Relaxed)
    }

    /// Usage of every registered reservation (name, usage), for the
    /// statistics the engine ships back to the optimizer (§3.2).
    pub fn per_operator(&self) -> Vec<(String, MemoryUsage)> {
        let mut registry = self.pool.registry.lock();
        registry.retain(|w| w.strong_count() > 0);
        registry
            .iter()
            .filter_map(std::sync::Weak::upgrade)
            .map(|r| {
                (
                    r.name.clone(),
                    MemoryUsage {
                        used: r.used.load(Ordering::Relaxed),
                        budget: r.budget.load(Ordering::Relaxed),
                        peak: r.peak.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn charge_release_cycle() {
        let mm = MemoryManager::new();
        let r = mm.register("join1", 100);
        r.charge(60);
        assert!(!r.over_budget());
        r.charge(60);
        assert!(r.over_budget());
        assert_eq!(r.overage(), 20);
        r.release(30);
        assert!(!r.over_budget());
        assert_eq!(r.usage().peak, 120);
        assert_eq!(mm.total_used(), 90);
    }

    #[test]
    fn pool_aggregates_reservations() {
        let mm = MemoryManager::new();
        let a = mm.register("a", 10);
        let b = mm.register("b", 10);
        a.charge(5);
        b.charge(7);
        assert_eq!(mm.total_used(), 12);
        assert_eq!(mm.peak_used(), 12);
        let per = mm.per_operator();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, "a");
        assert_eq!(per[0].1.used, 5);
    }

    #[test]
    fn set_budget_rule_action() {
        let mm = MemoryManager::new();
        let r = mm.register("dpj", 10);
        r.charge(15);
        assert!(r.over_budget());
        r.set_budget(20); // rule: alter memory allotment
        assert!(!r.over_budget());
        assert_eq!(r.budget(), 20);
    }

    #[test]
    fn concurrent_charges_are_consistent() {
        let mm = MemoryManager::new();
        let r = mm.register("dpj", 1_000_000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    r.charge(3);
                    r.release(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.usage().used, 8 * 1000 * 2);
        assert_eq!(mm.total_used(), 8 * 1000 * 2);
    }

    #[test]
    fn dropped_reservations_leave_the_registry() {
        let mm = MemoryManager::new();
        for i in 0..100 {
            let r = mm.register(format!("q{i}"), 10);
            r.charge(1);
            r.release(1);
        }
        // A service registering one grant per query must not accumulate
        // dead entries.
        assert!(mm.per_operator().is_empty());
        let live = mm.register("live", 10);
        assert_eq!(mm.per_operator().len(), 1);
        drop(live);
        assert!(mm.per_operator().is_empty());
    }

    #[cfg(not(debug_assertions))] // over-release debug_asserts; release-mode clamps
    #[test]
    fn over_release_does_not_deflate_shared_pools() {
        let fleet = MemoryManager::new();
        let other = fleet.register("other", 1000);
        other.charge(500);
        let grant = fleet.register("q", 400);
        let pool = MemoryManager::with_parent(grant.clone());
        let op = pool.register("op", 1000);
        op.charge(100);
        assert_eq!(fleet.total_used(), 600);
        op.release(150); // buggy over-release: only the 100 held may leave
        assert_eq!(op.usage().used, 0);
        assert_eq!(grant.usage().used, 0);
        assert_eq!(
            fleet.total_used(),
            500,
            "other reservations' charges must survive an over-release"
        );
    }

    #[test]
    fn pool_budget_creates_pressure() {
        let mm = MemoryManager::new().with_budget(100);
        let a = mm.register("a", 1_000); // generous operator budget
        let b = mm.register("b", 1_000);
        a.charge(60);
        b.charge(30);
        assert!(!a.under_pressure() && !b.under_pressure());
        b.charge(20); // pool total 110 > 100
        assert!(mm.over_budget());
        assert!(
            a.under_pressure(),
            "pool pressure reaches every reservation"
        );
        assert!(b.under_pressure());
        assert!(!a.over_budget(), "operator budgets themselves are fine");
        b.release(20);
        assert!(!a.under_pressure());
    }

    #[test]
    fn unlimited_pool_never_pressures() {
        let mm = MemoryManager::new();
        let r = mm.register("r", 10);
        r.charge(1_000_000);
        assert!(r.over_budget());
        assert!(!mm.over_budget(), "budget 0 means unlimited");
        r.release(1_000_000);
        assert!(!r.under_pressure());
    }

    #[test]
    fn parent_chain_mirrors_usage_and_pressure() {
        // fleet pool (total 100) ← query grant (budget 50) ← query pool
        let fleet = MemoryManager::new().with_budget(100);
        let grant = fleet.register("q1", 50);
        let query_pool = MemoryManager::with_parent(grant.clone()).with_budget(50);
        let op = query_pool.register("join", 1_000);

        op.charge(40);
        assert_eq!(fleet.total_used(), 40, "usage propagates to the fleet pool");
        assert_eq!(grant.usage().used, 40);
        assert!(!op.under_pressure());

        op.charge(20); // query pool 60 > 50
        assert!(op.under_pressure(), "query budget exceeded");
        op.release(60);
        assert_eq!(fleet.total_used(), 0);

        // fleet-level pressure reaches operators of an under-budget query
        let hog = fleet.register("q2", 200);
        hog.charge(150); // fleet 150 > 100
        op.charge(10);
        assert!(!op.over_budget() && !query_pool.over_budget());
        assert!(op.under_pressure(), "fleet pressure reaches every query");
        hog.release(150);
        assert!(!op.under_pressure());
    }

    #[test]
    fn clones_share_accounting() {
        let mm = MemoryManager::new();
        let r = mm.register("x", 10);
        let r2 = r.clone();
        r.charge(4);
        r2.charge(4);
        assert_eq!(r.usage().used, 8);
    }
}
