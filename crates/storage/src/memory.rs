//! Per-operator memory budgets.
//!
//! Tukwila plans annotate every operator with a memory allocation (§3.1.1)
//! and the engine raises an `out_of_memory` event when a join exhausts it
//! (§3.3). The [`MemoryManager`] tracks a global pool; operators hold
//! [`MemoryReservation`]s that charge and release bytes against both their
//! own budget and the pool.
//!
//! Charging never blocks and never fails: operators *ask* whether they are
//! over budget and then run their overflow strategy — mirroring the paper's
//! lazy overflow resolution ("waiting until memory runs out before breaking
//! down the relations", §4.2.1).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Snapshot of a reservation's accounting, for stats reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryUsage {
    /// Bytes currently charged.
    pub used: usize,
    /// Budget in bytes.
    pub budget: usize,
    /// High-water mark.
    pub peak: usize,
}

#[derive(Debug)]
struct ReservationInner {
    name: String,
    used: AtomicUsize,
    peak: AtomicUsize,
    budget: AtomicUsize,
    pool: Arc<PoolInner>,
}

#[derive(Debug, Default)]
struct PoolInner {
    used: AtomicUsize,
    peak: AtomicUsize,
    registry: Mutex<Vec<Arc<ReservationInner>>>,
}

/// A per-operator memory budget. Cloneable handle; all clones share the
/// accounting (the double pipelined join's child threads charge the same
/// reservation).
#[derive(Debug, Clone)]
pub struct MemoryReservation {
    inner: Arc<ReservationInner>,
}

impl MemoryReservation {
    /// Operator name this reservation belongs to.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Charge `bytes` to this reservation (and the global pool).
    pub fn charge(&self, bytes: usize) {
        let used = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(used, Ordering::Relaxed);
        let pool_used = self.inner.pool.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.pool.peak.fetch_max(pool_used, Ordering::Relaxed);
    }

    /// Release `bytes` previously charged. Saturates at zero (releasing more
    /// than charged is an accounting bug surfaced by `debug_assert`).
    pub fn release(&self, bytes: usize) {
        let prev = self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "memory accounting underflow");
        if prev < bytes {
            self.inner.used.store(0, Ordering::Relaxed);
        }
        let pool_prev = self.inner.pool.used.fetch_sub(bytes, Ordering::Relaxed);
        if pool_prev < bytes {
            self.inner.pool.used.store(0, Ordering::Relaxed);
        }
    }

    /// Whether the reservation is over its budget — the trigger for the
    /// `out_of_memory` event.
    pub fn over_budget(&self) -> bool {
        self.inner.used.load(Ordering::Relaxed) > self.inner.budget.load(Ordering::Relaxed)
    }

    /// Bytes that must be freed to get back under budget (0 if under).
    pub fn overage(&self) -> usize {
        self.inner
            .used
            .load(Ordering::Relaxed)
            .saturating_sub(self.inner.budget.load(Ordering::Relaxed))
    }

    /// Current usage snapshot.
    pub fn usage(&self) -> MemoryUsage {
        MemoryUsage {
            used: self.inner.used.load(Ordering::Relaxed),
            budget: self.inner.budget.load(Ordering::Relaxed),
            peak: self.inner.peak.load(Ordering::Relaxed),
        }
    }

    /// Adjust the budget at runtime — the `alter a memory allotment` rule
    /// action (§3.1.2).
    pub fn set_budget(&self, budget: usize) {
        self.inner.budget.store(budget, Ordering::Relaxed);
    }

    /// Budget in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget.load(Ordering::Relaxed)
    }
}

/// The engine-wide memory pool from which operators reserve budgets.
#[derive(Debug, Clone, Default)]
pub struct MemoryManager {
    pool: Arc<PoolInner>,
}

impl MemoryManager {
    /// Fresh pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an operator with a budget (bytes). The budget is advisory —
    /// the engine reacts to overflow adaptively rather than rejecting the
    /// charge, per the paper's model.
    pub fn register(&self, name: impl Into<String>, budget: usize) -> MemoryReservation {
        let inner = Arc::new(ReservationInner {
            name: name.into(),
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            budget: AtomicUsize::new(budget),
            pool: self.pool.clone(),
        });
        self.pool.registry.lock().push(inner.clone());
        MemoryReservation { inner }
    }

    /// Total bytes currently charged across operators.
    pub fn total_used(&self) -> usize {
        self.pool.used.load(Ordering::Relaxed)
    }

    /// Pool high-water mark.
    pub fn peak_used(&self) -> usize {
        self.pool.peak.load(Ordering::Relaxed)
    }

    /// Usage of every registered reservation (name, usage), for the
    /// statistics the engine ships back to the optimizer (§3.2).
    pub fn per_operator(&self) -> Vec<(String, MemoryUsage)> {
        self.pool
            .registry
            .lock()
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    MemoryUsage {
                        used: r.used.load(Ordering::Relaxed),
                        budget: r.budget.load(Ordering::Relaxed),
                        peak: r.peak.load(Ordering::Relaxed),
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn charge_release_cycle() {
        let mm = MemoryManager::new();
        let r = mm.register("join1", 100);
        r.charge(60);
        assert!(!r.over_budget());
        r.charge(60);
        assert!(r.over_budget());
        assert_eq!(r.overage(), 20);
        r.release(30);
        assert!(!r.over_budget());
        assert_eq!(r.usage().peak, 120);
        assert_eq!(mm.total_used(), 90);
    }

    #[test]
    fn pool_aggregates_reservations() {
        let mm = MemoryManager::new();
        let a = mm.register("a", 10);
        let b = mm.register("b", 10);
        a.charge(5);
        b.charge(7);
        assert_eq!(mm.total_used(), 12);
        assert_eq!(mm.peak_used(), 12);
        let per = mm.per_operator();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, "a");
        assert_eq!(per[0].1.used, 5);
    }

    #[test]
    fn set_budget_rule_action() {
        let mm = MemoryManager::new();
        let r = mm.register("dpj", 10);
        r.charge(15);
        assert!(r.over_budget());
        r.set_budget(20); // rule: alter memory allotment
        assert!(!r.over_budget());
        assert_eq!(r.budget(), 20);
    }

    #[test]
    fn concurrent_charges_are_consistent() {
        let mm = MemoryManager::new();
        let r = mm.register("dpj", 1_000_000);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    r.charge(3);
                    r.release(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.usage().used, 8 * 1000 * 2);
        assert_eq!(mm.total_used(), 8 * 1000 * 2);
    }

    #[test]
    fn clones_share_accounting() {
        let mm = MemoryManager::new();
        let r = mm.register("x", 10);
        let r2 = r.clone();
        r.charge(4);
        r2.charge(4);
        assert_eq!(r.usage().used, 8);
    }
}
