//! Compact binary tuple codec for the file-backed spill store.
//!
//! Length-prefixed, little-endian, self-describing per value. Only needs to
//! round-trip within one process lifetime (spill files never outlive a
//! query), so there is no versioning; there *is* strict validation because a
//! decode error means engine corruption and must not pass silently.
//!
//! Spill files are written and read at **batch** granularity: each write
//! appends one [`encode_batch`] frame (a tuple-count header followed by the
//! tuples), so a bucket read-back decodes whole batches instead of paying
//! per-tuple framing on the hot overflow path.

use std::sync::Arc;

use tukwila_common::{
    Bitmap, Column, ColumnarBatch, Result, TukwilaError, Tuple, TupleBatch, Value,
};

const TAG_INT: u8 = 0;
const TAG_DOUBLE: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_NULL: u8 = 4;

/// High bit of the batch-frame count word: set for columnar frames, clear
/// for row frames. Both frame kinds coexist in one spill file.
const COLS_FLAG: u32 = 1 << 31;

const COL_INT64: u8 = 0;
const COL_FLOAT64: u8 = 1;
const COL_STR: u8 = 2;
const COL_DATE: u8 = 3;
const COL_VALUES: u8 = 4;

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Null => out.push(TAG_NULL),
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = *pos + n;
    let slice = buf
        .get(*pos..end)
        .ok_or_else(|| TukwilaError::Io(format!("spill codec: truncated at byte {pos}")))?;
    *pos = end;
    Ok(slice)
}

/// Decode one value starting at `pos`, advancing `pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(
            take(buf, pos, 8)?.try_into().unwrap(),
        ))),
        TAG_DOUBLE => Ok(Value::Double(f64::from_le_bytes(
            take(buf, pos, 8)?.try_into().unwrap(),
        ))),
        TAG_STR => {
            let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
            let bytes = take(buf, pos, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| TukwilaError::Io(format!("spill codec: bad utf8: {e}")))?;
            Ok(Value::str(s))
        }
        TAG_DATE => Ok(Value::Date(i32::from_le_bytes(
            take(buf, pos, 4)?.try_into().unwrap(),
        ))),
        TAG_NULL => Ok(Value::Null),
        other => Err(TukwilaError::Io(format!(
            "spill codec: unknown value tag {other}"
        ))),
    }
}

/// Append the encoding of `t` (arity-prefixed) to `out`.
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(t.arity() as u32).to_le_bytes());
    for v in t.values() {
        encode_value(v, out);
    }
}

/// Decode one tuple starting at `pos`, advancing `pos`.
pub fn decode_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple> {
    let arity = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
    if arity > 1 << 20 {
        return Err(TukwilaError::Io(format!(
            "spill codec: implausible arity {arity}"
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf, pos)?);
    }
    Ok(Tuple::new(values))
}

/// Decode a whole buffer of concatenated tuples.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Tuple>> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode_tuple(buf, &mut pos)?);
    }
    Ok(out)
}

/// Append the encoding of a whole batch frame (tuple-count prefix + tuples)
/// to `out`.
pub fn encode_batch(tuples: &[Tuple], out: &mut Vec<u8>) {
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        encode_tuple(t, out);
    }
}

/// Append the encoding of `batch` in its natural representation: columnar
/// batches write a column-major frame (typed payload vectors, no per-value
/// tags); row batches write the row frame of [`encode_batch`].
pub fn encode_batch_frame(batch: &TupleBatch, out: &mut Vec<u8>) {
    match batch.columns() {
        Some(cols) => encode_columns(cols, out),
        None => encode_batch(batch.tuples(), out),
    }
}

fn encode_validity(validity: Option<&Bitmap>, len: usize, out: &mut Vec<u8>) {
    match validity {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            let mut byte = 0u8;
            for i in 0..len {
                if b.get(i) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if !len.is_multiple_of(8) {
                out.push(byte);
            }
        }
    }
}

fn decode_validity(buf: &[u8], pos: &mut usize, len: usize) -> Result<Option<Bitmap>> {
    match take(buf, pos, 1)?[0] {
        0 => Ok(None),
        1 => {
            let bytes = take(buf, pos, len.div_ceil(8))?;
            let mut b = Bitmap::all_clear(len);
            for i in 0..len {
                if bytes[i / 8] & (1 << (i % 8)) != 0 {
                    b.set(i);
                }
            }
            Ok(Some(b))
        }
        other => Err(TukwilaError::Io(format!(
            "spill codec: bad validity flag {other}"
        ))),
    }
}

fn encode_column(col: &Column, out: &mut Vec<u8>) {
    match col {
        Column::Int64(v, b) => {
            out.push(COL_INT64);
            encode_validity(b.as_ref(), v.len(), out);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Float64(v, b) => {
            out.push(COL_FLOAT64);
            encode_validity(b.as_ref(), v.len(), out);
            // Bit-exact: NaN payloads and -0.0 survive the round trip.
            for x in v {
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
        }
        Column::Str(v, b) => {
            out.push(COL_STR);
            encode_validity(b.as_ref(), v.len(), out);
            for s in v {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
        Column::Date(v, b) => {
            out.push(COL_DATE);
            encode_validity(b.as_ref(), v.len(), out);
            for x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        Column::Values(v) => {
            out.push(COL_VALUES);
            for x in v {
                encode_value(x, out);
            }
        }
    }
}

fn decode_column(buf: &[u8], pos: &mut usize, len: usize) -> Result<Column> {
    let kind = take(buf, pos, 1)?[0];
    if kind == COL_VALUES {
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(decode_value(buf, pos)?);
        }
        return Ok(Column::Values(v));
    }
    let validity = decode_validity(buf, pos, len)?;
    match kind {
        COL_INT64 => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(i64::from_le_bytes(take(buf, pos, 8)?.try_into().unwrap()));
            }
            Ok(Column::Int64(v, validity))
        }
        COL_FLOAT64 => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(f64::from_bits(u64::from_le_bytes(
                    take(buf, pos, 8)?.try_into().unwrap(),
                )));
            }
            Ok(Column::Float64(v, validity))
        }
        COL_STR => {
            let mut v: Vec<Arc<str>> = Vec::with_capacity(len);
            for _ in 0..len {
                let n = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
                let s = std::str::from_utf8(take(buf, pos, n)?)
                    .map_err(|e| TukwilaError::Io(format!("spill codec: bad utf8: {e}")))?;
                v.push(Arc::from(s));
            }
            Ok(Column::Str(v, validity))
        }
        COL_DATE => {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(i32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()));
            }
            Ok(Column::Date(v, validity))
        }
        other => Err(TukwilaError::Io(format!(
            "spill codec: unknown column kind {other}"
        ))),
    }
}

/// Exact on-wire size of one encoded column (kind tag + validity section +
/// typed payload), except `Values` columns where the per-value tags make an
/// exact count as expensive as encoding — those report a lower bound.
fn column_encoded_size(col: &Column) -> usize {
    fn validity_bytes(b: Option<&Bitmap>, len: usize) -> usize {
        match b {
            Some(_) => 1 + len.div_ceil(8),
            None => 1,
        }
    }
    match col {
        Column::Int64(v, b) => 1 + validity_bytes(b.as_ref(), v.len()) + v.len() * 8,
        Column::Float64(v, b) => 1 + validity_bytes(b.as_ref(), v.len()) + v.len() * 8,
        Column::Str(v, b) => {
            1 + validity_bytes(b.as_ref(), v.len()) + v.iter().map(|s| 4 + s.len()).sum::<usize>()
        }
        Column::Date(v, b) => 1 + validity_bytes(b.as_ref(), v.len()) + v.len() * 4,
        Column::Values(v) => 1 + v.len(),
    }
}

/// Size the write path should reserve before encoding `batch` as one frame
/// — exact for columnar batches of typed columns, a lower bound otherwise.
/// One up-front `reserve` replaces the doubling-reallocation chain that a
/// cold output buffer would go through while a frame streams in (the wire
/// and spill write paths encode thousands of frames per query).
pub fn batch_frame_size_hint(batch: &TupleBatch) -> usize {
    match batch.columns() {
        Some(cols) => {
            8 + (0..cols.num_cols())
                .map(|c| column_encoded_size(cols.col(c)))
                .sum::<usize>()
        }
        None => 4 + batch.len(),
    }
}

/// Append a column-major batch frame: count word with [`COLS_FLAG`] set,
/// column count, then each column (kind tag, validity bits, typed payload).
pub fn encode_columns(cols: &ColumnarBatch, out: &mut Vec<u8>) {
    let payload: usize = (0..cols.num_cols())
        .map(|c| column_encoded_size(cols.col(c)))
        .sum();
    out.reserve(8 + payload);
    out.extend_from_slice(&(cols.len() as u32 | COLS_FLAG).to_le_bytes());
    out.extend_from_slice(&(cols.num_cols() as u32).to_le_bytes());
    for c in 0..cols.num_cols() {
        encode_column(cols.col(c), out);
    }
}

/// Decode one batch frame starting at `pos`, advancing `pos`. Dispatches on
/// the count word's high bit: columnar frames decode straight into a
/// columnar [`TupleBatch`] (no row materialization), row frames as before.
pub fn decode_batch(buf: &[u8], pos: &mut usize) -> Result<TupleBatch> {
    let word = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap());
    let count = (word & !COLS_FLAG) as usize;
    if count > 1 << 26 {
        return Err(TukwilaError::Io(format!(
            "spill codec: implausible batch count {count}"
        )));
    }
    if word & COLS_FLAG != 0 {
        let ncols = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
        if ncols > 1 << 20 {
            return Err(TukwilaError::Io(format!(
                "spill codec: implausible column count {ncols}"
            )));
        }
        let mut cols = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            cols.push(decode_column(buf, pos, count)?);
        }
        return Ok(TupleBatch::from_columns(ColumnarBatch::new(count, cols)));
    }
    let mut batch = TupleBatch::with_capacity(count.max(1));
    for _ in 0..count {
        batch.push(decode_tuple(buf, pos)?);
    }
    Ok(batch)
}

/// Decode a whole buffer of concatenated batch frames.
pub fn decode_all_batches(buf: &[u8]) -> Result<Vec<TupleBatch>> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode_batch(buf, &mut pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tukwila_common::tuple;

    fn round_trip(t: &Tuple) -> Tuple {
        let mut buf = Vec::new();
        encode_tuple(t, &mut buf);
        let mut pos = 0;
        let back = decode_tuple(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn round_trips_all_types() {
        let t = Tuple::new(vec![
            Value::Int(-5),
            Value::Double(2.75),
            Value::str("tukwila"),
            Value::Date(9_000),
            Value::Null,
        ]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_tuple() {
        assert_eq!(round_trip(&Tuple::empty()), Tuple::empty());
    }

    #[test]
    fn decode_all_concatenated() {
        let mut buf = Vec::new();
        encode_tuple(&tuple![1, "a"], &mut buf);
        encode_tuple(&tuple![2, "b"], &mut buf);
        let ts = decode_all(&buf).unwrap();
        assert_eq!(ts, vec![tuple![1, "a"], tuple![2, "b"]]);
    }

    #[test]
    fn truncation_is_error_not_garbage() {
        let mut buf = Vec::new();
        encode_tuple(&tuple![1, "hello"], &mut buf);
        buf.truncate(buf.len() - 2);
        assert!(decode_all(&buf).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [1u32.to_le_bytes().to_vec(), vec![99u8]].concat();
        assert!(decode_all(&buf).is_err());
    }

    #[test]
    fn batch_frames_round_trip() {
        let mut buf = Vec::new();
        encode_batch(&[tuple![1, "a"], tuple![2, "b"]], &mut buf);
        encode_batch(&[], &mut buf);
        encode_batch(&[tuple![3]], &mut buf);
        let batches = decode_all_batches(&buf).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].tuples(), &[tuple![1, "a"], tuple![2, "b"]]);
        assert!(batches[1].is_empty());
        assert_eq!(batches[2].tuples(), &[tuple![3]]);
    }

    #[test]
    fn batch_decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode_batch(&[tuple![1, "hello"], tuple![2, "world"]], &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(decode_all_batches(&buf).is_err());
    }

    #[test]
    fn batch_decode_rejects_implausible_count() {
        let buf = (1u32 << 27).to_le_bytes().to_vec();
        assert!(decode_all_batches(&buf).is_err());
    }

    #[test]
    fn columnar_frame_round_trips_all_types() {
        let rows = vec![
            Tuple::new(vec![
                Value::Int(i64::MIN),
                Value::Double(-0.0),
                Value::str("a"),
                Value::Date(-1),
            ]),
            Tuple::new(vec![
                Value::Null,
                Value::Double(f64::NAN),
                Value::Null,
                Value::Null,
            ]),
            Tuple::new(vec![
                Value::Int(7),
                Value::Null,
                Value::str(""),
                Value::Date(9_000),
            ]),
        ];
        let cols = ColumnarBatch::from_rows(&rows);
        let mut buf = Vec::new();
        encode_columns(&cols, &mut buf);
        let mut pos = 0;
        let back = decode_batch(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        assert!(back.columns().is_some(), "decoded frame stays columnar");
        // NaN breaks Value equality; compare via bit-stable debug strings.
        assert_eq!(format!("{:?}", back.tuples()), format!("{rows:?}"));
    }

    #[test]
    fn columnar_and_row_frames_coexist_in_one_buffer() {
        let rows = vec![tuple![1, "a"], tuple![2, "b"]];
        let mut buf = Vec::new();
        encode_batch(&rows, &mut buf);
        encode_columns(&ColumnarBatch::from_rows(&rows), &mut buf);
        let batches = decode_all_batches(&buf).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].tuples(), batches[1].tuples());
    }

    #[test]
    fn columnar_frame_rejects_truncation() {
        let mut buf = Vec::new();
        encode_columns(&ColumnarBatch::from_rows(&[tuple![1, "hello"]]), &mut buf);
        buf.truncate(buf.len() - 2);
        assert!(decode_all_batches(&buf).is_err());
    }

    #[test]
    fn batch_frame_dispatches_on_representation() {
        let row_batch = TupleBatch::from_tuples(vec![tuple![1]]);
        let col_batch = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1]]));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_batch_frame(&row_batch, &mut a);
        encode_batch_frame(&col_batch, &mut b);
        let word_a = u32::from_le_bytes(a[..4].try_into().unwrap());
        let word_b = u32::from_le_bytes(b[..4].try_into().unwrap());
        assert_eq!(word_a & COLS_FLAG, 0);
        assert_ne!(word_b & COLS_FLAG, 0);
        let mut pos = 0;
        assert_eq!(decode_batch(&b, &mut pos).unwrap().tuples(), &[tuple![1]]);
    }

    proptest! {
        #[test]
        fn prop_columnar_round_trip(
            ints in proptest::collection::vec(
                prop_oneof![3 => any::<i64>().prop_map(Some), 1 => Just(None)], 1..40),
            strs in proptest::collection::vec(
                prop_oneof![3 => "\\PC{0,12}".prop_map(Some), 1 => Just(None)], 1..40),
        ) {
            let n = ints.len().min(strs.len());
            let rows: Vec<Tuple> = (0..n)
                .map(|i| {
                    Tuple::new(vec![
                        ints[i].map_or(Value::Null, Value::Int),
                        strs[i].as_deref().map_or(Value::Null, Value::str),
                    ])
                })
                .collect();
            let cols = ColumnarBatch::from_rows(&rows);
            let mut buf = Vec::new();
            encode_columns(&cols, &mut buf);
            let mut pos = 0;
            let back = decode_batch(&buf, &mut pos).unwrap();
            prop_assert_eq!(pos, buf.len());
            prop_assert_eq!(back.tuples(), &rows[..]);
        }
    }

    proptest! {
        #[test]
        fn prop_round_trip(ints in proptest::collection::vec(any::<i64>(), 0..6),
                           s in "\\PC{0,24}") {
            let mut vals: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            vals.push(Value::str(&s));
            vals.push(Value::Double(0.5));
            let t = Tuple::new(vals);
            prop_assert_eq!(round_trip(&t), t);
        }
    }
}
