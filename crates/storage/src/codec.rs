//! Compact binary tuple codec for the file-backed spill store.
//!
//! Length-prefixed, little-endian, self-describing per value. Only needs to
//! round-trip within one process lifetime (spill files never outlive a
//! query), so there is no versioning; there *is* strict validation because a
//! decode error means engine corruption and must not pass silently.
//!
//! Spill files are written and read at **batch** granularity: each write
//! appends one [`encode_batch`] frame (a tuple-count header followed by the
//! tuples), so a bucket read-back decodes whole batches instead of paying
//! per-tuple framing on the hot overflow path.

use tukwila_common::{Result, TukwilaError, Tuple, TupleBatch, Value};

const TAG_INT: u8 = 0;
const TAG_DOUBLE: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_DATE: u8 = 3;
const TAG_NULL: u8 = 4;

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Double(d) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Date(d) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Null => out.push(TAG_NULL),
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
    let end = *pos + n;
    let slice = buf
        .get(*pos..end)
        .ok_or_else(|| TukwilaError::Io(format!("spill codec: truncated at byte {pos}")))?;
    *pos = end;
    Ok(slice)
}

/// Decode one value starting at `pos`, advancing `pos`.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(
            take(buf, pos, 8)?.try_into().unwrap(),
        ))),
        TAG_DOUBLE => Ok(Value::Double(f64::from_le_bytes(
            take(buf, pos, 8)?.try_into().unwrap(),
        ))),
        TAG_STR => {
            let len = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
            let bytes = take(buf, pos, len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|e| TukwilaError::Io(format!("spill codec: bad utf8: {e}")))?;
            Ok(Value::str(s))
        }
        TAG_DATE => Ok(Value::Date(i32::from_le_bytes(
            take(buf, pos, 4)?.try_into().unwrap(),
        ))),
        TAG_NULL => Ok(Value::Null),
        other => Err(TukwilaError::Io(format!(
            "spill codec: unknown value tag {other}"
        ))),
    }
}

/// Append the encoding of `t` (arity-prefixed) to `out`.
pub fn encode_tuple(t: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(t.arity() as u32).to_le_bytes());
    for v in t.values() {
        encode_value(v, out);
    }
}

/// Decode one tuple starting at `pos`, advancing `pos`.
pub fn decode_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple> {
    let arity = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
    if arity > 1 << 20 {
        return Err(TukwilaError::Io(format!(
            "spill codec: implausible arity {arity}"
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf, pos)?);
    }
    Ok(Tuple::new(values))
}

/// Decode a whole buffer of concatenated tuples.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Tuple>> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode_tuple(buf, &mut pos)?);
    }
    Ok(out)
}

/// Append the encoding of a whole batch frame (tuple-count prefix + tuples)
/// to `out`.
pub fn encode_batch(tuples: &[Tuple], out: &mut Vec<u8>) {
    out.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        encode_tuple(t, out);
    }
}

/// Decode one batch frame starting at `pos`, advancing `pos`.
pub fn decode_batch(buf: &[u8], pos: &mut usize) -> Result<TupleBatch> {
    let count = u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()) as usize;
    if count > 1 << 26 {
        return Err(TukwilaError::Io(format!(
            "spill codec: implausible batch count {count}"
        )));
    }
    let mut batch = TupleBatch::with_capacity(count.max(1));
    for _ in 0..count {
        batch.push(decode_tuple(buf, pos)?);
    }
    Ok(batch)
}

/// Decode a whole buffer of concatenated batch frames.
pub fn decode_all_batches(buf: &[u8]) -> Result<Vec<TupleBatch>> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode_batch(buf, &mut pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tukwila_common::tuple;

    fn round_trip(t: &Tuple) -> Tuple {
        let mut buf = Vec::new();
        encode_tuple(t, &mut buf);
        let mut pos = 0;
        let back = decode_tuple(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len());
        back
    }

    #[test]
    fn round_trips_all_types() {
        let t = Tuple::new(vec![
            Value::Int(-5),
            Value::Double(2.75),
            Value::str("tukwila"),
            Value::Date(9_000),
            Value::Null,
        ]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_tuple() {
        assert_eq!(round_trip(&Tuple::empty()), Tuple::empty());
    }

    #[test]
    fn decode_all_concatenated() {
        let mut buf = Vec::new();
        encode_tuple(&tuple![1, "a"], &mut buf);
        encode_tuple(&tuple![2, "b"], &mut buf);
        let ts = decode_all(&buf).unwrap();
        assert_eq!(ts, vec![tuple![1, "a"], tuple![2, "b"]]);
    }

    #[test]
    fn truncation_is_error_not_garbage() {
        let mut buf = Vec::new();
        encode_tuple(&tuple![1, "hello"], &mut buf);
        buf.truncate(buf.len() - 2);
        assert!(decode_all(&buf).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [1u32.to_le_bytes().to_vec(), vec![99u8]].concat();
        assert!(decode_all(&buf).is_err());
    }

    #[test]
    fn batch_frames_round_trip() {
        let mut buf = Vec::new();
        encode_batch(&[tuple![1, "a"], tuple![2, "b"]], &mut buf);
        encode_batch(&[], &mut buf);
        encode_batch(&[tuple![3]], &mut buf);
        let batches = decode_all_batches(&buf).unwrap();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].tuples(), &[tuple![1, "a"], tuple![2, "b"]]);
        assert!(batches[1].is_empty());
        assert_eq!(batches[2].tuples(), &[tuple![3]]);
    }

    #[test]
    fn batch_decode_rejects_truncation() {
        let mut buf = Vec::new();
        encode_batch(&[tuple![1, "hello"], tuple![2, "world"]], &mut buf);
        buf.truncate(buf.len() - 3);
        assert!(decode_all_batches(&buf).is_err());
    }

    #[test]
    fn batch_decode_rejects_implausible_count() {
        let buf = (1u32 << 27).to_le_bytes().to_vec();
        assert!(decode_all_batches(&buf).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip(ints in proptest::collection::vec(any::<i64>(), 0..6),
                           s in "\\PC{0,24}") {
            let mut vals: Vec<Value> = ints.into_iter().map(Value::Int).collect();
            vals.push(Value::str(&s));
            vals.push(Value::Double(0.5));
            let t = Tuple::new(vals);
            prop_assert_eq!(round_trip(&t), t);
        }
    }
}
