//! Batches of tuples — the unit of data flow between operators.
//!
//! The iterator model moves one tuple per virtual call; every hot path then
//! pays dynamic dispatch, channel synchronization, and statistics updates
//! *per tuple*. A [`TupleBatch`] amortizes all three: operators exchange
//! blocks of tuples sharing one schema, sized by the engine's configured
//! batch capacity (ADQUEX-style block routing — adaptivity decides *where*
//! tuples go, batching decides *how many* move per decision).
//!
//! Invariants relied on across the engine:
//! * every batch handed between operators is **non-empty** (end of stream
//!   is signalled out-of-band by `Option::None`);
//! * all tuples in a batch share the producing operator's output schema;
//! * [`TupleBatch::mem_size`] is maintained incrementally, so charging a
//!   whole batch to a memory reservation is O(1), not O(len).

use std::fmt;

use crate::tuple::Tuple;

/// Default number of tuples per batch when the engine is not configured
/// otherwise. Large enough to amortize per-batch overhead, small enough to
/// keep time-to-first-output and rule-reaction latency low.
pub const DEFAULT_BATCH_CAPACITY: usize = 256;

/// A block of tuples sharing one schema, with cached memory accounting.
#[derive(Clone)]
pub struct TupleBatch {
    tuples: Vec<Tuple>,
    mem_size: usize,
    capacity: usize,
}

/// Equality is over the tuples only: `capacity` is a producer hint and
/// `mem_size` is derived, so batches with the same content compare equal
/// regardless of how they were built.
impl PartialEq for TupleBatch {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for TupleBatch {}

impl TupleBatch {
    /// An empty batch with the default target capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BATCH_CAPACITY)
    }

    /// An empty batch that [`TupleBatch::is_full`] at `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TupleBatch {
            tuples: Vec::with_capacity(cap.min(4096)),
            mem_size: 0,
            capacity: cap,
        }
    }

    /// Wrap an existing vector of tuples (capacity = its length).
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let mem_size = tuples.iter().map(Tuple::mem_size).sum();
        let capacity = tuples.len().max(1);
        TupleBatch {
            tuples,
            mem_size,
            capacity,
        }
    }

    /// A batch holding exactly one tuple.
    pub fn singleton(t: Tuple) -> Self {
        let mem_size = t.mem_size();
        TupleBatch {
            tuples: vec![t],
            mem_size,
            capacity: 1,
        }
    }

    /// Append a tuple, updating the cached memory size.
    pub fn push(&mut self, t: Tuple) {
        self.mem_size += t.mem_size();
        self.tuples.push(t);
    }

    /// Append every tuple of `iter`.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }

    /// Keep only the first `n` tuples (quota enforcement), releasing the
    /// rest from the cached memory size.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.tuples.len() {
            return;
        }
        let dropped: usize = self.tuples[n..].iter().map(Tuple::mem_size).sum();
        self.mem_size -= dropped;
        self.tuples.truncate(n);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Target capacity (producers stop filling at this size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the batch has reached its target capacity.
    pub fn is_full(&self) -> bool {
        self.tuples.len() >= self.capacity
    }

    /// Approximate resident memory of all tuples in the batch, maintained
    /// incrementally on `push`/`truncate`.
    pub fn mem_size(&self) -> usize {
        self.mem_size
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Checked tuple accessor.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx)
    }

    /// Iterate the tuples by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Consume the batch, yielding its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Move up to `max` tuples off the front of a deque into a new batch —
    /// the shared drain for operators that buffer pending output (double
    /// pipelined join, hash join, dependent join). Returns an empty batch
    /// if the deque is empty.
    pub fn fill_from_deque(pending: &mut std::collections::VecDeque<Tuple>, max: usize) -> Self {
        let take = max.max(1).min(pending.len());
        let mut batch = TupleBatch::with_capacity(take.max(1));
        for _ in 0..take {
            match pending.pop_front() {
                Some(t) => batch.push(t),
                None => break,
            }
        }
        batch
    }
}

impl Default for TupleBatch {
    fn default() -> Self {
        TupleBatch::new()
    }
}

impl fmt::Debug for TupleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleBatch")
            .field("len", &self.tuples.len())
            .field("mem_size", &self.mem_size)
            .finish()
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        TupleBatch::from_tuples(iter.into_iter().collect())
    }
}

/// Accumulates tuples and emits full batches — the producer-side API for
/// sources and operators that generate tuples one at a time but hand them
/// downstream in blocks.
pub struct BatchBuilder {
    capacity: usize,
    batch: TupleBatch,
}

impl BatchBuilder {
    /// Builder emitting batches of `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        BatchBuilder {
            capacity: cap,
            batch: TupleBatch::with_capacity(cap),
        }
    }

    /// Add a tuple; returns the finished batch once it reaches capacity.
    pub fn push(&mut self, t: Tuple) -> Option<TupleBatch> {
        self.batch.push(t);
        if self.batch.is_full() {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        } else {
            None
        }
    }

    /// Tuples currently buffered.
    pub fn buffered(&self) -> usize {
        self.batch.len()
    }

    /// Emit whatever is buffered (possibly short), or `None` if empty.
    pub fn finish(self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(self.batch)
        }
    }

    /// Emit the buffered partial batch without consuming the builder.
    pub fn take_partial(&mut self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn push_and_access() {
        let mut b = TupleBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(tuple![1, "a"]);
        b.push(tuple![2, "b"]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_full());
        assert_eq!(b.get(0), Some(&tuple![1, "a"]));
        assert_eq!(b.get(2), None);
        assert_eq!(b.tuples().len(), 2);
    }

    #[test]
    fn mem_size_tracks_incrementally() {
        let mut b = TupleBatch::new();
        assert_eq!(b.mem_size(), 0);
        let t = tuple![1, "payload string"];
        let expect = t.mem_size();
        b.push(t.clone());
        assert_eq!(b.mem_size(), expect);
        b.push(t);
        assert_eq!(b.mem_size(), 2 * expect);
        // matches a fresh sum over the contents
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    #[test]
    fn truncate_releases_memory() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3]]);
        let one = tuple![1].mem_size();
        b.truncate(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.mem_size(), one);
        b.truncate(5); // no-op past the end
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_and_fullness() {
        let mut b = TupleBatch::with_capacity(2);
        assert_eq!(b.capacity(), 2);
        b.push(tuple![1]);
        assert!(!b.is_full());
        b.push(tuple![2]);
        assert!(b.is_full());
    }

    #[test]
    fn zero_capacity_clamped() {
        let b = TupleBatch::with_capacity(0);
        assert_eq!(b.capacity(), 1);
        let builder = BatchBuilder::new(0);
        assert_eq!(builder.capacity, 1);
    }

    #[test]
    fn iteration_by_ref_and_value() {
        let b = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let by_ref: Vec<i64> = b.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(by_ref, vec![1, 2]);
        let by_val: Vec<Tuple> = b.into_iter().collect();
        assert_eq!(by_val, vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn from_iterator_collects() {
        let b: TupleBatch = (0..3i64).map(|i| tuple![i]).collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn builder_emits_at_capacity() {
        let mut builder = BatchBuilder::new(3);
        assert!(builder.push(tuple![1]).is_none());
        assert!(builder.push(tuple![2]).is_none());
        let full = builder.push(tuple![3]).expect("full at capacity");
        assert_eq!(full.len(), 3);
        assert_eq!(builder.buffered(), 0);
        assert!(builder.push(tuple![4]).is_none());
        let rest = builder.finish().expect("partial batch");
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn builder_finish_empty_is_none() {
        assert!(BatchBuilder::new(8).finish().is_none());
        let mut b = BatchBuilder::new(8);
        assert!(b.take_partial().is_none());
        b.push(tuple![1]);
        assert_eq!(b.take_partial().map(|x| x.len()), Some(1));
        assert!(b.take_partial().is_none());
    }

    #[test]
    fn fill_from_deque_caps_and_preserves_order() {
        let mut pending: std::collections::VecDeque<Tuple> = (0..5i64).map(|i| tuple![i]).collect();
        let first = TupleBatch::fill_from_deque(&mut pending, 3);
        assert_eq!(first.tuples(), &[tuple![0], tuple![1], tuple![2]]);
        let rest = TupleBatch::fill_from_deque(&mut pending, 3);
        assert_eq!(rest.len(), 2);
        assert!(TupleBatch::fill_from_deque(&mut pending, 3).is_empty());
    }

    #[test]
    fn equality_ignores_capacity_and_provenance() {
        let a = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let mut b = TupleBatch::with_capacity(64);
        b.push(tuple![1]);
        b.push(tuple![2]);
        assert_eq!(a, b);
        b.push(tuple![3]);
        assert_ne!(a, b);
    }

    #[test]
    fn singleton_batch() {
        let b = TupleBatch::singleton(tuple![7]);
        assert_eq!(b.len(), 1);
        assert!(b.is_full());
        assert_eq!(b.mem_size(), tuple![7].mem_size());
    }
}
