//! Batches of tuples — the unit of data flow between operators.
//!
//! The iterator model moves one tuple per virtual call; every hot path then
//! pays dynamic dispatch, channel synchronization, and statistics updates
//! *per tuple*. A [`TupleBatch`] amortizes all three: operators exchange
//! blocks of tuples sharing one schema, sized by the engine's configured
//! batch capacity (ADQUEX-style block routing — adaptivity decides *where*
//! tuples go, batching decides *how many* move per decision).
//!
//! Invariants relied on across the engine:
//! * every batch handed between operators is **non-empty** (end of stream
//!   is signalled out-of-band by `Option::None`);
//! * all tuples in a batch share the producing operator's output schema;
//! * [`TupleBatch::mem_size`] is maintained incrementally for
//!   producer-built batches (charging a whole source batch to a memory
//!   reservation is O(1)); batches assembled by the join emit path defer
//!   accounting until someone asks.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::Value;

/// Default number of tuples per batch when the engine is not configured
/// otherwise. Large enough to amortize per-batch overhead, small enough to
/// keep time-to-first-output and rule-reaction latency low.
pub const DEFAULT_BATCH_CAPACITY: usize = 256;

/// Memory accounting state of a [`TupleBatch`]: maintained incrementally
/// for producer-built batches, deferred for assembled output blocks (whose
/// `mem_size` is rarely read — computing it eagerly would put a full value
/// walk on every join's emit path).
#[derive(Clone, Copy, Debug)]
enum MemSize {
    /// Exact cached size, updated on `push`/`truncate`.
    Exact(usize),
    /// Not yet computed; `mem_size()` walks the tuples on demand.
    Lazy,
}

/// A block of tuples sharing one schema, with cached memory accounting.
#[derive(Clone)]
pub struct TupleBatch {
    tuples: Vec<Tuple>,
    mem_size: MemSize,
    capacity: usize,
}

/// Equality is over the tuples only: `capacity` is a producer hint and
/// `mem_size` is derived, so batches with the same content compare equal
/// regardless of how they were built.
impl PartialEq for TupleBatch {
    fn eq(&self, other: &Self) -> bool {
        self.tuples == other.tuples
    }
}

impl Eq for TupleBatch {}

impl TupleBatch {
    /// An empty batch with the default target capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BATCH_CAPACITY)
    }

    /// An empty batch that [`TupleBatch::is_full`] at `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TupleBatch {
            tuples: Vec::with_capacity(cap.min(4096)),
            mem_size: MemSize::Exact(0),
            capacity: cap,
        }
    }

    /// Wrap an existing vector of tuples (capacity = its length).
    /// Accounting is deferred: `mem_size()` walks on demand.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let capacity = tuples.len().max(1);
        TupleBatch {
            tuples,
            mem_size: MemSize::Lazy,
            capacity,
        }
    }

    /// Assemble from sealed parts with deferred accounting — putting a
    /// full value walk on every sealed block would tax the join emit path
    /// for a size that is rarely read.
    pub(crate) fn from_parts(tuples: Vec<Tuple>, capacity: usize) -> Self {
        TupleBatch {
            tuples,
            mem_size: MemSize::Lazy,
            capacity: capacity.max(1),
        }
    }

    /// Keep only tuples matching `pred`, in place, updating the cached
    /// memory size — the batch-native filter primitive (no new buffer when
    /// nothing is dropped).
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        match &mut self.mem_size {
            MemSize::Exact(m) => {
                self.tuples.retain(|t| {
                    let keep = pred(t);
                    if !keep {
                        *m -= t.mem_size();
                    }
                    keep
                });
            }
            MemSize::Lazy => self.tuples.retain(|t| pred(t)),
        }
    }

    /// A batch holding exactly one tuple.
    pub fn singleton(t: Tuple) -> Self {
        let mem_size = MemSize::Exact(t.mem_size());
        TupleBatch {
            tuples: vec![t],
            mem_size,
            capacity: 1,
        }
    }

    /// Append a tuple, updating the cached memory size (when exact).
    pub fn push(&mut self, t: Tuple) {
        if let MemSize::Exact(m) = &mut self.mem_size {
            *m += t.mem_size();
        }
        self.tuples.push(t);
    }

    /// Append every tuple of `iter`.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }

    /// Keep only the first `n` tuples (quota enforcement), releasing the
    /// rest from the cached memory size.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.tuples.len() {
            return;
        }
        if let MemSize::Exact(m) = &mut self.mem_size {
            *m -= self.tuples[n..].iter().map(Tuple::mem_size).sum::<usize>();
        }
        self.tuples.truncate(n);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Target capacity (producers stop filling at this size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the batch has reached its target capacity.
    pub fn is_full(&self) -> bool {
        self.tuples.len() >= self.capacity
    }

    /// Approximate resident memory of all tuples in the batch: maintained
    /// incrementally on `push`/`truncate` for producer-built batches,
    /// computed on demand for assembled blocks.
    pub fn mem_size(&self) -> usize {
        match self.mem_size {
            MemSize::Exact(m) => m,
            MemSize::Lazy => self.tuples.iter().map(Tuple::mem_size).sum(),
        }
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Checked tuple accessor.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples.get(idx)
    }

    /// Iterate the tuples by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Consume the batch, yielding its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }
}

impl Default for TupleBatch {
    fn default() -> Self {
        TupleBatch::new()
    }
}

impl fmt::Debug for TupleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TupleBatch")
            .field("len", &self.tuples.len())
            .field("mem_size", &self.mem_size)
            .finish()
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        TupleBatch::from_tuples(iter.into_iter().collect())
    }
}

/// Accumulates tuples and emits full batches — the producer-side API for
/// sources and operators that generate tuples one at a time but hand them
/// downstream in blocks.
pub struct BatchBuilder {
    capacity: usize,
    batch: TupleBatch,
}

impl BatchBuilder {
    /// Builder emitting batches of `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        BatchBuilder {
            capacity: cap,
            batch: TupleBatch::with_capacity(cap),
        }
    }

    /// Add a tuple; returns the finished batch once it reaches capacity.
    pub fn push(&mut self, t: Tuple) -> Option<TupleBatch> {
        self.batch.push(t);
        if self.batch.is_full() {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        } else {
            None
        }
    }

    /// Tuples currently buffered.
    pub fn buffered(&self) -> usize {
        self.batch.len()
    }

    /// Emit whatever is buffered (possibly short), or `None` if empty.
    pub fn finish(self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(self.batch)
        }
    }

    /// Emit the buffered partial batch without consuming the builder.
    pub fn take_partial(&mut self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        }
    }
}

/// Allocation-free row assembly: accumulates output rows (concatenations,
/// projections, copies) into **one** shared value buffer and seals them
/// into a [`TupleBatch`] whose tuples are views of that block. The emit
/// loops of the joins and `Project` pay one buffer + one `Arc` allocation
/// per batch instead of one `Vec` + one `Arc` per row.
pub struct BatchAssembler {
    capacity: usize,
    values: Vec<Value>,
    /// Row end offsets into `values` (row `i` spans `ends[i-1]..ends[i]`).
    ends: Vec<u32>,
}

impl BatchAssembler {
    /// An assembler sealing batches of `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        BatchAssembler {
            capacity: capacity.max(1),
            values: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Rows currently buffered (unsealed).
    pub fn row_count(&self) -> usize {
        self.ends.len()
    }

    /// Whether the assembler holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Whether a sealed batch is due.
    pub fn is_full(&self) -> bool {
        self.ends.len() >= self.capacity
    }

    #[inline]
    fn end_row(&mut self) {
        self.ends.push(self.values.len() as u32);
        if self.ends.len() == 1 {
            // Rows in one batch share a schema, so the first row's width
            // predicts the whole block: reserve it once instead of paying
            // doubling reallocs (and their copies) across the batch.
            self.values.reserve(self.values.len() * (self.capacity - 1));
            self.ends.reserve(self.capacity - 1);
        }
    }

    /// Append the concatenation `a ++ b` as one row (join emit).
    #[inline]
    pub fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        self.values.extend_from_slice(a.values());
        self.values.extend_from_slice(b.values());
        self.end_row();
    }

    /// Append `t` projected onto `indices` as one row.
    #[inline]
    pub fn push_project(&mut self, t: &Tuple, indices: &[usize]) {
        let vals = t.values();
        for &i in indices {
            self.values.push(vals[i].clone());
        }
        self.end_row();
    }

    /// Append a copy of `t` as one row.
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.values.extend_from_slice(t.values());
        self.end_row();
    }

    /// Seal everything buffered into one batch sharing a single value
    /// block; `None` when empty. The assembler is reusable afterwards.
    /// Memory accounting of the sealed batch is deferred (computed if and
    /// when someone asks).
    pub fn seal(&mut self) -> Option<TupleBatch> {
        if self.ends.is_empty() {
            return None;
        }
        let block: Arc<[Value]> = std::mem::take(&mut self.values).into();
        let mut tuples = Vec::with_capacity(self.ends.len());
        let mut start = 0usize;
        for &end in &self.ends {
            tuples.push(Tuple::view(block.clone(), start, end as usize - start));
            start = end as usize;
        }
        self.ends.clear();
        Some(TupleBatch::from_parts(tuples, self.capacity))
    }
}

/// A FIFO of produced-but-unemitted join output, assembled block-at-a-time:
/// replaces the seed's `VecDeque<Tuple>` pending buffers. Rows pushed via
/// [`OutputQueue::push_concat`] land in a [`BatchAssembler`] (zero per-row
/// allocations); already-materialized tuples (spill-cleanup results) are
/// chunked into ready blocks. `pop_block` hands back batches of at most the
/// configured block size, oldest first.
pub struct OutputQueue {
    block: usize,
    ready: VecDeque<TupleBatch>,
    ready_rows: usize,
    asm: BatchAssembler,
}

impl OutputQueue {
    /// A queue emitting blocks of up to `block` rows.
    pub fn new(block: usize) -> Self {
        OutputQueue {
            block: block.max(1),
            ready: VecDeque::new(),
            ready_rows: 0,
            asm: BatchAssembler::new(block),
        }
    }

    /// Total rows pending (ready blocks + unsealed assembler rows).
    pub fn len(&self) -> usize {
        self.ready_rows + self.asm.row_count()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn roll(&mut self) {
        if self.asm.is_full() {
            let b = self.asm.seal().expect("full assembler seals non-empty");
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
    }

    /// Append the join result `a ++ b`.
    #[inline]
    pub fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        self.asm.push_concat(a, b);
        self.roll();
    }

    /// Append already-materialized tuples (overflow-cleanup output),
    /// preserving FIFO order with assembled rows.
    pub fn extend_tuples(&mut self, tuples: Vec<Tuple>) {
        if tuples.is_empty() {
            return;
        }
        // Seal buffered assembled rows first so order is preserved; the
        // invariant is that assembler rows are always the newest pending.
        if let Some(b) = self.asm.seal() {
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
        let mut it = tuples.into_iter().peekable();
        while it.peek().is_some() {
            let chunk: Vec<Tuple> = it.by_ref().take(self.block).collect();
            let b = TupleBatch::from_tuples(chunk);
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
    }

    /// Pop the oldest pending block (≤ block size), sealing a partial
    /// assembler batch when no full block is ready. `None` when empty.
    pub fn pop_block(&mut self) -> Option<TupleBatch> {
        if let Some(b) = self.ready.pop_front() {
            self.ready_rows -= b.len();
            return Some(b);
        }
        self.asm.seal()
    }

    /// Drop everything pending.
    pub fn clear(&mut self) {
        self.ready.clear();
        self.ready_rows = 0;
        self.asm = BatchAssembler::new(self.block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn push_and_access() {
        let mut b = TupleBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(tuple![1, "a"]);
        b.push(tuple![2, "b"]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_full());
        assert_eq!(b.get(0), Some(&tuple![1, "a"]));
        assert_eq!(b.get(2), None);
        assert_eq!(b.tuples().len(), 2);
    }

    #[test]
    fn mem_size_tracks_incrementally() {
        let mut b = TupleBatch::new();
        assert_eq!(b.mem_size(), 0);
        let t = tuple![1, "payload string"];
        let expect = t.mem_size();
        b.push(t.clone());
        assert_eq!(b.mem_size(), expect);
        b.push(t);
        assert_eq!(b.mem_size(), 2 * expect);
        // matches a fresh sum over the contents
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    #[test]
    fn truncate_releases_memory() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3]]);
        let one = tuple![1].mem_size();
        b.truncate(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.mem_size(), one);
        b.truncate(5); // no-op past the end
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_and_fullness() {
        let mut b = TupleBatch::with_capacity(2);
        assert_eq!(b.capacity(), 2);
        b.push(tuple![1]);
        assert!(!b.is_full());
        b.push(tuple![2]);
        assert!(b.is_full());
    }

    #[test]
    fn zero_capacity_clamped() {
        let b = TupleBatch::with_capacity(0);
        assert_eq!(b.capacity(), 1);
        let builder = BatchBuilder::new(0);
        assert_eq!(builder.capacity, 1);
    }

    #[test]
    fn iteration_by_ref_and_value() {
        let b = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let by_ref: Vec<i64> = b.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(by_ref, vec![1, 2]);
        let by_val: Vec<Tuple> = b.into_iter().collect();
        assert_eq!(by_val, vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn from_iterator_collects() {
        let b: TupleBatch = (0..3i64).map(|i| tuple![i]).collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn builder_emits_at_capacity() {
        let mut builder = BatchBuilder::new(3);
        assert!(builder.push(tuple![1]).is_none());
        assert!(builder.push(tuple![2]).is_none());
        let full = builder.push(tuple![3]).expect("full at capacity");
        assert_eq!(full.len(), 3);
        assert_eq!(builder.buffered(), 0);
        assert!(builder.push(tuple![4]).is_none());
        let rest = builder.finish().expect("partial batch");
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn builder_finish_empty_is_none() {
        assert!(BatchBuilder::new(8).finish().is_none());
        let mut b = BatchBuilder::new(8);
        assert!(b.take_partial().is_none());
        b.push(tuple![1]);
        assert_eq!(b.take_partial().map(|x| x.len()), Some(1));
        assert!(b.take_partial().is_none());
    }

    #[test]
    fn equality_ignores_capacity_and_provenance() {
        let a = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let mut b = TupleBatch::with_capacity(64);
        b.push(tuple![1]);
        b.push(tuple![2]);
        assert_eq!(a, b);
        b.push(tuple![3]);
        assert_ne!(a, b);
    }

    #[test]
    fn singleton_batch() {
        let b = TupleBatch::singleton(tuple![7]);
        assert_eq!(b.len(), 1);
        assert!(b.is_full());
        assert_eq!(b.mem_size(), tuple![7].mem_size());
    }

    #[test]
    fn retain_updates_mem_size() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3], tuple![4]]);
        b.retain(|t| t.value(0).as_int().unwrap() % 2 == 0);
        assert_eq!(b.tuples(), &[tuple![2], tuple![4]]);
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    #[test]
    fn assembler_concat_matches_tuple_concat() {
        let mut asm = BatchAssembler::new(4);
        let a = tuple![1, "x"];
        let b = tuple![2.5];
        asm.push_concat(&a, &b);
        asm.push_project(&tuple![10, 20, 30], &[2, 0]);
        asm.push_tuple(&tuple![7]);
        assert_eq!(asm.row_count(), 3);
        assert!(!asm.is_full());
        let batch = asm.seal().unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), Some(&a.concat(&b)));
        assert_eq!(batch.get(1), Some(&tuple![30, 10]));
        assert_eq!(batch.get(2), Some(&tuple![7]));
        // mem accounting matches a fresh sum (from_parts debug-asserts too)
        let sum: usize = batch.iter().map(Tuple::mem_size).sum();
        assert_eq!(batch.mem_size(), sum);
        // rows share one block: consecutive rows are adjacent in memory
        let r0 = batch.get(0).unwrap().values().as_ptr();
        let r1 = batch.get(1).unwrap().values().as_ptr();
        assert!(std::ptr::eq(r0.wrapping_add(3), r1));
        // assembler reusable after seal
        assert!(asm.seal().is_none());
        asm.push_tuple(&tuple![9]);
        assert_eq!(asm.seal().unwrap().len(), 1);
    }

    #[test]
    fn output_queue_blocks_and_order() {
        let mut q = OutputQueue::new(3);
        assert!(q.is_empty());
        for i in 0..5i64 {
            q.push_concat(&tuple![i], &tuple![i * 10]);
        }
        assert_eq!(q.len(), 5);
        // interleave already-materialized tuples: order must hold
        q.extend_tuples(vec![tuple![100, 1000], tuple![101, 1010]]);
        assert_eq!(q.len(), 7);
        let mut all = Vec::new();
        while let Some(b) = q.pop_block() {
            assert!(b.len() <= 3);
            all.extend(b);
        }
        assert!(q.is_empty());
        let want: Vec<Tuple> = (0..5i64)
            .map(|i| tuple![i, i * 10])
            .chain([tuple![100, 1000], tuple![101, 1010]])
            .collect();
        assert_eq!(all, want);
    }

    #[test]
    fn output_queue_clear() {
        let mut q = OutputQueue::new(2);
        q.push_concat(&tuple![1], &tuple![2]);
        q.extend_tuples(vec![tuple![3]]);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop_block().is_none());
    }
}
