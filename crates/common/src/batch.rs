//! Batches of tuples — the unit of data flow between operators.
//!
//! The iterator model moves one tuple per virtual call; every hot path then
//! pays dynamic dispatch, channel synchronization, and statistics updates
//! *per tuple*. A [`TupleBatch`] amortizes all three: operators exchange
//! blocks of tuples sharing one schema, sized by the engine's configured
//! batch capacity (ADQUEX-style block routing — adaptivity decides *where*
//! tuples go, batching decides *how many* move per decision).
//!
//! A batch carries one of two physical representations (DESIGN.md §11):
//!
//! * **row-major** — a `Vec<Tuple>` of views into shared value blocks, as
//!   built by the join emit paths and legacy producers;
//! * **columnar** — a [`ColumnarBatch`] of typed per-column vectors with
//!   validity bitmaps, as produced by sources, scans, and the typed emit
//!   assemblers. Columnar batches feed the vectorized kernels (predicate
//!   selection bitmaps, key prehashing, gather); the row view is
//!   materialized **lazily** — at most once, cached — so every row-oriented
//!   consumer keeps working unchanged through [`TupleBatch::tuples`].
//!
//! Invariants relied on across the engine:
//! * every batch handed between operators is **non-empty** (end of stream
//!   is signalled out-of-band by `Option::None`);
//! * all tuples in a batch share the producing operator's output schema;
//! * [`TupleBatch::mem_size`] is maintained incrementally for
//!   producer-built batches (charging a whole source batch to a memory
//!   reservation is O(1)); batches assembled by the join emit path defer
//!   accounting until someone asks. Columnar batches compute the identical
//!   figure from column payloads without materializing rows.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::column::{Bitmap, ColumnarAssembler, ColumnarBatch, Selection};
use crate::tuple::{Tuple, TUPLE_HEADER_BYTES};
use crate::value::{DataType, Value, VALUE_BASE_BYTES};

/// Default number of tuples per batch when the engine is not configured
/// otherwise. Large enough to amortize per-batch overhead, small enough to
/// keep time-to-first-output and rule-reaction latency low.
pub const DEFAULT_BATCH_CAPACITY: usize = 256;

/// Memory accounting state of a row-major [`TupleBatch`]: maintained
/// incrementally for producer-built batches, deferred for assembled output
/// blocks (whose `mem_size` is rarely read — computing it eagerly would put
/// a full value walk on every join's emit path).
#[derive(Clone, Copy, Debug)]
enum MemSize {
    /// Exact cached size, updated on `push`/`truncate`.
    Exact(usize),
    /// Not yet computed; `mem_size()` walks the tuples on demand.
    Lazy,
}

/// The physical representation behind a [`TupleBatch`].
#[derive(Clone)]
enum Repr {
    /// Row-major: tuples as views into shared value blocks.
    Rows { tuples: Vec<Tuple>, mem: MemSize },
    /// Columnar: typed vectors + validity bitmaps, with the row view
    /// materialized lazily (at most once) for row-oriented consumers.
    Columns {
        cols: ColumnarBatch,
        rows: OnceLock<Vec<Tuple>>,
    },
}

/// A block of tuples sharing one schema, with cached memory accounting and
/// an optional columnar representation feeding the vectorized kernels.
#[derive(Clone)]
pub struct TupleBatch {
    repr: Repr,
    capacity: usize,
}

/// Equality is over the tuples only: `capacity` is a producer hint,
/// `mem_size` is derived, and the physical representation (row-major vs
/// columnar) is an execution detail, so batches with the same content
/// compare equal regardless of how they were built.
impl PartialEq for TupleBatch {
    fn eq(&self, other: &Self) -> bool {
        self.tuples() == other.tuples()
    }
}

impl Eq for TupleBatch {}

impl TupleBatch {
    /// An empty batch with the default target capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BATCH_CAPACITY)
    }

    /// An empty batch that [`TupleBatch::is_full`] at `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TupleBatch {
            repr: Repr::Rows {
                tuples: Vec::with_capacity(cap.min(4096)),
                mem: MemSize::Exact(0),
            },
            capacity: cap,
        }
    }

    /// Wrap an existing vector of tuples (capacity = its length).
    /// Accounting is deferred: `mem_size()` walks on demand.
    pub fn from_tuples(tuples: Vec<Tuple>) -> Self {
        let capacity = tuples.len().max(1);
        TupleBatch {
            repr: Repr::Rows {
                tuples,
                mem: MemSize::Lazy,
            },
            capacity,
        }
    }

    /// Wrap a columnar batch (capacity = its length). The row view stays
    /// unmaterialized until a consumer asks for [`TupleBatch::tuples`].
    pub fn from_columns(cols: ColumnarBatch) -> Self {
        let capacity = cols.len().max(1);
        TupleBatch {
            repr: Repr::Columns {
                cols,
                rows: OnceLock::new(),
            },
            capacity,
        }
    }

    /// Assemble from sealed parts with deferred accounting — putting a
    /// full value walk on every sealed block would tax the join emit path
    /// for a size that is rarely read.
    pub(crate) fn from_parts(tuples: Vec<Tuple>, capacity: usize) -> Self {
        TupleBatch {
            repr: Repr::Rows {
                tuples,
                mem: MemSize::Lazy,
            },
            capacity: capacity.max(1),
        }
    }

    /// The columnar representation, when this batch carries one. Kernel
    /// call sites branch here: `Some` takes the typed vectorized path,
    /// `None` falls back to the row loop.
    pub fn columns(&self) -> Option<&ColumnarBatch> {
        match &self.repr {
            Repr::Columns { cols, .. } => Some(cols),
            Repr::Rows { .. } => None,
        }
    }

    /// Force the representation to row-major (materializing at most once)
    /// and return the mutable tuple vector. Mutation invalidates exact
    /// accounting, so the result is marked lazy.
    fn rows_mut(&mut self) -> &mut Vec<Tuple> {
        if let Repr::Columns { cols, rows } = &mut self.repr {
            let tuples = match std::mem::take(rows).into_inner() {
                Some(t) => t,
                None => cols.materialize_rows(),
            };
            self.repr = Repr::Rows {
                tuples,
                mem: MemSize::Lazy,
            };
        }
        match &mut self.repr {
            Repr::Rows { tuples, mem } => {
                *mem = MemSize::Lazy;
                tuples
            }
            Repr::Columns { .. } => unreachable!("converted above"),
        }
    }

    /// Keep only tuples matching `pred`, in place — the batch-native filter
    /// primitive. Evaluates in two phases: first a keep-bitmap over the
    /// rows, then a single structural apply, so **all-pass batches are left
    /// untouched** (no buffer traffic at all) and **none-pass batches are
    /// emptied wholesale** without per-row work. Columnar batches stay
    /// columnar (the bitmap is applied by gather).
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let mut keep = Bitmap::all_clear(n);
        let mut kept = 0usize;
        for (i, t) in self.tuples().iter().enumerate() {
            if pred(t) {
                keep.set(i);
                kept += 1;
            }
        }
        self.apply_keep(&keep, kept);
    }

    /// Apply a keep-bitmap (with known popcount) structurally.
    fn apply_keep(&mut self, keep: &Bitmap, kept: usize) {
        debug_assert_eq!(keep.len(), self.len());
        if kept == self.len() {
            return; // all-pass: representation untouched
        }
        if kept == 0 {
            // none-pass: drop everything in one shot
            self.repr = Repr::Rows {
                tuples: Vec::new(),
                mem: MemSize::Exact(0),
            };
            return;
        }
        match &mut self.repr {
            Repr::Rows { tuples, mem } => {
                let mut i = 0usize;
                match mem {
                    MemSize::Exact(m) => {
                        tuples.retain(|t| {
                            let k = keep.get(i);
                            i += 1;
                            if !k {
                                *m -= t.mem_size();
                            }
                            k
                        });
                    }
                    MemSize::Lazy => {
                        tuples.retain(|_| {
                            let k = keep.get(i);
                            i += 1;
                            k
                        });
                    }
                }
            }
            Repr::Columns { cols, rows } => {
                *cols = cols.gather(&keep.set_indices());
                *rows = OnceLock::new();
            }
        }
    }

    /// Apply a predicate [`Selection`] by value: `Some(self)` untouched on
    /// all-pass, `None` on none-pass (the caller skips the empty batch),
    /// and a gathered batch otherwise. This is `Filter`'s vectorized exit:
    /// no row materialization on any path when the batch is columnar.
    pub fn select(self, sel: &Selection) -> Option<TupleBatch> {
        debug_assert_eq!(sel.len(), self.len());
        if sel.is_all() {
            return Some(self);
        }
        if sel.is_none() {
            return None;
        }
        let capacity = self.capacity;
        match self.repr {
            Repr::Columns { cols, .. } => Some(TupleBatch {
                repr: Repr::Columns {
                    cols: cols.gather(&sel.indices()),
                    rows: OnceLock::new(),
                },
                capacity,
            }),
            Repr::Rows { tuples, .. } => {
                let kept: Vec<Tuple> = tuples
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, t)| sel.get(i).then_some(t))
                    .collect();
                Some(TupleBatch {
                    repr: Repr::Rows {
                        tuples: kept,
                        mem: MemSize::Lazy,
                    },
                    capacity,
                })
            }
        }
    }

    /// A batch holding exactly one tuple.
    pub fn singleton(t: Tuple) -> Self {
        let mem = MemSize::Exact(t.mem_size());
        TupleBatch {
            repr: Repr::Rows {
                tuples: vec![t],
                mem,
            },
            capacity: 1,
        }
    }

    /// Append a tuple, updating the cached memory size (when exact).
    /// Converts a columnar batch to rows first — producers that grow
    /// batches incrementally build row-major.
    pub fn push(&mut self, t: Tuple) {
        match &mut self.repr {
            Repr::Rows { tuples, mem } => {
                if let MemSize::Exact(m) = mem {
                    *m += t.mem_size();
                }
                tuples.push(t);
            }
            Repr::Columns { .. } => self.rows_mut().push(t),
        }
    }

    /// Append every tuple of `iter`.
    pub fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }

    /// Keep only the first `n` tuples (quota enforcement), releasing the
    /// rest from the cached memory size. Columnar batches slice their
    /// columns (no row materialization).
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len() {
            return;
        }
        match &mut self.repr {
            Repr::Rows { tuples, mem } => {
                if let MemSize::Exact(m) = mem {
                    *m -= tuples[n..].iter().map(Tuple::mem_size).sum::<usize>();
                }
                tuples.truncate(n);
            }
            Repr::Columns { cols, rows } => {
                *cols = cols.slice(0, n);
                *rows = OnceLock::new();
            }
        }
    }

    /// Number of tuples in the batch (no row materialization).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Rows { tuples, .. } => tuples.len(),
            Repr::Columns { cols, .. } => cols.len(),
        }
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Target capacity (producers stop filling at this size).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the batch has reached its target capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Approximate resident memory of all tuples in the batch: maintained
    /// incrementally on `push`/`truncate` for producer-built row batches,
    /// computed on demand for assembled blocks. For columnar batches the
    /// identical figure (tuple headers + per-value base + string payloads)
    /// is computed from the columns without materializing rows.
    pub fn mem_size(&self) -> usize {
        match &self.repr {
            Repr::Rows { tuples, mem } => match mem {
                MemSize::Exact(m) => *m,
                MemSize::Lazy => tuples.iter().map(Tuple::mem_size).sum(),
            },
            Repr::Columns { cols, .. } => {
                cols.len() * (TUPLE_HEADER_BYTES + cols.num_cols() * VALUE_BASE_BYTES)
                    + cols.payload_bytes()
            }
        }
    }

    /// The tuples as a slice. For columnar batches the row views are
    /// materialized **lazily into one shared block** on first call and
    /// cached — the compatibility adapter row-oriented operators rely on.
    pub fn tuples(&self) -> &[Tuple] {
        match &self.repr {
            Repr::Rows { tuples, .. } => tuples,
            Repr::Columns { cols, rows } => rows.get_or_init(|| cols.materialize_rows()),
        }
    }

    /// Checked tuple accessor.
    pub fn get(&self, idx: usize) -> Option<&Tuple> {
        self.tuples().get(idx)
    }

    /// Iterate the tuples by reference.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples().iter()
    }

    /// Consume the batch, yielding its tuples (reuses the cached row
    /// materialization when present).
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self.repr {
            Repr::Rows { tuples, .. } => tuples,
            Repr::Columns { cols, rows } => match rows.into_inner() {
                Some(t) => t,
                None => cols.materialize_rows(),
            },
        }
    }
}

impl Default for TupleBatch {
    fn default() -> Self {
        TupleBatch::new()
    }
}

impl fmt::Debug for TupleBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (repr, mem): (&str, &dyn fmt::Debug) = match &self.repr {
            Repr::Rows { mem, .. } => ("rows", mem),
            Repr::Columns { .. } => ("columns", &"FromColumns"),
        };
        f.debug_struct("TupleBatch")
            .field("len", &self.len())
            .field("repr", &repr)
            .field("mem_size", mem)
            .finish()
    }
}

impl From<Vec<Tuple>> for TupleBatch {
    fn from(tuples: Vec<Tuple>) -> Self {
        TupleBatch::from_tuples(tuples)
    }
}

impl From<ColumnarBatch> for TupleBatch {
    fn from(cols: ColumnarBatch) -> Self {
        TupleBatch::from_columns(cols)
    }
}

impl IntoIterator for TupleBatch {
    type Item = Tuple;
    type IntoIter = std::vec::IntoIter<Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.into_tuples().into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleBatch {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples().iter()
    }
}

impl FromIterator<Tuple> for TupleBatch {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        TupleBatch::from_tuples(iter.into_iter().collect())
    }
}

/// Accumulates tuples and emits full batches — the producer-side API for
/// sources and operators that generate tuples one at a time but hand them
/// downstream in blocks.
pub struct BatchBuilder {
    capacity: usize,
    batch: TupleBatch,
}

impl BatchBuilder {
    /// Builder emitting batches of `capacity` tuples.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        BatchBuilder {
            capacity: cap,
            batch: TupleBatch::with_capacity(cap),
        }
    }

    /// Add a tuple; returns the finished batch once it reaches capacity.
    pub fn push(&mut self, t: Tuple) -> Option<TupleBatch> {
        self.batch.push(t);
        if self.batch.is_full() {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        } else {
            None
        }
    }

    /// Tuples currently buffered.
    pub fn buffered(&self) -> usize {
        self.batch.len()
    }

    /// Emit whatever is buffered (possibly short), or `None` if empty.
    pub fn finish(self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(self.batch)
        }
    }

    /// Emit the buffered partial batch without consuming the builder.
    pub fn take_partial(&mut self) -> Option<TupleBatch> {
        if self.batch.is_empty() {
            None
        } else {
            Some(std::mem::replace(
                &mut self.batch,
                TupleBatch::with_capacity(self.capacity),
            ))
        }
    }
}

/// Allocation-free row assembly: accumulates output rows (concatenations,
/// projections, copies) into **one** shared value buffer and seals them
/// into a [`TupleBatch`] whose tuples are views of that block. The emit
/// loops of the joins and `Project` pay one buffer + one `Arc` allocation
/// per batch instead of one `Vec` + one `Arc` per row.
pub struct BatchAssembler {
    capacity: usize,
    values: Vec<Value>,
    /// Row end offsets into `values` (row `i` spans `ends[i-1]..ends[i]`).
    ends: Vec<u32>,
}

impl BatchAssembler {
    /// An assembler sealing batches of `capacity` rows.
    pub fn new(capacity: usize) -> Self {
        BatchAssembler {
            capacity: capacity.max(1),
            values: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Rows currently buffered (unsealed).
    pub fn row_count(&self) -> usize {
        self.ends.len()
    }

    /// Whether the assembler holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// Whether a sealed batch is due.
    pub fn is_full(&self) -> bool {
        self.ends.len() >= self.capacity
    }

    #[inline]
    fn end_row(&mut self) {
        self.ends.push(self.values.len() as u32);
        if self.ends.len() == 1 {
            // Rows in one batch share a schema, so the first row's width
            // predicts the whole block: reserve it once instead of paying
            // doubling reallocs (and their copies) across the batch.
            self.values.reserve(self.values.len() * (self.capacity - 1));
            self.ends.reserve(self.capacity - 1);
        }
    }

    /// Append the concatenation `a ++ b` as one row (join emit).
    #[inline]
    pub fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        self.values.extend_from_slice(a.values());
        self.values.extend_from_slice(b.values());
        self.end_row();
    }

    /// Append `t` projected onto `indices` as one row.
    #[inline]
    pub fn push_project(&mut self, t: &Tuple, indices: &[usize]) {
        let vals = t.values();
        for &i in indices {
            self.values.push(vals[i].clone());
        }
        self.end_row();
    }

    /// Append a copy of `t` as one row.
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        self.values.extend_from_slice(t.values());
        self.end_row();
    }

    /// Seal everything buffered into one batch sharing a single value
    /// block; `None` when empty. The assembler is reusable afterwards.
    /// Memory accounting of the sealed batch is deferred (computed if and
    /// when someone asks).
    pub fn seal(&mut self) -> Option<TupleBatch> {
        if self.ends.is_empty() {
            return None;
        }
        let block: Arc<[Value]> = std::mem::take(&mut self.values).into();
        let mut tuples = Vec::with_capacity(self.ends.len());
        let mut start = 0usize;
        for &end in &self.ends {
            tuples.push(Tuple::view(block.clone(), start, end as usize - start));
            start = end as usize;
        }
        self.ends.clear();
        Some(TupleBatch::from_parts(tuples, self.capacity))
    }
}

/// The assembly strategy behind an [`OutputQueue`]: row-major value-block
/// assembly, or typed columnar assembly when the producer knows its output
/// schema (the joins' vectorized emit path).
enum QueueAsm {
    Rows(BatchAssembler),
    Cols(ColumnarAssembler),
}

impl QueueAsm {
    fn row_count(&self) -> usize {
        match self {
            QueueAsm::Rows(a) => a.row_count(),
            QueueAsm::Cols(a) => a.row_count(),
        }
    }

    fn is_full(&self) -> bool {
        match self {
            QueueAsm::Rows(a) => a.is_full(),
            QueueAsm::Cols(a) => a.is_full(),
        }
    }

    #[inline]
    fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        match self {
            QueueAsm::Rows(asm) => asm.push_concat(a, b),
            QueueAsm::Cols(asm) => asm.push_concat(a, b),
        }
    }

    fn seal(&mut self) -> Option<TupleBatch> {
        match self {
            QueueAsm::Rows(a) => a.seal(),
            QueueAsm::Cols(a) => a.seal().map(TupleBatch::from_columns),
        }
    }
}

/// A FIFO of produced-but-unemitted join output, assembled block-at-a-time:
/// replaces the seed's `VecDeque<Tuple>` pending buffers. Rows pushed via
/// [`OutputQueue::push_concat`] land in an assembler (zero per-row
/// allocations); already-materialized tuples (spill-cleanup results) are
/// chunked into ready blocks. `pop_block` hands back batches of at most the
/// configured block size, oldest first.
///
/// [`OutputQueue::typed`] builds the queue over a [`ColumnarAssembler`]:
/// emitted blocks are then columnar (typed vectors straight from the output
/// schema), so downstream kernels skip row conversion entirely.
pub struct OutputQueue {
    block: usize,
    ready: VecDeque<TupleBatch>,
    ready_rows: usize,
    asm: QueueAsm,
}

impl OutputQueue {
    /// A queue emitting row-assembled blocks of up to `block` rows.
    pub fn new(block: usize) -> Self {
        OutputQueue {
            block: block.max(1),
            ready: VecDeque::new(),
            ready_rows: 0,
            asm: QueueAsm::Rows(BatchAssembler::new(block)),
        }
    }

    /// A queue emitting **columnar** blocks typed by the output column
    /// kinds (the operator's output schema).
    pub fn typed(block: usize, kinds: Vec<DataType>) -> Self {
        OutputQueue {
            block: block.max(1),
            ready: VecDeque::new(),
            ready_rows: 0,
            asm: QueueAsm::Cols(ColumnarAssembler::new(block, kinds)),
        }
    }

    /// Total rows pending (ready blocks + unsealed assembler rows).
    pub fn len(&self) -> usize {
        self.ready_rows + self.asm.row_count()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn roll(&mut self) {
        if self.asm.is_full() {
            let b = self.asm.seal().expect("full assembler seals non-empty");
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
    }

    /// Append the join result `a ++ b`.
    #[inline]
    pub fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        self.asm.push_concat(a, b);
        self.roll();
    }

    /// Append already-materialized tuples (overflow-cleanup output),
    /// preserving FIFO order with assembled rows.
    pub fn extend_tuples(&mut self, tuples: Vec<Tuple>) {
        if tuples.is_empty() {
            return;
        }
        // Seal buffered assembled rows first so order is preserved; the
        // invariant is that assembler rows are always the newest pending.
        if let Some(b) = self.asm.seal() {
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
        let mut it = tuples.into_iter().peekable();
        while it.peek().is_some() {
            let chunk: Vec<Tuple> = it.by_ref().take(self.block).collect();
            let b = TupleBatch::from_tuples(chunk);
            self.ready_rows += b.len();
            self.ready.push_back(b);
        }
    }

    /// Append an already-assembled block (a vectorized probe's gathered
    /// output), preserving FIFO order with assembled rows. Callers keep
    /// blocks at or under the queue's block size.
    pub fn extend_block(&mut self, b: TupleBatch) {
        if b.is_empty() {
            return;
        }
        if let Some(s) = self.asm.seal() {
            self.ready_rows += s.len();
            self.ready.push_back(s);
        }
        self.ready_rows += b.len();
        self.ready.push_back(b);
    }

    /// Pop the oldest pending block (≤ block size), sealing a partial
    /// assembler batch when no full block is ready. `None` when empty.
    pub fn pop_block(&mut self) -> Option<TupleBatch> {
        if let Some(b) = self.ready.pop_front() {
            self.ready_rows -= b.len();
            return Some(b);
        }
        self.asm.seal()
    }

    /// Drop everything pending.
    pub fn clear(&mut self) {
        self.ready.clear();
        self.ready_rows = 0;
        self.asm = match &self.asm {
            QueueAsm::Rows(_) => QueueAsm::Rows(BatchAssembler::new(self.block)),
            QueueAsm::Cols(a) => QueueAsm::Cols(a.fresh()),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn push_and_access() {
        let mut b = TupleBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(tuple![1, "a"]);
        b.push(tuple![2, "b"]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_full());
        assert_eq!(b.get(0), Some(&tuple![1, "a"]));
        assert_eq!(b.get(2), None);
        assert_eq!(b.tuples().len(), 2);
    }

    #[test]
    fn mem_size_tracks_incrementally() {
        let mut b = TupleBatch::new();
        assert_eq!(b.mem_size(), 0);
        let t = tuple![1, "payload string"];
        let expect = t.mem_size();
        b.push(t.clone());
        assert_eq!(b.mem_size(), expect);
        b.push(t);
        assert_eq!(b.mem_size(), 2 * expect);
        // matches a fresh sum over the contents
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    #[test]
    fn truncate_releases_memory() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3]]);
        let one = tuple![1].mem_size();
        b.truncate(1);
        assert_eq!(b.len(), 1);
        assert_eq!(b.mem_size(), one);
        b.truncate(5); // no-op past the end
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_and_fullness() {
        let mut b = TupleBatch::with_capacity(2);
        assert_eq!(b.capacity(), 2);
        b.push(tuple![1]);
        assert!(!b.is_full());
        b.push(tuple![2]);
        assert!(b.is_full());
    }

    #[test]
    fn zero_capacity_clamped() {
        let b = TupleBatch::with_capacity(0);
        assert_eq!(b.capacity(), 1);
        let builder = BatchBuilder::new(0);
        assert_eq!(builder.capacity, 1);
    }

    #[test]
    fn iteration_by_ref_and_value() {
        let b = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let by_ref: Vec<i64> = b.iter().map(|t| t.value(0).as_int().unwrap()).collect();
        assert_eq!(by_ref, vec![1, 2]);
        let by_val: Vec<Tuple> = b.into_iter().collect();
        assert_eq!(by_val, vec![tuple![1], tuple![2]]);
    }

    #[test]
    fn from_iterator_collects() {
        let b: TupleBatch = (0..3i64).map(|i| tuple![i]).collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn builder_emits_at_capacity() {
        let mut builder = BatchBuilder::new(3);
        assert!(builder.push(tuple![1]).is_none());
        assert!(builder.push(tuple![2]).is_none());
        let full = builder.push(tuple![3]).expect("full at capacity");
        assert_eq!(full.len(), 3);
        assert_eq!(builder.buffered(), 0);
        assert!(builder.push(tuple![4]).is_none());
        let rest = builder.finish().expect("partial batch");
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn builder_finish_empty_is_none() {
        assert!(BatchBuilder::new(8).finish().is_none());
        let mut b = BatchBuilder::new(8);
        assert!(b.take_partial().is_none());
        b.push(tuple![1]);
        assert_eq!(b.take_partial().map(|x| x.len()), Some(1));
        assert!(b.take_partial().is_none());
    }

    #[test]
    fn equality_ignores_capacity_and_provenance() {
        let a = TupleBatch::from_tuples(vec![tuple![1], tuple![2]]);
        let mut b = TupleBatch::with_capacity(64);
        b.push(tuple![1]);
        b.push(tuple![2]);
        assert_eq!(a, b);
        b.push(tuple![3]);
        assert_ne!(a, b);
        // columnar vs row-major with equal content compare equal
        let c = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1], tuple![2]]));
        assert_eq!(a, c);
    }

    #[test]
    fn singleton_batch() {
        let b = TupleBatch::singleton(tuple![7]);
        assert_eq!(b.len(), 1);
        assert!(b.is_full());
        assert_eq!(b.mem_size(), tuple![7].mem_size());
    }

    #[test]
    fn retain_updates_mem_size() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3], tuple![4]]);
        b.retain(|t| t.value(0).as_int().unwrap() % 2 == 0);
        assert_eq!(b.tuples(), &[tuple![2], tuple![4]]);
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    /// Satellite: all-pass retain must not touch the rows at all — the
    /// backing buffer is the same allocation before and after.
    #[test]
    fn retain_all_pass_leaves_rows_untouched() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1], tuple![2], tuple![3]]);
        let before = b.tuples().as_ptr();
        let mem_before = b.mem_size();
        b.retain(|_| true);
        assert_eq!(b.len(), 3);
        assert!(std::ptr::eq(before, b.tuples().as_ptr()));
        assert_eq!(b.mem_size(), mem_before);
        // columnar all-pass keeps the columnar representation (and the
        // shared column buffers) intact
        let mut c = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1], tuple![2]]));
        let col_before = std::sync::Arc::as_ptr(c.columns().unwrap().col_shared(0));
        c.retain(|_| true);
        let cols = c.columns().expect("still columnar");
        assert!(std::ptr::eq(
            col_before,
            std::sync::Arc::as_ptr(cols.col_shared(0))
        ));
    }

    /// Satellite: none-pass retain empties the batch wholesale — exact
    /// zero accounting, no per-row arithmetic.
    #[test]
    fn retain_none_pass_short_circuits() {
        let mut b = TupleBatch::from_tuples(vec![tuple![1, "abc"], tuple![2, "def"]]);
        b.retain(|_| false);
        assert!(b.is_empty());
        assert_eq!(b.mem_size(), 0);
        let mut c = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1], tuple![2]]));
        c.retain(|_| false);
        assert!(c.is_empty());
        assert_eq!(c.mem_size(), 0);
    }

    #[test]
    fn retain_partial_keeps_columnar_repr() {
        let rows: Vec<Tuple> = (0..6i64).map(|i| tuple![i]).collect();
        let mut b = TupleBatch::from_columns(ColumnarBatch::from_rows(&rows));
        b.retain(|t| t.value(0).as_int().unwrap() % 2 == 0);
        assert!(b.columns().is_some(), "partial retain stays columnar");
        assert_eq!(b.tuples(), &[tuple![0], tuple![2], tuple![4]]);
        let sum: usize = b.iter().map(Tuple::mem_size).sum();
        assert_eq!(b.mem_size(), sum);
    }

    #[test]
    fn select_fast_paths_and_gather() {
        let rows: Vec<Tuple> = (0..5i64).map(|i| tuple![i]).collect();
        let b = TupleBatch::from_columns(ColumnarBatch::from_rows(&rows));
        let all = b.clone().select(&Selection::keep_all(5)).unwrap();
        assert_eq!(all, b);
        assert!(b.clone().select(&Selection::keep_none(5)).is_none());
        let mut bits = Bitmap::all_clear(5);
        bits.set(1);
        bits.set(3);
        let some = b.select(&Selection::from_bitmap(bits)).unwrap();
        assert!(some.columns().is_some());
        assert_eq!(some.tuples(), &[tuple![1], tuple![3]]);
        // row-major batches select too
        let r = TupleBatch::from_tuples(rows);
        let mut bits = Bitmap::all_clear(5);
        bits.set(0);
        let one = r.select(&Selection::from_bitmap(bits)).unwrap();
        assert_eq!(one.tuples(), &[tuple![0]]);
    }

    #[test]
    fn columnar_mem_size_matches_row_sum() {
        let rows = vec![tuple![1, "abcd", 2.5], tuple![2, "ef", 3.5]];
        let want: usize = rows.iter().map(Tuple::mem_size).sum();
        let b = TupleBatch::from_columns(ColumnarBatch::from_rows(&rows));
        assert_eq!(b.mem_size(), want, "columnar accounting ≡ row accounting");
    }

    #[test]
    fn columnar_push_converts_to_rows() {
        let mut b = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1]]));
        b.push(tuple![2]);
        assert!(b.columns().is_none());
        assert_eq!(b.tuples(), &[tuple![1], tuple![2]]);
    }

    #[test]
    fn columnar_truncate_slices_columns() {
        let rows: Vec<Tuple> = (0..4i64).map(|i| tuple![i]).collect();
        let mut b = TupleBatch::from_columns(ColumnarBatch::from_rows(&rows));
        b.truncate(2);
        assert!(b.columns().is_some());
        assert_eq!(b.tuples(), &rows[..2]);
    }

    #[test]
    fn assembler_concat_matches_tuple_concat() {
        let mut asm = BatchAssembler::new(4);
        let a = tuple![1, "x"];
        let b = tuple![2.5];
        asm.push_concat(&a, &b);
        asm.push_project(&tuple![10, 20, 30], &[2, 0]);
        asm.push_tuple(&tuple![7]);
        assert_eq!(asm.row_count(), 3);
        assert!(!asm.is_full());
        let batch = asm.seal().unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.get(0), Some(&a.concat(&b)));
        assert_eq!(batch.get(1), Some(&tuple![30, 10]));
        assert_eq!(batch.get(2), Some(&tuple![7]));
        // mem accounting matches a fresh sum (from_parts debug-asserts too)
        let sum: usize = batch.iter().map(Tuple::mem_size).sum();
        assert_eq!(batch.mem_size(), sum);
        // rows share one block: consecutive rows are adjacent in memory
        let r0 = batch.get(0).unwrap().values().as_ptr();
        let r1 = batch.get(1).unwrap().values().as_ptr();
        assert!(std::ptr::eq(r0.wrapping_add(3), r1));
        // assembler reusable after seal
        assert!(asm.seal().is_none());
        asm.push_tuple(&tuple![9]);
        assert_eq!(asm.seal().unwrap().len(), 1);
    }

    #[test]
    fn output_queue_blocks_and_order() {
        let mut q = OutputQueue::new(3);
        assert!(q.is_empty());
        for i in 0..5i64 {
            q.push_concat(&tuple![i], &tuple![i * 10]);
        }
        assert_eq!(q.len(), 5);
        // interleave already-materialized tuples: order must hold
        q.extend_tuples(vec![tuple![100, 1000], tuple![101, 1010]]);
        assert_eq!(q.len(), 7);
        let mut all = Vec::new();
        while let Some(b) = q.pop_block() {
            assert!(b.len() <= 3);
            all.extend(b);
        }
        assert!(q.is_empty());
        let want: Vec<Tuple> = (0..5i64)
            .map(|i| tuple![i, i * 10])
            .chain([tuple![100, 1000], tuple![101, 1010]])
            .collect();
        assert_eq!(all, want);
    }

    #[test]
    fn typed_output_queue_matches_row_queue() {
        use crate::value::DataType;
        let kinds = vec![DataType::Int, DataType::Int];
        let mut tq = OutputQueue::typed(3, kinds);
        let mut rq = OutputQueue::new(3);
        for i in 0..5i64 {
            tq.push_concat(&tuple![i], &tuple![i * 10]);
            rq.push_concat(&tuple![i], &tuple![i * 10]);
        }
        tq.extend_tuples(vec![tuple![100, 1000]]);
        rq.extend_tuples(vec![tuple![100, 1000]]);
        let drain = |q: &mut OutputQueue| {
            let mut all = Vec::new();
            while let Some(b) = q.pop_block() {
                assert!(b.len() <= 3);
                all.extend(b);
            }
            all
        };
        let t = drain(&mut tq);
        assert_eq!(t, drain(&mut rq));
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn typed_output_queue_emits_columnar_blocks() {
        use crate::value::DataType;
        let mut q = OutputQueue::typed(2, vec![DataType::Int, DataType::Str]);
        q.push_concat(&tuple![1], &tuple!["a"]);
        q.push_concat(&tuple![2], &tuple!["b"]);
        let b = q.pop_block().unwrap();
        assert!(b.columns().is_some(), "typed queue seals columnar batches");
        assert_eq!(b.tuples(), &[tuple![1, "a"], tuple![2, "b"]]);
    }

    #[test]
    fn output_queue_clear() {
        let mut q = OutputQueue::new(2);
        q.push_concat(&tuple![1], &tuple![2]);
        q.extend_tuples(vec![tuple![3]]);
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop_block().is_none());
        let mut tq = OutputQueue::typed(2, vec![crate::value::DataType::Int; 2]);
        tq.push_concat(&tuple![1], &tuple![2]);
        tq.clear();
        assert!(tq.is_empty());
        assert!(tq.pop_block().is_none());
    }
}
