//! Join key representation and batch-level key prehashing.
//!
//! The seed extracted join keys with [`crate::Tuple::key`], which allocates
//! a `Vec<Value>` per row even for single-column keys. [`JoinKey`] stores
//! one- and two-column keys inline (no heap allocation besides the `Value`s
//! themselves, which are `Copy`-cheap or `Arc`-shared), and [`KeyVector`]
//! prehashes a whole [`TupleBatch`] in one pass so downstream hash tables
//! route and probe on the cached 64-bit prehash instead of rehashing —
//! probes compare the key **by reference** into the batch's tuples and
//! never clone a `Value`.

use crate::hash::{fx_hash, FxHasher};
use crate::tuple::Tuple;
use crate::value::Value;
use crate::TupleBatch;
use std::hash::{Hash, Hasher};

/// An owned join key over one or more columns. One- and two-column keys
/// (the overwhelmingly common cases) are stored inline; wider keys fall
/// back to a boxed slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinKey {
    /// Single-column key.
    One(Value),
    /// Two-column composite key, inline (no `Vec`).
    Pair(Value, Value),
    /// Three-or-more-column composite key.
    Many(Box<[Value]>),
}

impl JoinKey {
    /// Extract the key of `tuple` at `cols`, cloning only the key columns
    /// (`Value` clones are refcount bumps or word copies).
    pub fn from_tuple(tuple: &Tuple, cols: &[usize]) -> JoinKey {
        match cols {
            [a] => JoinKey::One(tuple.value(*a).clone()),
            [a, b] => JoinKey::Pair(tuple.value(*a).clone(), tuple.value(*b).clone()),
            _ => JoinKey::Many(cols.iter().map(|&i| tuple.value(i).clone()).collect()),
        }
    }

    /// Number of key columns.
    pub fn width(&self) -> usize {
        match self {
            JoinKey::One(_) => 1,
            JoinKey::Pair(_, _) => 2,
            JoinKey::Many(vs) => vs.len(),
        }
    }

    /// Component accessor (panics out of range, like slice indexing).
    pub fn component(&self, i: usize) -> &Value {
        match (self, i) {
            (JoinKey::One(v), 0) => v,
            (JoinKey::Pair(a, _), 0) => a,
            (JoinKey::Pair(_, b), 1) => b,
            (JoinKey::Many(vs), i) => &vs[i],
            _ => panic!("JoinKey component {i} out of range"),
        }
    }

    /// Whether any component is SQL `NULL` (NULL keys never join).
    pub fn has_null(&self) -> bool {
        match self {
            JoinKey::One(v) => v.is_null(),
            JoinKey::Pair(a, b) => a.is_null() || b.is_null(),
            JoinKey::Many(vs) => vs.iter().any(Value::is_null),
        }
    }

    /// The Fx prehash of this key — identical to
    /// [`KeyVector::hash_tuple_key`] over the source columns, so owned and
    /// borrowed key forms interoperate in one [`crate::PrehashMap`].
    pub fn fx_hash(&self) -> u64 {
        let mut h = FxHasher::new();
        match self {
            JoinKey::One(v) => v.hash(&mut h),
            JoinKey::Pair(a, b) => {
                a.hash(&mut h);
                b.hash(&mut h);
            }
            JoinKey::Many(vs) => {
                for v in vs.iter() {
                    v.hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Compare against the key columns of a tuple without extracting or
    /// cloning them — the probe-by-reference equality check.
    pub fn eq_tuple(&self, tuple: &Tuple, cols: &[usize]) -> bool {
        if self.width() != cols.len() {
            return false;
        }
        cols.iter()
            .enumerate()
            .all(|(i, &c)| self.component(i) == tuple.value(c))
    }
}

impl Hash for JoinKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            JoinKey::One(v) => v.hash(state),
            JoinKey::Pair(a, b) => {
                a.hash(state);
                b.hash(state);
            }
            JoinKey::Many(vs) => {
                for v in vs.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

/// Per-batch key prehashes: one entry per row, `None` when the row's key
/// contains SQL `NULL` (such rows never join and are dropped before they
/// reach a hash table). Computed once per [`TupleBatch`]; every downstream
/// consumer (bucket routing, map probe/insert, salted re-partitioning)
/// reuses the cached hash instead of rehashing the key.
#[derive(Debug, Clone)]
pub struct KeyVector {
    hashes: Vec<Option<u64>>,
}

impl KeyVector {
    /// Prehash every row of `batch` on the single key column `col`.
    /// Columnar batches take the typed column kernel
    /// ([`crate::Column::hash_append`]) — one tight loop over the native
    /// payload, no row materialization; row batches fall back to the
    /// per-tuple walk. Both produce byte-identical hashes.
    pub fn compute(batch: &TupleBatch, col: usize) -> KeyVector {
        if let Some(cols) = batch.columns() {
            let mut hashes = Vec::with_capacity(cols.len());
            cols.col(col).hash_append(&mut hashes);
            return KeyVector { hashes };
        }
        KeyVector {
            hashes: batch
                .iter()
                .map(|t| {
                    let v = t.value(col);
                    if v.is_null() {
                        None
                    } else {
                        Some(fx_hash(v))
                    }
                })
                .collect(),
        }
    }

    /// Prehash every row of `batch` on a (possibly composite) column set.
    /// Columnar batches fold each key column through per-row hasher states
    /// ([`crate::Column::hash_fold`]) — column-at-a-time, same result as
    /// the per-tuple walk.
    pub fn compute_composite(batch: &TupleBatch, cols: &[usize]) -> KeyVector {
        if let Some(cb) = batch.columns() {
            let mut acc: Vec<Option<FxHasher>> = vec![Some(FxHasher::new()); cb.len()];
            for &c in cols {
                cb.col(c).hash_fold(&mut acc);
            }
            return KeyVector {
                hashes: acc.into_iter().map(|h| h.map(|h| h.finish())).collect(),
            };
        }
        KeyVector {
            hashes: batch
                .iter()
                .map(|t| Self::hash_tuple_key(t, cols))
                .collect(),
        }
    }

    /// Prehash one tuple's key columns (`None` if any component is NULL).
    /// Matches [`JoinKey::fx_hash`] of the extracted key exactly.
    pub fn hash_tuple_key(t: &Tuple, cols: &[usize]) -> Option<u64> {
        let mut h = FxHasher::new();
        for &c in cols {
            let v = t.value(c);
            if v.is_null() {
                return None;
            }
            v.hash(&mut h);
        }
        Some(h.finish())
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the vector covers no rows.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The prehash of row `i`, or `None` for a NULL key.
    #[inline]
    pub fn get(&self, i: usize) -> Option<u64> {
        self.hashes[i]
    }

    /// Iterate the per-row prehashes.
    pub fn iter(&self) -> impl Iterator<Item = Option<u64>> + '_ {
        self.hashes.iter().copied()
    }
}

/// A consumed [`TupleBatch`] paired with its [`KeyVector`]: the staging
/// form the join operators drain one tuple at a time. Tuples move out of
/// the batch's own buffer (no copy into a side deque, no refcount
/// traffic), each paired with its cached prehash.
pub struct KeyedBatch {
    iter: std::vec::IntoIter<Tuple>,
    kv: KeyVector,
    pos: usize,
}

impl KeyedBatch {
    /// Prehash `batch` on `col` and take ownership for draining.
    pub fn new(batch: TupleBatch, col: usize) -> Self {
        let kv = KeyVector::compute(&batch, col);
        KeyedBatch {
            iter: batch.into_tuples().into_iter(),
            kv,
            pos: 0,
        }
    }

    /// Next tuple with its prehash (`None` hash = NULL key: the row never
    /// joins).
    #[allow(clippy::should_implement_trait)] // yields pairs, not an Iterator item type we export
    pub fn next(&mut self) -> Option<(Tuple, Option<u64>)> {
        let t = self.iter.next()?;
        let h = self.kv.get(self.pos);
        self.pos += 1;
        Some((t, h))
    }

    /// Tuples not yet drained.
    pub fn remaining(&self) -> usize {
        self.iter.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn inline_key_forms() {
        let t = tuple![1, "x", 2.5];
        assert_eq!(JoinKey::from_tuple(&t, &[0]), JoinKey::One(Value::Int(1)));
        assert_eq!(
            JoinKey::from_tuple(&t, &[0, 1]),
            JoinKey::Pair(Value::Int(1), Value::str("x"))
        );
        let wide = JoinKey::from_tuple(&t, &[0, 1, 2]);
        assert_eq!(wide.width(), 3);
        assert_eq!(wide.component(2), &Value::Double(2.5));
    }

    #[test]
    fn owned_and_borrowed_hashes_agree() {
        let t = tuple![7, "key", 9];
        for cols in [&[0usize][..], &[1, 2][..], &[0, 1, 2][..]] {
            let owned = JoinKey::from_tuple(&t, cols);
            assert_eq!(
                Some(owned.fx_hash()),
                KeyVector::hash_tuple_key(&t, cols),
                "cols {cols:?}"
            );
            assert!(owned.eq_tuple(&t, cols));
        }
    }

    #[test]
    fn null_components_detected() {
        let t = crate::Tuple::new(vec![Value::Int(1), Value::Null]);
        assert!(!JoinKey::from_tuple(&t, &[0]).has_null());
        assert!(JoinKey::from_tuple(&t, &[0, 1]).has_null());
        assert_eq!(KeyVector::hash_tuple_key(&t, &[0, 1]), None);
        assert_eq!(KeyVector::hash_tuple_key(&t, &[1]), None);
    }

    #[test]
    fn key_vector_matches_per_row_hashing() {
        let batch = TupleBatch::from_tuples(vec![
            tuple![1, 10],
            crate::Tuple::new(vec![Value::Null, Value::Int(11)]),
            tuple![3, 30],
        ]);
        let kv = KeyVector::compute(&batch, 0);
        assert_eq!(kv.len(), 3);
        assert_eq!(kv.get(0), Some(fx_hash(&Value::Int(1))));
        assert_eq!(kv.get(1), None);
        assert_eq!(kv.get(2), Some(fx_hash(&Value::Int(3))));
        let kvc = KeyVector::compute_composite(&batch, &[0]);
        for i in 0..3 {
            assert_eq!(kv.get(i), kvc.get(i));
        }
    }

    /// Satellite: hash(column kernel) ≡ hash(per-tuple `JoinKey`) for every
    /// type — including NULL (no hash at all), -0.0 vs 0.0 (distinct bits),
    /// and NaN (bit-stable) — so bucket/partition routing is byte-stable
    /// across the row/columnar refactor.
    #[test]
    fn columnar_key_vector_matches_row_path() {
        use crate::column::ColumnarBatch;
        let rows = vec![
            tuple![1, 2.5, "a", 3],
            crate::Tuple::new(vec![
                Value::Int(i64::MIN),
                Value::Double(-0.0),
                Value::str(""),
                Value::Date(-1),
            ]),
            crate::Tuple::new(vec![
                Value::Null,
                Value::Double(0.0),
                Value::Null,
                Value::Date(9999),
            ]),
            crate::Tuple::new(vec![
                Value::Int(7),
                Value::Double(f64::NAN),
                Value::str("tukwila"),
                Value::Null,
            ]),
        ];
        let row_batch = TupleBatch::from_tuples(rows.clone());
        let col_batch = TupleBatch::from_columns(ColumnarBatch::from_rows(&rows));
        assert!(col_batch.columns().is_some());
        for c in 0..4 {
            let rv = KeyVector::compute(&row_batch, c);
            let cv = KeyVector::compute(&col_batch, c);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(rv.get(i), cv.get(i), "col {c} row {i}");
                let jk = JoinKey::from_tuple(row, &[c]);
                let want = if jk.has_null() {
                    None
                } else {
                    Some(jk.fx_hash())
                };
                assert_eq!(cv.get(i), want, "JoinKey parity col {c} row {i}");
            }
        }
        for cols in [
            &[0usize, 1][..],
            &[2, 3][..],
            &[0, 1, 2, 3][..],
            &[3, 0][..],
        ] {
            let rv = KeyVector::compute_composite(&row_batch, cols);
            let cv = KeyVector::compute_composite(&col_batch, cols);
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(rv.get(i), cv.get(i), "cols {cols:?} row {i}");
                let jk = JoinKey::from_tuple(row, cols);
                let want = if jk.has_null() {
                    None
                } else {
                    Some(jk.fx_hash())
                };
                assert_eq!(cv.get(i), want, "JoinKey parity cols {cols:?} row {i}");
            }
        }
        // -0.0 and 0.0 must route differently (total-order bit hashing)
        let neg = KeyVector::compute(&col_batch, 1);
        assert_ne!(neg.get(1), neg.get(2), "-0.0 and 0.0 hash differently");
    }

    #[test]
    fn eq_tuple_respects_width_and_order() {
        let t = tuple![1, 2];
        let k = JoinKey::from_tuple(&t, &[0, 1]);
        assert!(k.eq_tuple(&t, &[0, 1]));
        assert!(!k.eq_tuple(&t, &[1, 0]));
        assert!(!k.eq_tuple(&t, &[0]));
    }
}
