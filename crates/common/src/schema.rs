//! Relation schemas.
//!
//! A [`Schema`] names and types the columns of a stream of tuples. Columns
//! carry an optional *qualifier* (the relation they came from) because joins
//! concatenate schemas and downstream operators resolve columns like
//! `lineitem.orderkey` against the concatenation — the same resolution a
//! mediated-schema query goes through after reformulation (§2 of the paper).

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{Result, TukwilaError};
use crate::value::DataType;

/// A single column: `qualifier.name : data_type`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Originating relation (e.g. `"lineitem"`); empty for computed columns.
    pub qualifier: String,
    /// Column name (e.g. `"orderkey"`).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Build a qualified field.
    pub fn new(qualifier: impl Into<String>, name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            qualifier: qualifier.into(),
            name: name.into(),
            data_type,
        }
    }

    /// Build an unqualified field.
    pub fn unqualified(name: impl Into<String>, data_type: DataType) -> Self {
        Field::new("", name, data_type)
    }

    /// Fully qualified display name.
    pub fn qualified_name(&self) -> String {
        if self.qualifier.is_empty() {
            self.name.clone()
        } else {
            format!("{}.{}", self.qualifier, self.name)
        }
    }

    /// Whether `pattern` (either `name` or `qualifier.name`) refers to this
    /// field.
    pub fn matches(&self, pattern: &str) -> bool {
        match pattern.split_once('.') {
            Some((q, n)) => self.qualifier == q && self.name == n,
            None => self.name == pattern,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.qualified_name(), self.data_type)
    }
}

/// An ordered list of [`Field`]s describing a tuple stream. Cheap to clone
/// (shared buffer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// Convenience constructor: `Schema::of("rel", &[("a", Int), ("b", Str)])`.
    pub fn of(qualifier: &str, cols: &[(&str, DataType)]) -> Self {
        Schema::new(
            cols.iter()
                .map(|(n, t)| Field::new(qualifier, *n, *t))
                .collect(),
        )
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Resolve a column reference (`name` or `qualifier.name`) to its index.
    ///
    /// Errors if the reference is ambiguous (matches more than one column)
    /// or unknown — both are planner bugs that should surface loudly.
    pub fn index_of(&self, pattern: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.matches(pattern) {
                if found.is_some() {
                    return Err(TukwilaError::Schema(format!(
                        "ambiguous column reference `{pattern}`"
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            TukwilaError::Schema(format!(
                "unknown column `{pattern}` (have: {})",
                self.fields
                    .iter()
                    .map(Field::qualified_name)
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Concatenate two schemas (join output schema).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut fields = Vec::with_capacity(self.arity() + other.arity());
        fields.extend_from_slice(&self.fields);
        fields.extend_from_slice(&other.fields);
        Schema::new(fields)
    }

    /// Project onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Re-qualify every field (used when materializing a fragment result
    /// under a fresh temp-table name).
    pub fn requalify(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.fields
                .iter()
                .map(|f| Field::new(qualifier, f.name.clone(), f.data_type))
                .collect(),
        )
    }

    /// Column indices shared by name with `other` (for natural-join style
    /// key inference in the reformulator).
    pub fn common_columns(&self, other: &Schema) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, f) in self.fields.iter().enumerate() {
            for (j, g) in other.fields.iter().enumerate() {
                if f.name == g.name {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{field}")?;
        }
        f.write_str("]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(
            "r",
            &[
                ("a", DataType::Int),
                ("b", DataType::Str),
                ("c", DataType::Double),
            ],
        )
    }

    #[test]
    fn resolve_unqualified() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
    }

    #[test]
    fn resolve_qualified() {
        let s = abc();
        assert_eq!(s.index_of("r.c").unwrap(), 2);
        assert!(s.index_of("x.c").is_err());
    }

    #[test]
    fn unknown_column_is_error() {
        let err = abc().index_of("zz").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("zz"), "message should name the column: {msg}");
    }

    #[test]
    fn ambiguity_detected_after_concat() {
        let s = abc().concat(&Schema::of("s", &[("a", DataType::Int)]));
        assert!(s.index_of("a").is_err());
        assert_eq!(s.index_of("r.a").unwrap(), 0);
        assert_eq!(s.index_of("s.a").unwrap(), 3);
    }

    #[test]
    fn concat_arity() {
        let s = abc().concat(&abc());
        assert_eq!(s.arity(), 6);
    }

    #[test]
    fn project_keeps_field_metadata() {
        let s = abc().project(&[2, 0]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.field(0).name, "c");
        assert_eq!(s.field(1).name, "a");
    }

    #[test]
    fn requalify_renames_all() {
        let s = abc().requalify("tmp1");
        assert!(s.fields().iter().all(|f| f.qualifier == "tmp1"));
        assert_eq!(s.index_of("tmp1.b").unwrap(), 1);
    }

    #[test]
    fn common_columns_by_name() {
        let r = Schema::of("r", &[("k", DataType::Int), ("x", DataType::Int)]);
        let s = Schema::of("s", &[("y", DataType::Int), ("k", DataType::Int)]);
        assert_eq!(r.common_columns(&s), vec![(0, 1)]);
    }

    #[test]
    fn display_is_readable() {
        let s = Schema::of("r", &[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "[r.a:INT]");
    }
}
