//! Columnar batch layout: typed column vectors, validity bitmaps, and
//! type-specialized kernels.
//!
//! The row-major `Tuple` representation pays a `Value` enum discriminant
//! branch per field per row on every filter, hash, and compare. A
//! [`ColumnarBatch`] stores the same block of rows as per-column typed
//! vectors ([`Column`]): `Int64`/`Float64`/`Str`/`Date` payloads with an
//! optional validity [`Bitmap`] for NULLs, plus a [`Column::Values`]
//! fallback for heterogeneous columns. Kernels then run tight loops over
//! native slices:
//!
//! * **predicate evaluation** produces a selection [`Bitmap`] without
//!   materializing rows (`Filter` intersects bitmaps instead of rebuilding
//!   batches);
//! * **key prehashing** ([`Column::hash_append`]) produces the per-row hash
//!   vector the joins, exchange routing, and bucketed tables consume,
//!   replicating the row path's `Value::hash` byte sequence exactly so
//!   bucket/partition routing is byte-stable across representations;
//! * **gather** ([`Column::gather`]) applies a selection by index — late
//!   materialization instead of row-wise rebuilds.
//!
//! Rows are still available everywhere: [`ColumnarBatch::materialize_rows`]
//! builds the whole block's `Tuple` views in one shared allocation, and
//! `TupleBatch` caches that lazily, so operators migrate to columnar
//! kernels incrementally.

use std::sync::Arc;

use crate::hash::FxHasher;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::{DataType, Value};
use std::hash::{Hash, Hasher};

/// A fixed-length bitmap (one bit per row). Used both for column validity
/// (set = non-NULL) and for predicate selections (set = row passes). Bits
/// past `len` in the last word are always zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// A bitmap of `len` zero bits.
    pub fn all_clear(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` one bits.
    pub fn all_set(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(w) = self.words.last_mut() {
                *w &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is set.
    pub fn is_all_set(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Whether no bit is set.
    pub fn is_all_clear(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self &= other` (bitmap intersect). Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`. Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self = !self` (tail bits stay zero).
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Indices of the set bits, ascending.
    pub fn set_indices(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros();
                out.push((wi * 64) as u32 + b);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// A selection over a batch: the rows a predicate kept. Wraps a [`Bitmap`]
/// with a cached population count so the all-pass / none-pass fast paths
/// are O(1) checks at every consumer.
#[derive(Debug, Clone)]
pub struct Selection {
    bits: Bitmap,
    count: usize,
}

impl Selection {
    /// Wrap a bitmap (counts the set bits once).
    pub fn from_bitmap(bits: Bitmap) -> Selection {
        let count = bits.count_ones();
        Selection { bits, count }
    }

    /// A selection keeping every one of `len` rows.
    pub fn keep_all(len: usize) -> Selection {
        Selection {
            bits: Bitmap::all_set(len),
            count: len,
        }
    }

    /// A selection keeping none of `len` rows.
    pub fn keep_none(len: usize) -> Selection {
        Selection {
            bits: Bitmap::all_clear(len),
            count: 0,
        }
    }

    /// Rows covered.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the selection covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.bits.len() == 0
    }

    /// Rows kept.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether every row is kept (the pass-through fast path).
    pub fn is_all(&self) -> bool {
        self.count == self.bits.len()
    }

    /// Whether no row is kept (the drop fast path).
    pub fn is_none(&self) -> bool {
        self.count == 0
    }

    /// Whether row `i` is kept.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// The underlying bitmap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bits
    }

    /// Indices of the kept rows, ascending.
    pub fn indices(&self) -> Vec<u32> {
        self.bits.set_indices()
    }

    /// Intersect with another selection (`retain` becomes a bitmap AND).
    pub fn intersect(&mut self, other: &Selection) {
        self.bits.and_assign(&other.bits);
        self.count = self.bits.count_ones();
    }
}

// ---------------------------------------------------------------------------
// Typed hash kernels
// ---------------------------------------------------------------------------
//
// Each kernel replicates `Value::hash` through `FxHasher` *by construction*:
// it performs the identical `Hash` calls (type-tag byte, then payload), so
// hash(column kernel) ≡ hash(per-tuple `JoinKey`) for every type — bucket
// and partition routing are byte-stable across the row/columnar refactor.
// Pinned by `hash_kernel_matches_value_hash` below and the exec-side
// equivalence suite.

#[inline]
fn hash_int_into(h: &mut FxHasher, v: i64) {
    0u8.hash(h);
    v.hash(h);
}

#[inline]
fn hash_double_into(h: &mut FxHasher, v: f64) {
    1u8.hash(h);
    v.to_bits().hash(h);
}

#[inline]
fn hash_str_into(h: &mut FxHasher, v: &str) {
    2u8.hash(h);
    v.hash(h);
}

#[inline]
fn hash_date_into(h: &mut FxHasher, v: i32) {
    3u8.hash(h);
    v.hash(h);
}

#[inline]
fn finish_one(f: impl FnOnce(&mut FxHasher)) -> u64 {
    let mut h = FxHasher::new();
    f(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------------

/// One column of a [`ColumnarBatch`]: a typed vector plus an optional
/// validity bitmap (`None` = no NULLs; a clear bit marks SQL NULL, with the
/// payload slot holding a type default). Columns whose values do not fit
/// one type degrade to the [`Column::Values`] fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64(Vec<i64>, Option<Bitmap>),
    /// 64-bit floats (bit-stable: NaN and -0.0 round-trip exactly).
    Float64(Vec<f64>, Option<Bitmap>),
    /// Shared strings.
    Str(Vec<Arc<str>>, Option<Bitmap>),
    /// Days since the epoch.
    Date(Vec<i32>, Option<Bitmap>),
    /// Heterogeneous fallback: a plain value vector.
    Values(Vec<Value>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v, _) => v.len(),
            Column::Float64(v, _) => v.len(),
            Column::Str(v, _) => v.len(),
            Column::Date(v, _) => v.len(),
            Column::Values(v) => v.len(),
        }
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap, when the column is typed and has NULLs.
    pub fn validity(&self) -> Option<&Bitmap> {
        match self {
            Column::Int64(_, v)
            | Column::Float64(_, v)
            | Column::Str(_, v)
            | Column::Date(_, v) => v.as_ref(),
            Column::Values(_) => None,
        }
    }

    /// Typed accessor: `(payload, validity)` for an `Int64` column.
    pub fn as_int64(&self) -> Option<(&[i64], Option<&Bitmap>)> {
        match self {
            Column::Int64(v, b) => Some((v, b.as_ref())),
            _ => None,
        }
    }

    /// Typed accessor for a `Float64` column.
    pub fn as_float64(&self) -> Option<(&[f64], Option<&Bitmap>)> {
        match self {
            Column::Float64(v, b) => Some((v, b.as_ref())),
            _ => None,
        }
    }

    /// Typed accessor for a `Str` column.
    pub fn as_str_col(&self) -> Option<(&[Arc<str>], Option<&Bitmap>)> {
        match self {
            Column::Str(v, b) => Some((v, b.as_ref())),
            _ => None,
        }
    }

    /// Typed accessor for a `Date` column.
    pub fn as_date(&self) -> Option<(&[i32], Option<&Bitmap>)> {
        match self {
            Column::Date(v, b) => Some((v, b.as_ref())),
            _ => None,
        }
    }

    #[inline]
    fn valid(validity: &Option<Bitmap>, i: usize) -> bool {
        validity.as_ref().is_none_or(|b| b.get(i))
    }

    /// The value at row `i` as an owned [`Value`] (string rows cost one
    /// refcount bump).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int64(v, b) => {
                if Self::valid(b, i) {
                    Value::Int(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Float64(v, b) => {
                if Self::valid(b, i) {
                    Value::Double(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Str(v, b) => {
                if Self::valid(b, i) {
                    Value::Str(v[i].clone())
                } else {
                    Value::Null
                }
            }
            Column::Date(v, b) => {
                if Self::valid(b, i) {
                    Value::Date(v[i])
                } else {
                    Value::Null
                }
            }
            Column::Values(v) => v[i].clone(),
        }
    }

    /// Bytes of payload beyond the per-value base charge (string bytes) —
    /// the columnar `mem_size` formula's variable part, matching what the
    /// materialized rows would report.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Column::Str(v, b) => v
                .iter()
                .enumerate()
                .filter(|(i, _)| Self::valid(b, *i))
                .map(|(_, s)| s.len())
                .sum(),
            Column::Values(v) => v
                .iter()
                .map(|x| x.mem_size() - crate::value::VALUE_BASE_BYTES)
                .sum(),
            _ => 0,
        }
    }

    /// Copy rows `start..end` into a new column.
    pub fn slice(&self, start: usize, end: usize) -> Column {
        fn slice_validity(b: &Option<Bitmap>, start: usize, end: usize) -> Option<Bitmap> {
            b.as_ref().map(|bm| {
                let mut out = Bitmap::all_clear(end - start);
                for i in start..end {
                    if bm.get(i) {
                        out.set(i - start);
                    }
                }
                out
            })
        }
        match self {
            Column::Int64(v, b) => {
                Column::Int64(v[start..end].to_vec(), slice_validity(b, start, end))
            }
            Column::Float64(v, b) => {
                Column::Float64(v[start..end].to_vec(), slice_validity(b, start, end))
            }
            Column::Str(v, b) => Column::Str(v[start..end].to_vec(), slice_validity(b, start, end)),
            Column::Date(v, b) => {
                Column::Date(v[start..end].to_vec(), slice_validity(b, start, end))
            }
            Column::Values(v) => Column::Values(v[start..end].to_vec()),
        }
    }

    /// Gather rows by index into a new column (late materialization).
    pub fn gather(&self, idx: &[u32]) -> Column {
        fn gather_validity(b: &Option<Bitmap>, idx: &[u32]) -> Option<Bitmap> {
            b.as_ref().map(|bm| {
                let mut out = Bitmap::all_clear(idx.len());
                for (o, &i) in idx.iter().enumerate() {
                    if bm.get(i as usize) {
                        out.set(o);
                    }
                }
                out
            })
        }
        match self {
            Column::Int64(v, b) => Column::Int64(
                idx.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(b, idx),
            ),
            Column::Float64(v, b) => Column::Float64(
                idx.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(b, idx),
            ),
            Column::Str(v, b) => Column::Str(
                idx.iter().map(|&i| v[i as usize].clone()).collect(),
                gather_validity(b, idx),
            ),
            Column::Date(v, b) => Column::Date(
                idx.iter().map(|&i| v[i as usize]).collect(),
                gather_validity(b, idx),
            ),
            Column::Values(v) => {
                Column::Values(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Reserve capacity for at least `additional` more rows in the value
    /// buffer (bulk append paths size their destination once up front).
    pub fn reserve(&mut self, additional: usize) {
        match self {
            Column::Int64(v, _) => v.reserve(additional),
            Column::Float64(v, _) => v.reserve(additional),
            Column::Str(v, _) => v.reserve(additional),
            Column::Date(v, _) => v.reserve(additional),
            Column::Values(v) => v.reserve(additional),
        }
    }

    /// Append `other`'s rows onto `self`. Returns `false` (leaving `self`
    /// untouched) when the variants differ — the caller falls back to rows.
    pub fn append(&mut self, other: &Column) -> bool {
        fn merge_validity(
            dst: &mut Option<Bitmap>,
            dst_len: usize,
            src: &Option<Bitmap>,
            src_len: usize,
        ) {
            if dst.is_none() && src.is_none() {
                return;
            }
            let mut out = Bitmap::all_clear(dst_len + src_len);
            for i in 0..dst_len {
                if dst.as_ref().is_none_or(|b| b.get(i)) {
                    out.set(i);
                }
            }
            for i in 0..src_len {
                if src.as_ref().is_none_or(|b| b.get(i)) {
                    out.set(dst_len + i);
                }
            }
            *dst = Some(out);
        }
        match (self, other) {
            (Column::Int64(a, ab), Column::Int64(b, bb)) => {
                merge_validity(ab, a.len(), bb, b.len());
                a.extend_from_slice(b);
                true
            }
            (Column::Float64(a, ab), Column::Float64(b, bb)) => {
                merge_validity(ab, a.len(), bb, b.len());
                a.extend_from_slice(b);
                true
            }
            (Column::Str(a, ab), Column::Str(b, bb)) => {
                merge_validity(ab, a.len(), bb, b.len());
                a.extend_from_slice(b);
                true
            }
            (Column::Date(a, ab), Column::Date(b, bb)) => {
                merge_validity(ab, a.len(), bb, b.len());
                a.extend_from_slice(b);
                true
            }
            (Column::Values(a), Column::Values(b)) => {
                a.extend_from_slice(b);
                true
            }
            _ => false,
        }
    }

    /// Write this column's rows into a row-major block at stride `ncols`,
    /// offset `c` (the materialization inner loop). Slots for NULL rows are
    /// left untouched (the caller pre-fills with `Value::Null`).
    fn write_strided(&self, block: &mut [Value], c: usize, ncols: usize) {
        match self {
            Column::Int64(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    if Self::valid(b, i) {
                        block[i * ncols + c] = Value::Int(x);
                    }
                }
            }
            Column::Float64(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    if Self::valid(b, i) {
                        block[i * ncols + c] = Value::Double(x);
                    }
                }
            }
            Column::Str(v, b) => {
                for (i, x) in v.iter().enumerate() {
                    if Self::valid(b, i) {
                        block[i * ncols + c] = Value::Str(x.clone());
                    }
                }
            }
            Column::Date(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    if Self::valid(b, i) {
                        block[i * ncols + c] = Value::Date(x);
                    }
                }
            }
            Column::Values(v) => {
                for (i, x) in v.iter().enumerate() {
                    block[i * ncols + c] = x.clone();
                }
            }
        }
    }

    /// Single-column key prehash kernel: append one `Option<u64>` per row
    /// (`None` = NULL key; such rows never join). Produces exactly the
    /// per-tuple `fx_hash(Value)` of the row path.
    pub fn hash_append(&self, out: &mut Vec<Option<u64>>) {
        match self {
            Column::Int64(v, b) => match b {
                None => out.extend(v.iter().map(|&x| Some(finish_one(|h| hash_int_into(h, x))))),
                Some(bm) => out.extend(
                    v.iter()
                        .enumerate()
                        .map(|(i, &x)| bm.get(i).then(|| finish_one(|h| hash_int_into(h, x)))),
                ),
            },
            Column::Float64(v, b) => match b {
                None => out.extend(
                    v.iter()
                        .map(|&x| Some(finish_one(|h| hash_double_into(h, x)))),
                ),
                Some(bm) => out.extend(
                    v.iter()
                        .enumerate()
                        .map(|(i, &x)| bm.get(i).then(|| finish_one(|h| hash_double_into(h, x)))),
                ),
            },
            Column::Str(v, b) => match b {
                None => out.extend(v.iter().map(|x| Some(finish_one(|h| hash_str_into(h, x))))),
                Some(bm) => out.extend(
                    v.iter()
                        .enumerate()
                        .map(|(i, x)| bm.get(i).then(|| finish_one(|h| hash_str_into(h, x)))),
                ),
            },
            Column::Date(v, b) => match b {
                None => out.extend(
                    v.iter()
                        .map(|&x| Some(finish_one(|h| hash_date_into(h, x)))),
                ),
                Some(bm) => out.extend(
                    v.iter()
                        .enumerate()
                        .map(|(i, &x)| bm.get(i).then(|| finish_one(|h| hash_date_into(h, x)))),
                ),
            },
            Column::Values(v) => out.extend(v.iter().map(|x| {
                if x.is_null() {
                    None
                } else {
                    Some(crate::hash::fx_hash(x))
                }
            })),
        }
    }

    /// Composite-key kernel step: fold this column's values into the per-row
    /// hasher states (`None` = a NULL component was seen; the row's key
    /// never joins). Feeding the columns of a composite key left-to-right
    /// reproduces `KeyVector::hash_tuple_key` exactly.
    pub fn hash_fold(&self, acc: &mut [Option<FxHasher>]) {
        debug_assert_eq!(acc.len(), self.len());
        match self {
            Column::Int64(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    match &mut acc[i] {
                        Some(h) if Self::valid(b, i) => hash_int_into(h, x),
                        slot => *slot = if Self::valid(b, i) { slot.take() } else { None },
                    }
                }
            }
            Column::Float64(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    match &mut acc[i] {
                        Some(h) if Self::valid(b, i) => hash_double_into(h, x),
                        slot => *slot = if Self::valid(b, i) { slot.take() } else { None },
                    }
                }
            }
            Column::Str(v, b) => {
                for (i, x) in v.iter().enumerate() {
                    match &mut acc[i] {
                        Some(h) if Self::valid(b, i) => hash_str_into(h, x),
                        slot => *slot = if Self::valid(b, i) { slot.take() } else { None },
                    }
                }
            }
            Column::Date(v, b) => {
                for (i, &x) in v.iter().enumerate() {
                    match &mut acc[i] {
                        Some(h) if Self::valid(b, i) => hash_date_into(h, x),
                        slot => *slot = if Self::valid(b, i) { slot.take() } else { None },
                    }
                }
            }
            Column::Values(v) => {
                for (i, x) in v.iter().enumerate() {
                    match (&mut acc[i], x.is_null()) {
                        (Some(h), false) => x.hash(h),
                        (slot, true) => *slot = None,
                        _ => {}
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ColumnBuilder
// ---------------------------------------------------------------------------

/// Incrementally builds one [`Column`] from values. Starts typed (by schema
/// hint or first non-NULL value) and degrades to [`Column::Values`] if a
/// mismatched value arrives — schema lies cost performance, never
/// correctness.
#[derive(Debug)]
pub enum ColumnBuilder {
    /// Only NULLs seen so far (type not yet decided).
    Pending(usize),
    /// Building an `Int64` column; `nulls` holds NULL row indices.
    Int64(Vec<i64>, Vec<u32>),
    /// Building a `Float64` column.
    Float64(Vec<f64>, Vec<u32>),
    /// Building a `Str` column.
    Str(Vec<Arc<str>>, Vec<u32>),
    /// Building a `Date` column.
    Date(Vec<i32>, Vec<u32>),
    /// Heterogeneous fallback.
    Values(Vec<Value>),
}

fn nulls_to_validity(len: usize, nulls: &[u32]) -> Option<Bitmap> {
    if nulls.is_empty() {
        return None;
    }
    let mut b = Bitmap::all_set(len);
    for &i in nulls {
        b.clear(i as usize);
    }
    Some(b)
}

impl ColumnBuilder {
    /// An empty builder typed by a schema [`DataType`] hint.
    pub fn for_type(dt: DataType) -> ColumnBuilder {
        match dt {
            DataType::Int => ColumnBuilder::Int64(Vec::new(), Vec::new()),
            DataType::Double => ColumnBuilder::Float64(Vec::new(), Vec::new()),
            DataType::Str => ColumnBuilder::Str(Vec::new(), Vec::new()),
            DataType::Date => ColumnBuilder::Date(Vec::new(), Vec::new()),
            DataType::Null => ColumnBuilder::Values(Vec::new()),
        }
    }

    /// An empty builder that decides its type from the first non-NULL value.
    pub fn auto() -> ColumnBuilder {
        ColumnBuilder::Pending(0)
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Pending(n) => *n,
            ColumnBuilder::Int64(v, _) => v.len(),
            ColumnBuilder::Float64(v, _) => v.len(),
            ColumnBuilder::Str(v, _) => v.len(),
            ColumnBuilder::Date(v, _) => v.len(),
            ColumnBuilder::Values(v) => v.len(),
        }
    }

    /// Whether no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn degrade(&mut self) {
        let values = match std::mem::replace(self, ColumnBuilder::Values(Vec::new())) {
            ColumnBuilder::Pending(n) => vec![Value::Null; n],
            ColumnBuilder::Int64(v, nulls) => rebuild(v, &nulls, Value::Int),
            ColumnBuilder::Float64(v, nulls) => rebuild(v, &nulls, Value::Double),
            ColumnBuilder::Str(v, nulls) => rebuild(v, &nulls, Value::Str),
            ColumnBuilder::Date(v, nulls) => rebuild(v, &nulls, Value::Date),
            ColumnBuilder::Values(v) => v,
        };
        *self = ColumnBuilder::Values(values);

        fn rebuild<T>(vals: Vec<T>, nulls: &[u32], wrap: impl Fn(T) -> Value) -> Vec<Value> {
            let mut ni = 0usize;
            vals.into_iter()
                .enumerate()
                .map(|(i, x)| {
                    if ni < nulls.len() && nulls[ni] as usize == i {
                        ni += 1;
                        Value::Null
                    } else {
                        wrap(x)
                    }
                })
                .collect()
        }
    }

    /// Append one value.
    #[inline]
    pub fn push(&mut self, v: &Value) {
        match (&mut *self, v) {
            (ColumnBuilder::Int64(vals, _), Value::Int(x)) => vals.push(*x),
            (ColumnBuilder::Float64(vals, _), Value::Double(x)) => vals.push(*x),
            (ColumnBuilder::Str(vals, _), Value::Str(x)) => vals.push(x.clone()),
            (ColumnBuilder::Date(vals, _), Value::Date(x)) => vals.push(*x),
            (ColumnBuilder::Values(vals), v) => vals.push(v.clone()),
            (ColumnBuilder::Pending(n), Value::Null) => *n += 1,
            (ColumnBuilder::Pending(n), v) => {
                let nulls: Vec<u32> = (0..*n as u32).collect();
                let pending = *n;
                *self = match v {
                    Value::Int(x) => {
                        let mut vals = vec![0i64; pending];
                        vals.push(*x);
                        ColumnBuilder::Int64(vals, nulls)
                    }
                    Value::Double(x) => {
                        let mut vals = vec![0f64; pending];
                        vals.push(*x);
                        ColumnBuilder::Float64(vals, nulls)
                    }
                    Value::Str(x) => {
                        let empty: Arc<str> = Arc::from("");
                        let mut vals = vec![empty; pending];
                        vals.push(x.clone());
                        ColumnBuilder::Str(vals, nulls)
                    }
                    Value::Date(x) => {
                        let mut vals = vec![0i32; pending];
                        vals.push(*x);
                        ColumnBuilder::Date(vals, nulls)
                    }
                    Value::Null => unreachable!("handled above"),
                };
            }
            (ColumnBuilder::Int64(vals, nulls), Value::Null) => {
                nulls.push(vals.len() as u32);
                vals.push(0);
            }
            (ColumnBuilder::Float64(vals, nulls), Value::Null) => {
                nulls.push(vals.len() as u32);
                vals.push(0.0);
            }
            (ColumnBuilder::Str(vals, nulls), Value::Null) => {
                nulls.push(vals.len() as u32);
                vals.push(Arc::from(""));
            }
            (ColumnBuilder::Date(vals, nulls), Value::Null) => {
                nulls.push(vals.len() as u32);
                vals.push(0);
            }
            // Type mismatch: degrade to the fallback and retry.
            _ => {
                self.degrade();
                self.push(v);
            }
        }
    }

    /// Finish into a [`Column`].
    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::Pending(n) => Column::Values(vec![Value::Null; n]),
            ColumnBuilder::Int64(v, nulls) => {
                let validity = nulls_to_validity(v.len(), &nulls);
                Column::Int64(v, validity)
            }
            ColumnBuilder::Float64(v, nulls) => {
                let validity = nulls_to_validity(v.len(), &nulls);
                Column::Float64(v, validity)
            }
            ColumnBuilder::Str(v, nulls) => {
                let validity = nulls_to_validity(v.len(), &nulls);
                Column::Str(v, validity)
            }
            ColumnBuilder::Date(v, nulls) => {
                let validity = nulls_to_validity(v.len(), &nulls);
                Column::Date(v, validity)
            }
            ColumnBuilder::Values(v) => Column::Values(v),
        }
    }
}

// ---------------------------------------------------------------------------
// ColumnarBatch
// ---------------------------------------------------------------------------

/// A block of rows stored column-major: `cols[c]` holds row values for
/// column `c`, every column the same length. Columns are `Arc`-shared so
/// projection and batch slicing by whole columns are refcount bumps.
#[derive(Debug, Clone)]
pub struct ColumnarBatch {
    len: usize,
    cols: Vec<Arc<Column>>,
}

impl ColumnarBatch {
    /// Assemble from columns (all must share `len` rows).
    pub fn new(len: usize, cols: Vec<Column>) -> ColumnarBatch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        ColumnarBatch {
            len,
            cols: cols.into_iter().map(Arc::new).collect(),
        }
    }

    /// Assemble from already-shared columns.
    pub fn from_shared(len: usize, cols: Vec<Arc<Column>>) -> ColumnarBatch {
        debug_assert!(cols.iter().all(|c| c.len() == len));
        ColumnarBatch { len, cols }
    }

    /// Convert a slice of rows (type inferred per column from the data).
    pub fn from_rows(rows: &[Tuple]) -> ColumnarBatch {
        let ncols = rows.first().map_or(0, Tuple::arity);
        let mut builders: Vec<ColumnBuilder> = (0..ncols).map(|_| ColumnBuilder::auto()).collect();
        for t in rows {
            debug_assert_eq!(t.arity(), ncols, "ragged rows in columnar conversion");
            for (b, v) in builders.iter_mut().zip(t.values()) {
                b.push(v);
            }
        }
        ColumnarBatch::new(
            rows.len(),
            builders.into_iter().map(ColumnBuilder::finish).collect(),
        )
    }

    /// Rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Column `c`.
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// Shared handle to column `c`.
    pub fn col_shared(&self, c: usize) -> &Arc<Column> {
        &self.cols[c]
    }

    /// Project onto `indices` — shares the column buffers (refcount bumps,
    /// no data copy): the columnar late-materialization win for `Project`.
    pub fn project(&self, indices: &[usize]) -> ColumnarBatch {
        ColumnarBatch {
            len: self.len,
            cols: indices.iter().map(|&i| self.cols[i].clone()).collect(),
        }
    }

    /// Copy rows `start..end` into a new batch.
    pub fn slice(&self, start: usize, end: usize) -> ColumnarBatch {
        debug_assert!(start <= end && end <= self.len);
        ColumnarBatch {
            len: end - start,
            cols: self
                .cols
                .iter()
                .map(|c| Arc::new(c.slice(start, end)))
                .collect(),
        }
    }

    /// Gather rows by index into a new batch (apply a selection).
    pub fn gather(&self, idx: &[u32]) -> ColumnarBatch {
        ColumnarBatch {
            len: idx.len(),
            cols: self.cols.iter().map(|c| Arc::new(c.gather(idx))).collect(),
        }
    }

    /// Concatenate many batches column-wise. Returns `None` when layouts
    /// disagree (column count or a column's type) — the caller falls back
    /// to row concatenation. A single input batch shares its column `Arc`s
    /// (no copy); otherwise every destination buffer is reserved to the
    /// total row count up front so appending never reallocates mid-stream.
    pub fn concat<'a>(batches: impl Iterator<Item = &'a ColumnarBatch>) -> Option<ColumnarBatch> {
        let batches: Vec<&ColumnarBatch> = batches.collect();
        let (first, rest) = batches.split_first()?;
        if rest.is_empty() {
            return Some(ColumnarBatch {
                len: first.len,
                cols: first.cols.clone(),
            });
        }
        let total: usize = batches.iter().map(|b| b.len).sum();
        let mut len = first.len;
        let mut cols: Vec<Column> = first
            .cols
            .iter()
            .map(|c| {
                let mut col = (**c).clone();
                col.reserve(total - first.len);
                col
            })
            .collect();
        for b in rest {
            if b.cols.len() != cols.len() {
                return None;
            }
            for (dst, src) in cols.iter_mut().zip(&b.cols) {
                if !dst.append(src) {
                    return None;
                }
            }
            len += b.len;
        }
        Some(ColumnarBatch::new(len, cols))
    }

    /// Concatenate two batches **horizontally**: the rows of `left` and
    /// `right` (same length) side by side, sharing both inputs' column
    /// buffers. The join emit path stitches a gathered probe half onto a
    /// rebuilt match half with this.
    pub fn hstack(left: ColumnarBatch, right: ColumnarBatch) -> ColumnarBatch {
        debug_assert_eq!(left.len, right.len, "hstack row counts must agree");
        let mut cols = left.cols;
        cols.extend(right.cols);
        ColumnarBatch {
            len: left.len,
            cols,
        }
    }

    /// Total payload bytes beyond the per-value base charge (string bytes).
    pub fn payload_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.payload_bytes()).sum()
    }

    /// Build every row's `Tuple` view in **one** shared block allocation
    /// (the lazy compatibility adapter `TupleBatch` caches).
    pub fn materialize_rows(&self) -> Vec<Tuple> {
        let ncols = self.cols.len();
        let mut block: Vec<Value> = vec![Value::Null; self.len * ncols];
        for (c, col) in self.cols.iter().enumerate() {
            col.write_strided(&mut block, c, ncols);
        }
        let block: Arc<[Value]> = block.into();
        (0..self.len)
            .map(|i| Tuple::view(block.clone(), i * ncols, ncols))
            .collect()
    }

    /// The row at `i` as owned values (cold paths only).
    pub fn row_values(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.value_at(i)).collect()
    }
}

// ---------------------------------------------------------------------------
// ColumnarAssembler
// ---------------------------------------------------------------------------

/// Typed columnar row assembly: the join emit path's replacement for
/// value-vector concatenation. Output columns are typed straight from the
/// operator's output schema; each appended row pushes native payloads (one
/// branch per value) instead of cloning `Value`s into a row block, and the
/// sealed batch is already columnar for every downstream consumer.
pub struct ColumnarAssembler {
    capacity: usize,
    kinds: Vec<DataType>,
    builders: Vec<ColumnBuilder>,
    rows: usize,
}

impl ColumnarAssembler {
    /// An assembler sealing batches of `capacity` rows with the given
    /// column types.
    pub fn new(capacity: usize, kinds: Vec<DataType>) -> ColumnarAssembler {
        let builders = kinds
            .iter()
            .map(|&dt| ColumnBuilder::for_type(dt))
            .collect();
        ColumnarAssembler {
            capacity: capacity.max(1),
            kinds,
            builders,
            rows: 0,
        }
    }

    /// An assembler typed by an output schema.
    pub fn from_schema(capacity: usize, schema: &Schema) -> ColumnarAssembler {
        ColumnarAssembler::new(
            capacity,
            schema.fields().iter().map(|f| f.data_type).collect(),
        )
    }

    /// An empty assembler with the same capacity and column types.
    pub fn fresh(&self) -> ColumnarAssembler {
        ColumnarAssembler::new(self.capacity, self.kinds.clone())
    }

    /// Rows currently buffered (unsealed).
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Whether the assembler holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Whether a sealed batch is due.
    pub fn is_full(&self) -> bool {
        self.rows >= self.capacity
    }

    /// Append the concatenation `a ++ b` as one row (join emit).
    #[inline]
    pub fn push_concat(&mut self, a: &Tuple, b: &Tuple) {
        debug_assert_eq!(a.arity() + b.arity(), self.builders.len());
        for (builder, v) in self
            .builders
            .iter_mut()
            .zip(a.values().iter().chain(b.values()))
        {
            builder.push(v);
        }
        self.rows += 1;
    }

    /// Append a copy of `t` as one row.
    #[inline]
    pub fn push_tuple(&mut self, t: &Tuple) {
        debug_assert_eq!(t.arity(), self.builders.len());
        for (builder, v) in self.builders.iter_mut().zip(t.values()) {
            builder.push(v);
        }
        self.rows += 1;
    }

    /// Append `t` projected onto `indices` as one row.
    #[inline]
    pub fn push_project(&mut self, t: &Tuple, indices: &[usize]) {
        debug_assert_eq!(indices.len(), self.builders.len());
        let vals = t.values();
        for (builder, &i) in self.builders.iter_mut().zip(indices) {
            builder.push(&vals[i]);
        }
        self.rows += 1;
    }

    /// Seal everything buffered into one columnar batch; `None` when empty.
    /// The assembler is reusable afterwards.
    pub fn seal(&mut self) -> Option<ColumnarBatch> {
        if self.rows == 0 {
            return None;
        }
        let fresh: Vec<ColumnBuilder> = self
            .kinds
            .iter()
            .map(|&dt| ColumnBuilder::for_type(dt))
            .collect();
        let built = std::mem::replace(&mut self.builders, fresh);
        let rows = self.rows;
        self.rows = 0;
        Some(ColumnarBatch::new(
            rows,
            built.into_iter().map(ColumnBuilder::finish).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash;
    use crate::tuple;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::all_clear(70);
        assert!(b.is_all_clear());
        b.set(0);
        b.set(69);
        assert!(b.get(0) && b.get(69) && !b.get(35));
        assert_eq!(b.count_ones(), 2);
        assert_eq!(b.set_indices(), vec![0, 69]);
        b.not_assign();
        assert_eq!(b.count_ones(), 68);
        let all = Bitmap::all_set(70);
        assert!(all.is_all_set());
        assert_eq!(all.count_ones(), 70);
    }

    #[test]
    fn bitmap_ops_mask_tail() {
        let mut a = Bitmap::all_set(3);
        let b = Bitmap::all_clear(3);
        a.or_assign(&b);
        assert_eq!(a.count_ones(), 3);
        a.and_assign(&b);
        assert!(a.is_all_clear());
        a.not_assign();
        assert_eq!(a.count_ones(), 3); // tail bits beyond len stay clear
    }

    #[test]
    fn selection_fast_path_flags() {
        let all = Selection::keep_all(5);
        assert!(all.is_all() && !all.is_none());
        let none = Selection::keep_none(5);
        assert!(none.is_none() && !none.is_all());
        let mut bits = Bitmap::all_clear(5);
        bits.set(2);
        let sel = Selection::from_bitmap(bits);
        assert_eq!(sel.count(), 1);
        assert_eq!(sel.indices(), vec![2]);
    }

    /// The typed kernels must reproduce `Value::hash` through `FxHasher`
    /// exactly — including NULL (no hash), -0.0 vs 0.0 (distinct bits),
    /// and NaN (bit-stable).
    #[test]
    fn hash_kernel_matches_value_hash() {
        let values = vec![
            Value::Int(42),
            Value::Int(i64::MIN),
            Value::Double(2.5),
            Value::Double(-0.0),
            Value::Double(0.0),
            Value::Double(f64::NAN),
            Value::str(""),
            Value::str("tukwila"),
            Value::Date(0),
            Value::Date(-9999),
            Value::Null,
        ];
        for v in &values {
            let col = ColumnarBatch::from_rows(&[Tuple::new(vec![v.clone()])]);
            let mut hashes = Vec::new();
            col.col(0).hash_append(&mut hashes);
            let want = if v.is_null() { None } else { Some(fx_hash(v)) };
            assert_eq!(hashes[0], want, "kernel hash mismatch for {v:?}");
        }
        // A whole mixed-type column (Values fallback) also agrees.
        let rows: Vec<Tuple> = values.iter().map(|v| Tuple::new(vec![v.clone()])).collect();
        let mixed = ColumnarBatch::from_rows(&rows);
        let mut hashes = Vec::new();
        mixed.col(0).hash_append(&mut hashes);
        for (h, v) in hashes.iter().zip(&values) {
            let want = if v.is_null() { None } else { Some(fx_hash(v)) };
            assert_eq!(*h, want);
        }
    }

    #[test]
    fn from_rows_infers_types_and_validity() {
        let rows = vec![
            Tuple::new(vec![Value::Null, Value::str("a")]),
            Tuple::new(vec![Value::Int(7), Value::str("b")]),
            Tuple::new(vec![Value::Null, Value::str("c")]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        let (ints, validity) = cb.col(0).as_int64().expect("int column");
        assert_eq!(ints[1], 7);
        let validity = validity.expect("has NULLs");
        assert!(!validity.get(0) && validity.get(1) && !validity.get(2));
        assert!(cb.col(1).validity().is_none());
        assert_eq!(cb.col(0).value_at(0), Value::Null);
        assert_eq!(cb.col(0).value_at(1), Value::Int(7));
    }

    #[test]
    fn mixed_types_degrade_to_values() {
        let rows = vec![tuple![1], tuple!["x"]];
        let cb = ColumnarBatch::from_rows(&rows);
        match cb.col(0) {
            Column::Values(v) => assert_eq!(v, &vec![Value::Int(1), Value::str("x")]),
            other => panic!("expected Values fallback, got {other:?}"),
        }
    }

    #[test]
    fn materialize_round_trips_rows() {
        let rows = vec![
            Tuple::new(vec![Value::Int(1), Value::Double(-0.0), Value::Null]),
            Tuple::new(vec![
                Value::Int(2),
                Value::Double(f64::NAN),
                Value::str("s"),
            ]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        let back = cb.materialize_rows();
        assert_eq!(back, rows);
        // one shared block: consecutive rows are adjacent
        assert!(std::ptr::eq(
            back[0].values().as_ptr().wrapping_add(3),
            back[1].values().as_ptr()
        ));
    }

    #[test]
    fn slice_gather_concat() {
        let rows: Vec<Tuple> = (0..10i64).map(|i| tuple![i, i * 2]).collect();
        let cb = ColumnarBatch::from_rows(&rows);
        let s = cb.slice(3, 6);
        assert_eq!(s.materialize_rows(), rows[3..6].to_vec());
        let g = cb.gather(&[0, 9, 4]);
        assert_eq!(
            g.materialize_rows(),
            vec![rows[0].clone(), rows[9].clone(), rows[4].clone()]
        );
        let cat = ColumnarBatch::concat([&s, &g].into_iter()).unwrap();
        assert_eq!(cat.len(), 6);
        assert_eq!(cat.materialize_rows()[3], rows[0]);
    }

    #[test]
    fn concat_type_mismatch_bails() {
        let a = ColumnarBatch::from_rows(&[tuple![1]]);
        let b = ColumnarBatch::from_rows(&[tuple!["x"]]);
        assert!(ColumnarBatch::concat([&a, &b].into_iter()).is_none());
    }

    #[test]
    fn validity_survives_slice_gather_concat() {
        let rows = vec![
            Tuple::new(vec![Value::Int(1)]),
            Tuple::new(vec![Value::Null]),
            Tuple::new(vec![Value::Int(3)]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        assert_eq!(cb.slice(1, 3).materialize_rows(), rows[1..].to_vec());
        assert_eq!(
            cb.gather(&[1, 0]).materialize_rows(),
            vec![rows[1].clone(), rows[0].clone()]
        );
        let cat = ColumnarBatch::concat([&cb, &cb].into_iter()).unwrap();
        assert_eq!(cat.materialize_rows()[4], rows[1]);
    }

    #[test]
    fn assembler_typed_emit() {
        let kinds = vec![
            DataType::Int,
            DataType::Str,
            DataType::Int,
            DataType::Double,
        ];
        let mut asm = ColumnarAssembler::new(4, kinds);
        asm.push_concat(&tuple![1, "x"], &tuple![2, 2.5]);
        asm.push_concat(
            &Tuple::new(vec![Value::Int(3), Value::Null]),
            &tuple![4, 4.5],
        );
        assert_eq!(asm.row_count(), 2);
        let cb = asm.seal().unwrap();
        assert!(asm.seal().is_none(), "assembler drained");
        let rows = cb.materialize_rows();
        assert_eq!(rows[0], tuple![1, "x", 2, 2.5]);
        assert_eq!(
            rows[1],
            Tuple::new(vec![
                Value::Int(3),
                Value::Null,
                Value::Int(4),
                Value::Double(4.5)
            ])
        );
    }

    #[test]
    fn assembler_degrades_on_schema_lie() {
        // schema says Int but a string shows up: correctness over speed
        let mut asm = ColumnarAssembler::new(4, vec![DataType::Int]);
        asm.push_tuple(&tuple![1]);
        asm.push_tuple(&tuple!["surprise"]);
        let rows = asm.seal().unwrap().materialize_rows();
        assert_eq!(rows, vec![tuple![1], tuple!["surprise"]]);
    }

    #[test]
    fn composite_hash_fold_matches_row_path() {
        let rows = vec![
            tuple![1, "a", 2.5],
            Tuple::new(vec![Value::Int(2), Value::Null, Value::Double(0.5)]),
        ];
        let cb = ColumnarBatch::from_rows(&rows);
        let cols = [0usize, 1, 2];
        let mut acc: Vec<Option<FxHasher>> = vec![Some(FxHasher::new()); rows.len()];
        for &c in &cols {
            cb.col(c).hash_fold(&mut acc);
        }
        for (i, t) in rows.iter().enumerate() {
            let want = crate::KeyVector::hash_tuple_key(t, &cols);
            assert_eq!(acc[i].map(|h| h.finish()), want, "row {i}");
        }
    }

    #[test]
    fn payload_bytes_counts_strings() {
        let cb = ColumnarBatch::from_rows(&[tuple![1, "abcd"], tuple![2, "ef"]]);
        assert_eq!(cb.payload_bytes(), 6);
    }

    #[test]
    fn project_shares_columns() {
        let cb = ColumnarBatch::from_rows(&[tuple![1, "a", 2]]);
        let p = cb.project(&[2, 0]);
        assert!(Arc::ptr_eq(p.col_shared(1), cb.col_shared(0)));
        assert_eq!(p.materialize_rows(), vec![tuple![2, 1]]);
    }
}
