//! # tukwila-common
//!
//! The shared data model for the Tukwila adaptive query execution system:
//! [`Value`]s, [`Tuple`]s, [`Schema`]s, in-memory [`Relation`]s, and the
//! engine-wide [`TukwilaError`] type.
//!
//! Tukwila (Ives et al., SIGMOD 1999) processes relational data arriving
//! from autonomous network-bound sources. Everything above this crate —
//! wrappers, operators, the optimizer — traffics in the types defined here.
//!
//! Design notes (see DESIGN.md §2):
//! * [`Tuple`] is a cheaply cloneable, immutable row (`Arc<[Value]>`); join
//!   operators concatenate tuples without copying their inputs' buffers
//!   more than once.
//! * [`TupleBatch`] is the unit of data flow between operators and across
//!   the wrapper boundary: a shared-schema block of tuples with cached
//!   batch-level `mem_size`, amortizing per-tuple dispatch and channel
//!   overhead on every hot path.
//! * Every value and tuple knows its approximate in-memory size
//!   ([`Value::mem_size`], [`Tuple::mem_size`]) so the memory manager can
//!   enforce the per-operator budgets the paper's overflow experiments
//!   depend on (§4.2.3, Figure 4).

pub mod batch;
pub mod column;
pub mod error;
pub mod hash;
pub mod key;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use batch::{BatchAssembler, BatchBuilder, OutputQueue, TupleBatch, DEFAULT_BATCH_CAPACITY};
pub use column::{Bitmap, Column, ColumnBuilder, ColumnarAssembler, ColumnarBatch, Selection};

/// The process-wide default operator batch capacity, read from the
/// `TUKWILA_BATCH` environment variable (minimum 1; unset or invalid means
/// [`DEFAULT_BATCH_CAPACITY`]). The CI matrix runs the tier-1 suite at 1
/// (singleton degradation) and 1024 alongside the default.
pub fn env_batch_size() -> usize {
    std::env::var("TUKWILA_BATCH")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_BATCH_CAPACITY)
}

/// The process-wide default intra-query parallelism, read from the
/// `TUKWILA_THREADS` environment variable (minimum 1; unset or invalid
/// means sequential execution). Both the execution environment's fragment
/// scheduler budget and the optimizer's default exchange degree start from
/// this, so one knob flips the whole stack — the CI matrix runs the tier-1
/// suite at 1 and 4.
pub fn env_parallelism() -> usize {
    std::env::var("TUKWILA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}
pub use error::{Result, TukwilaError};
pub use hash::{
    fold_hash, fx_hash, mix, FxBuildHasher, FxHashMap, FxHashSet, FxHasher, PrehashMap,
};
pub use key::{JoinKey, KeyVector, KeyedBatch};
pub use relation::Relation;
pub use schema::{Field, Schema};
pub use tuple::Tuple;
pub use value::{DataType, Value};
