//! Scalar values and data types.
//!
//! Tukwila integrates data from heterogeneous sources, so the value model is
//! deliberately small and self-describing: 64-bit integers, doubles, UTF-8
//! strings, dates (days since the common epoch, as TPC-D stores them), and
//! SQL `NULL`. Values hash and compare so they can key hash tables in the
//! (double pipelined) hash joins and be sorted by the sort-merge baseline.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// The type of a column in a [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer (keys, counts, quantities).
    Int,
    /// 64-bit IEEE float (prices, discounts). Compared via total order.
    Double,
    /// UTF-8 string (names, comments, flags).
    Str,
    /// Days since 1970-01-01 (TPC-D date columns).
    Date,
    /// The type of `NULL` when no better type is known.
    Null,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Str => "STR",
            DataType::Date => "DATE",
            DataType::Null => "NULL",
        };
        f.write_str(s)
    }
}

/// A scalar value flowing through the engine.
///
/// Strings are reference-counted so that cloning a tuple (which join
/// operators do constantly) never copies string payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float; ordered and hashed by total-order bits.
    Double(f64),
    /// Shared immutable UTF-8 string.
    Str(Arc<str>),
    /// Days since the epoch.
    Date(i32),
    /// SQL NULL. Never equal to anything under SQL semantics; *is* equal to
    /// itself under `Eq` so values can key hash tables (grouping semantics).
    Null,
}

/// Bytes charged per value before string payloads (enum discriminant +
/// payload words) — shared with the batch assembler's fused copy/accounting
/// loop.
pub(crate) const VALUE_BASE_BYTES: usize = std::mem::size_of::<Value>();

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Double(_) => DataType::Double,
            Value::Str(_) => DataType::Str,
            Value::Date(_) => DataType::Date,
            Value::Null => DataType::Null,
        }
    }

    /// Whether this is SQL `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate resident memory footprint in bytes, used by the memory
    /// manager to charge operators (Figure 4 experiments depend on this
    /// being stable and deterministic).
    pub fn mem_size(&self) -> usize {
        match self {
            Value::Str(s) => VALUE_BASE_BYTES + s.len(),
            _ => VALUE_BASE_BYTES,
        }
    }

    /// Integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float payload, if this is a [`Value::Double`].
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// String payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date payload, if this is a [`Value::Date`].
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL three-valued-logic equality: `NULL = x` is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self == other)
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Double(a), Double(b)) => Some(a.total_cmp(b)),
            (Int(a), Double(b)) => Some((*a as f64).total_cmp(b)),
            (Double(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Null, Null) => true,
            // Cross-type numeric equality is intentionally *not* structural
            // equality; use `sql_eq` for query semantics.
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Int(i) => {
                0u8.hash(state);
                i.hash(state);
            }
            Value::Double(d) => {
                1u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                3u8.hash(state);
                d.hash(state);
            }
            Value::Null => 4u8.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order used by the sort-merge baseline and for deterministic
    /// test assertions: NULLs sort first, then by type tag, then payload.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn tag(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) => 1,
                Double(_) => 1, // numerics compare cross-type
                Date(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.total_cmp(b),
            (Int(a), Double(b)) => (*a as f64).total_cmp(b),
            (Double(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => tag(a).cmp(&tag(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_tags() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int);
        assert_eq!(Value::Double(1.0).data_type(), DataType::Double);
        assert_eq!(Value::str("x").data_type(), DataType::Str);
        assert_eq!(Value::Date(10).data_type(), DataType::Date);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn eq_and_hash_agree_for_ints() {
        let a = Value::Int(42);
        let b = Value::Int(42);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn eq_and_hash_agree_for_strings() {
        let a = Value::str("seattle");
        let b = Value::str("seattle");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert_ne!(a, Value::str("tukwila"));
    }

    #[test]
    fn doubles_hash_by_bits() {
        let a = Value::Double(1.5);
        let b = Value::Double(1.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // -0.0 and 0.0 differ bitwise; structural equality distinguishes them.
        assert_ne!(Value::Double(0.0), Value::Double(-0.0));
    }

    #[test]
    fn null_semantics() {
        assert!(Value::Null.is_null());
        // structural: NULL == NULL (for grouping)
        assert_eq!(Value::Null, Value::Null);
        // SQL: NULL = NULL is unknown
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(2)),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Int(2).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(2).sql_cmp(&Value::str("2")), None);
    }

    #[test]
    fn total_order_sorts_nulls_first() {
        let mut vs = [Value::Int(3), Value::Null, Value::Int(1)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Int(1));
    }

    #[test]
    fn mem_size_counts_string_payload() {
        let short = Value::str("ab");
        let long = Value::str("abcdefghijklmnop");
        assert!(long.mem_size() > short.mem_size());
        assert_eq!(
            long.mem_size() - short.mem_size(),
            "abcdefghijklmnop".len() - "ab".len()
        );
    }

    #[test]
    fn display_round_trips_reasonably() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(5).to_string(), "@5");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(2.5f64), Value::Double(2.5));
    }
}
