//! In-memory relations: a schema plus a bag of tuples.
//!
//! [`Relation`] is the unit the data generator produces, the simulated
//! sources serve, and fragment materialization writes. It is a *bag*
//! (duplicates allowed), matching SQL semantics and the paper's union /
//! collector discussion (§4.1, where overlap between sources produces
//! duplicates the collector policy may or may not bother removing).
//!
//! A relation holds its data in either (or both) of two physical forms —
//! a row vector and a columnar batch — each materialized lazily from the
//! other and cached (`OnceLock`). Sources serve columnar slices without
//! ever paying a conversion inside the timed query window, while reference
//! code keeps using `tuples()` unchanged.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::column::ColumnarBatch;
use crate::error::{Result, TukwilaError};
use crate::schema::Schema;
use crate::tuple::{Tuple, TUPLE_HEADER_BYTES};
use crate::value::{Value, VALUE_BASE_BYTES};
use crate::TupleBatch;

/// A schema-carrying bag of tuples with lazily interconvertible row-major
/// and columnar representations (at least one is always present).
#[derive(Clone)]
pub struct Relation {
    schema: Schema,
    len: usize,
    rows: OnceLock<Vec<Tuple>>,
    cols: OnceLock<Arc<ColumnarBatch>>,
}

impl Relation {
    /// Build a relation, validating that every tuple matches the schema
    /// arity (type checking is left to the planner; arity mismatches are
    /// hard corruption and rejected here).
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        for (i, t) in tuples.iter().enumerate() {
            if t.arity() != schema.arity() {
                return Err(TukwilaError::Schema(format!(
                    "tuple {i} has arity {} but schema {} has arity {}",
                    t.arity(),
                    schema,
                    schema.arity()
                )));
            }
        }
        Ok(Relation::from_rows_unchecked(schema, tuples))
    }

    /// Build from validated rows (internal constructor).
    fn from_rows_unchecked(schema: Schema, tuples: Vec<Tuple>) -> Self {
        let len = tuples.len();
        let rows = OnceLock::new();
        let _ = rows.set(tuples);
        Relation {
            schema,
            len,
            rows,
            cols: OnceLock::new(),
        }
    }

    /// Build directly from a columnar batch (no row materialization).
    pub fn from_columnar(schema: Schema, cols: ColumnarBatch) -> Result<Self> {
        if cols.num_cols() != schema.arity() && !cols.is_empty() {
            return Err(TukwilaError::Schema(format!(
                "columnar batch has {} columns but schema {} has arity {}",
                cols.num_cols(),
                schema,
                schema.arity()
            )));
        }
        let len = cols.len();
        let cell = OnceLock::new();
        let _ = cell.set(Arc::new(cols));
        Ok(Relation {
            schema,
            len,
            rows: OnceLock::new(),
            cols: cell,
        })
    }

    /// Materialize a stream of batches into a relation — the fragment
    /// materialization sink. When every batch is columnar and the layouts
    /// agree, the result is assembled **column-wise** (typed buffer
    /// appends, no row views ever built); otherwise it falls back to row
    /// concatenation with the same arity validation as [`Relation::new`].
    pub fn from_batches(schema: Schema, batches: Vec<TupleBatch>) -> Result<Self> {
        if !batches.is_empty() && batches.iter().all(|b| b.columns().is_some()) {
            let all = batches.iter().filter_map(|b| b.columns());
            if let Some(cat) = ColumnarBatch::concat(all) {
                if cat.num_cols() == schema.arity() {
                    return Relation::from_columnar(schema, cat);
                }
            }
        }
        let mut tuples = Vec::with_capacity(batches.iter().map(TupleBatch::len).sum());
        for b in batches {
            tuples.extend(b.into_tuples());
        }
        Relation::new(schema, tuples)
    }

    /// Build an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation::from_rows_unchecked(schema, Vec::new())
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuples in insertion order (materialized lazily — at most once —
    /// when the relation was built columnar).
    pub fn tuples(&self) -> &[Tuple] {
        self.rows.get_or_init(|| {
            self.cols
                .get()
                .expect("relation invariant: rows or cols present")
                .materialize_rows()
        })
    }

    /// The columnar representation, converting from rows on first call and
    /// caching. Sources call this **once, outside the timed window**, so
    /// scans serve columnar slices for free thereafter.
    pub fn columnar(&self) -> &Arc<ColumnarBatch> {
        self.cols.get_or_init(|| {
            Arc::new(ColumnarBatch::from_rows(
                self.rows
                    .get()
                    .expect("relation invariant: rows or cols present"),
            ))
        })
    }

    /// The columnar representation only if already materialized — the
    /// non-forcing probe hot paths use to decide between the columnar
    /// slice path and the row clone path.
    pub fn columnar_cached(&self) -> Option<&Arc<ColumnarBatch>> {
        self.cols.get()
    }

    /// A copy of this relation holding **only** the columnar form (forced
    /// if absent; the column `Arc`s are shared, not copied). Long-lived
    /// holders — simulated sources, caches — use this so a relation built
    /// row-by-row does not pin hundreds of thousands of per-tuple
    /// allocations whose eventual drop lands inside someone's timed query
    /// window; row views rematerialize lazily if a per-tuple consumer asks.
    pub fn columnar_only(&self) -> Relation {
        let cols = self.columnar().clone();
        let cell = OnceLock::new();
        let _ = cell.set(cols);
        Relation {
            schema: self.schema.clone(),
            len: self.len,
            rows: OnceLock::new(),
            cols: cell,
        }
    }

    /// Number of tuples (cardinality) — no materialization.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a tuple (materializes rows; drops a stale columnar cache).
    /// Panics on arity mismatch in debug builds; callers on hot paths
    /// (materialization) have already validated the schema.
    pub fn push(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        self.tuples();
        self.cols = OnceLock::new();
        self.rows.get_mut().expect("rows forced above").push(tuple);
        self.len += 1;
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        match self.rows.into_inner() {
            Some(t) => t,
            None => self
                .cols
                .into_inner()
                .expect("relation invariant: rows or cols present")
                .materialize_rows(),
        }
    }

    /// Total approximate memory footprint in bytes. Computed from whichever
    /// representation is materialized (both report the identical figure).
    pub fn mem_size(&self) -> usize {
        if let Some(rows) = self.rows.get() {
            return rows.iter().map(Tuple::mem_size).sum();
        }
        let cols = self.cols.get().expect("relation invariant");
        cols.len() * (TUPLE_HEADER_BYTES + cols.num_cols() * VALUE_BASE_BYTES)
            + cols.payload_bytes()
    }

    /// Sorted copy of the tuples (total order on values) — used by tests to
    /// compare results irrespective of arrival order, which adaptive
    /// operators deliberately scramble.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut out = self.tuples().to_vec();
        out.sort_by(|a, b| a.values().cmp(b.values()));
        out
    }

    /// Bag-equality with another relation (same schema arity, same tuples
    /// with the same multiplicities, in any order).
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        self.sorted_tuples() == other.sorted_tuples()
    }

    /// Reorder columns into a canonical order (sorted by fully qualified
    /// name). Two plans for the same query may emit columns in different
    /// orders depending on the join tree; canonicalizing both sides makes
    /// [`Relation::bag_eq`] order-insensitive in columns as well as rows.
    pub fn canonicalized(&self) -> Relation {
        let mut order: Vec<usize> = (0..self.schema.arity()).collect();
        order.sort_by_key(|&i| self.schema.field(i).qualified_name());
        Relation::from_rows_unchecked(
            self.schema.project(&order),
            self.tuples().iter().map(|t| t.project(&order)).collect(),
        )
    }

    /// Column-order-insensitive bag equality: canonicalize both sides, then
    /// compare.
    pub fn bag_eq_unordered(&self, other: &Relation) -> bool {
        self.canonicalized().bag_eq(&other.canonicalized())
    }

    /// Reference "gold" hash join used to verify every join implementation
    /// in the engine: joins `self` and `other` on equality of the given key
    /// columns, concatenating matching tuples (left then right).
    pub fn nested_join(&self, other: &Relation, left_key: usize, right_key: usize) -> Relation {
        let mut index: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
        for t in other.tuples() {
            index.entry(t.value(right_key)).or_default().push(t);
        }
        let mut out = Vec::new();
        for l in self.tuples() {
            if l.value(left_key).is_null() {
                continue; // NULL keys never join
            }
            if let Some(matches) = index.get(l.value(left_key)) {
                for r in matches {
                    out.push(l.concat(r));
                }
            }
        }
        Relation::from_rows_unchecked(self.schema.concat(&other.schema), out)
    }

    /// Reference selection: keep tuples where column `col` equals `v`.
    pub fn select_eq(&self, col: usize, v: &Value) -> Relation {
        Relation::from_rows_unchecked(
            self.schema.clone(),
            self.tuples()
                .iter()
                .filter(|t| t.value(col).sql_eq(v) == Some(true))
                .cloned()
                .collect(),
        )
    }

    /// Distinct values in a column (for stats / tests).
    pub fn distinct_count(&self, col: usize) -> usize {
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for t in self.tuples() {
            seen.insert(t.value(col));
        }
        seen.len()
    }
}

/// Equality is over schema and tuple content; the physical representation
/// (rows vs columns, what is cached) is an execution detail.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.tuples() == other.tuples()
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("schema", &self.schema)
            .field("len", &self.len)
            .field("columnar", &self.cols.get().is_some())
            .finish()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} tuples)", self.schema, self.len())?;
        for t in self.tuples().iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  … {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::DataType;

    fn rel(name: &str, rows: Vec<Tuple>) -> Relation {
        let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn arity_validation() {
        let schema = Schema::of("r", &[("a", DataType::Int)]);
        assert!(Relation::new(schema.clone(), vec![tuple![1, 2]]).is_err());
        assert!(Relation::new(schema, vec![tuple![1]]).is_ok());
    }

    #[test]
    fn bag_eq_ignores_order_but_counts_duplicates() {
        let a = rel("r", vec![tuple![1, 1], tuple![2, 2], tuple![1, 1]]);
        let b = rel("r", vec![tuple![2, 2], tuple![1, 1], tuple![1, 1]]);
        let c = rel("r", vec![tuple![2, 2], tuple![1, 1]]);
        assert!(a.bag_eq(&b));
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn nested_join_matches_by_key() {
        let l = rel("l", vec![tuple![1, 10], tuple![2, 20], tuple![3, 30]]);
        let r = rel("r", vec![tuple![2, 200], tuple![3, 300], tuple![3, 301]]);
        let j = l.nested_join(&r, 0, 0);
        assert_eq!(j.len(), 3);
        assert_eq!(j.schema().arity(), 4);
        let sorted = j.sorted_tuples();
        assert_eq!(sorted[0], tuple![2, 20, 2, 200]);
        assert_eq!(sorted[1], tuple![3, 30, 3, 300]);
        assert_eq!(sorted[2], tuple![3, 30, 3, 301]);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::of("l", &[("k", DataType::Int)]);
        let l = Relation::new(
            schema.clone(),
            vec![Tuple::new(vec![Value::Null]), tuple![1]],
        )
        .unwrap();
        let r = Relation::new(schema, vec![Tuple::new(vec![Value::Null]), tuple![1]]).unwrap();
        let j = l.nested_join(&r, 0, 0);
        assert_eq!(j.len(), 1); // only the 1-1 match
    }

    #[test]
    fn select_eq_filters() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20], tuple![1, 30]]);
        let s = r.select_eq(0, &Value::Int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distinct_count_counts() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20], tuple![1, 30]]);
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 3);
    }

    #[test]
    fn mem_size_sums_tuples() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20]]);
        assert_eq!(
            r.mem_size(),
            r.tuples()[0].mem_size() + r.tuples()[1].mem_size()
        );
    }

    #[test]
    fn columnar_round_trip_and_cache() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20]]);
        assert!(r.columnar_cached().is_none());
        let mem = r.mem_size();
        let cols = r.columnar().clone();
        assert_eq!(cols.len(), 2);
        assert!(r.columnar_cached().is_some());
        // cached: same Arc back
        assert!(Arc::ptr_eq(&cols, r.columnar()));
        // columnar-built relation materializes identical rows and mem
        let c = Relation::from_columnar(r.schema().clone(), (*cols).clone()).unwrap();
        assert_eq!(c.mem_size(), mem);
        assert_eq!(c, r);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn from_batches_concatenates_columnar() {
        use crate::column::ColumnarBatch;
        let schema = Schema::of("r", &[("k", DataType::Int), ("v", DataType::Int)]);
        let b1 = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![1, 10]]));
        let b2 =
            TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![2, 20], tuple![3, 30]]));
        let r = Relation::from_batches(schema.clone(), vec![b1, b2]).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.columnar_cached().is_some(), "assembled column-wise");
        assert_eq!(r.tuples(), &[tuple![1, 10], tuple![2, 20], tuple![3, 30]]);
        // mixed representations fall back to rows (and still validate arity)
        let b3 = TupleBatch::from_tuples(vec![tuple![4, 40]]);
        let b4 = TupleBatch::from_columns(ColumnarBatch::from_rows(&[tuple![5, 50]]));
        let m = Relation::from_batches(schema.clone(), vec![b3, b4]).unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.columnar_cached().is_none());
        // arity mismatch is rejected on the row path
        let bad = TupleBatch::from_tuples(vec![tuple![1]]);
        assert!(Relation::from_batches(schema, vec![bad]).is_err());
    }

    #[test]
    fn push_invalidates_columnar_cache() {
        let mut r = rel("r", vec![tuple![1, 10]]);
        r.columnar();
        r.push(tuple![2, 20]);
        assert!(r.columnar_cached().is_none(), "stale cache dropped");
        assert_eq!(r.len(), 2);
        assert_eq!(r.columnar().len(), 2);
    }
}
