//! In-memory relations: a schema plus a bag of tuples.
//!
//! [`Relation`] is the unit the data generator produces, the simulated
//! sources serve, and fragment materialization writes. It is a *bag*
//! (duplicates allowed), matching SQL semantics and the paper's union /
//! collector discussion (§4.1, where overlap between sources produces
//! duplicates the collector policy may or may not bother removing).

use std::collections::HashMap;
use std::fmt;

use crate::error::{Result, TukwilaError};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A schema-carrying bag of tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Build a relation, validating that every tuple matches the schema
    /// arity (type checking is left to the planner; arity mismatches are
    /// hard corruption and rejected here).
    pub fn new(schema: Schema, tuples: Vec<Tuple>) -> Result<Self> {
        for (i, t) in tuples.iter().enumerate() {
            if t.arity() != schema.arity() {
                return Err(TukwilaError::Schema(format!(
                    "tuple {i} has arity {} but schema {} has arity {}",
                    t.arity(),
                    schema,
                    schema.arity()
                )));
            }
        }
        Ok(Relation { schema, tuples })
    }

    /// Build an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples (cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Append a tuple. Panics on arity mismatch in debug builds; callers on
    /// hot paths (materialization) have already validated the schema.
    pub fn push(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.arity(), self.schema.arity());
        self.tuples.push(tuple);
    }

    /// Consume into the tuple vector.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Total approximate memory footprint in bytes.
    pub fn mem_size(&self) -> usize {
        self.tuples.iter().map(Tuple::mem_size).sum()
    }

    /// Sorted copy of the tuples (total order on values) — used by tests to
    /// compare results irrespective of arrival order, which adaptive
    /// operators deliberately scramble.
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut out = self.tuples.clone();
        out.sort_by(|a, b| a.values().cmp(b.values()));
        out
    }

    /// Bag-equality with another relation (same schema arity, same tuples
    /// with the same multiplicities, in any order).
    pub fn bag_eq(&self, other: &Relation) -> bool {
        if self.schema.arity() != other.schema.arity() || self.len() != other.len() {
            return false;
        }
        self.sorted_tuples() == other.sorted_tuples()
    }

    /// Reorder columns into a canonical order (sorted by fully qualified
    /// name). Two plans for the same query may emit columns in different
    /// orders depending on the join tree; canonicalizing both sides makes
    /// [`Relation::bag_eq`] order-insensitive in columns as well as rows.
    pub fn canonicalized(&self) -> Relation {
        let mut order: Vec<usize> = (0..self.schema.arity()).collect();
        order.sort_by_key(|&i| self.schema.field(i).qualified_name());
        Relation {
            schema: self.schema.project(&order),
            tuples: self.tuples.iter().map(|t| t.project(&order)).collect(),
        }
    }

    /// Column-order-insensitive bag equality: canonicalize both sides, then
    /// compare.
    pub fn bag_eq_unordered(&self, other: &Relation) -> bool {
        self.canonicalized().bag_eq(&other.canonicalized())
    }

    /// Reference "gold" hash join used to verify every join implementation
    /// in the engine: joins `self` and `other` on equality of the given key
    /// columns, concatenating matching tuples (left then right).
    pub fn nested_join(&self, other: &Relation, left_key: usize, right_key: usize) -> Relation {
        let mut index: HashMap<&Value, Vec<&Tuple>> = HashMap::new();
        for t in &other.tuples {
            index.entry(t.value(right_key)).or_default().push(t);
        }
        let mut out = Vec::new();
        for l in &self.tuples {
            if l.value(left_key).is_null() {
                continue; // NULL keys never join
            }
            if let Some(matches) = index.get(l.value(left_key)) {
                for r in matches {
                    out.push(l.concat(r));
                }
            }
        }
        Relation {
            schema: self.schema.concat(&other.schema),
            tuples: out,
        }
    }

    /// Reference selection: keep tuples where column `col` equals `v`.
    pub fn select_eq(&self, col: usize, v: &Value) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| t.value(col).sql_eq(v) == Some(true))
                .cloned()
                .collect(),
        }
    }

    /// Distinct values in a column (for stats / tests).
    pub fn distinct_count(&self, col: usize) -> usize {
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for t in &self.tuples {
            seen.insert(t.value(col));
        }
        seen.len()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} tuples)", self.schema, self.len())?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  … {} more", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple;
    use crate::value::DataType;

    fn rel(name: &str, rows: Vec<Tuple>) -> Relation {
        let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
        Relation::new(schema, rows).unwrap()
    }

    #[test]
    fn arity_validation() {
        let schema = Schema::of("r", &[("a", DataType::Int)]);
        assert!(Relation::new(schema.clone(), vec![tuple![1, 2]]).is_err());
        assert!(Relation::new(schema, vec![tuple![1]]).is_ok());
    }

    #[test]
    fn bag_eq_ignores_order_but_counts_duplicates() {
        let a = rel("r", vec![tuple![1, 1], tuple![2, 2], tuple![1, 1]]);
        let b = rel("r", vec![tuple![2, 2], tuple![1, 1], tuple![1, 1]]);
        let c = rel("r", vec![tuple![2, 2], tuple![1, 1]]);
        assert!(a.bag_eq(&b));
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn nested_join_matches_by_key() {
        let l = rel("l", vec![tuple![1, 10], tuple![2, 20], tuple![3, 30]]);
        let r = rel("r", vec![tuple![2, 200], tuple![3, 300], tuple![3, 301]]);
        let j = l.nested_join(&r, 0, 0);
        assert_eq!(j.len(), 3);
        assert_eq!(j.schema().arity(), 4);
        let sorted = j.sorted_tuples();
        assert_eq!(sorted[0], tuple![2, 20, 2, 200]);
        assert_eq!(sorted[1], tuple![3, 30, 3, 300]);
        assert_eq!(sorted[2], tuple![3, 30, 3, 301]);
    }

    #[test]
    fn null_keys_never_join() {
        let schema = Schema::of("l", &[("k", DataType::Int)]);
        let l = Relation::new(
            schema.clone(),
            vec![Tuple::new(vec![Value::Null]), tuple![1]],
        )
        .unwrap();
        let r = Relation::new(schema, vec![Tuple::new(vec![Value::Null]), tuple![1]]).unwrap();
        let j = l.nested_join(&r, 0, 0);
        assert_eq!(j.len(), 1); // only the 1-1 match
    }

    #[test]
    fn select_eq_filters() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20], tuple![1, 30]]);
        let s = r.select_eq(0, &Value::Int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn distinct_count_counts() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20], tuple![1, 30]]);
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 3);
    }

    #[test]
    fn mem_size_sums_tuples() {
        let r = rel("r", vec![tuple![1, 10], tuple![2, 20]]);
        assert_eq!(
            r.mem_size(),
            r.tuples()[0].mem_size() + r.tuples()[1].mem_size()
        );
    }
}
