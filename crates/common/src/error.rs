//! Engine-wide error type.
//!
//! Errors in a data integration system are *expected*: sources time out,
//! connections drop, memory runs out. The execution engine converts most of
//! these into events for the rule system (§3.3) rather than failing the
//! query; `TukwilaError` is what remains when no rule handles the problem or
//! when the plan itself is malformed.

use std::fmt;

/// Convenience alias used across all Tukwila crates.
pub type Result<T> = std::result::Result<T, TukwilaError>;

/// The error type shared by every Tukwila crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TukwilaError {
    /// Column resolution / schema mismatch problems.
    Schema(String),
    /// Malformed or internally inconsistent query plan.
    Plan(String),
    /// A data source failed permanently (wrapper could not be contacted or
    /// the connection was dropped and no fallback rule applied).
    SourceUnavailable {
        /// Name of the failing source.
        source: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A data source exceeded its timeout and no rescheduling rule applied.
    SourceTimeout {
        /// Name of the timed-out source.
        source: String,
        /// The timeout that elapsed, in milliseconds.
        timeout_ms: u64,
    },
    /// An operator exhausted its memory budget and no overflow strategy was
    /// configured (the optimizer should always attach one; this is a
    /// planning bug surfaced at runtime).
    OutOfMemory {
        /// Operator that overflowed.
        operator: String,
        /// Budget in bytes.
        budget: usize,
    },
    /// The optimizer could not produce a plan (e.g. no source covers a
    /// mediated relation).
    Optimizer(String),
    /// Reformulation failure (unknown mediated relation, no covering
    /// sources).
    Reformulation(String),
    /// A rule's action failed or the rule set is inconsistent (conflicting
    /// simultaneous rules, §3.1.2 restriction 3).
    Rule(String),
    /// Execution was cancelled by a rule action (`return error to user`)
    /// or by the client through its query control.
    Cancelled(String),
    /// The wall-clock deadline given at query submission passed before the
    /// query finished (distinct from rule-driven aborts).
    DeadlineExceeded {
        /// Time the query had been running when the deadline tripped.
        elapsed_ms: u64,
    },
    /// The service refused the query at the front door (in-flight bound
    /// reached and the wait queue full — backpressure).
    Admission(String),
    /// Spill-store / local-store I/O failure.
    Io(String),
    /// Catch-all for internal invariant violations; always a bug.
    Internal(String),
}

impl TukwilaError {
    /// Short machine-readable category tag (used in logs and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            TukwilaError::Schema(_) => "schema",
            TukwilaError::Plan(_) => "plan",
            TukwilaError::SourceUnavailable { .. } => "source_unavailable",
            TukwilaError::SourceTimeout { .. } => "source_timeout",
            TukwilaError::OutOfMemory { .. } => "out_of_memory",
            TukwilaError::Optimizer(_) => "optimizer",
            TukwilaError::Reformulation(_) => "reformulation",
            TukwilaError::Rule(_) => "rule",
            TukwilaError::Cancelled(_) => "cancelled",
            TukwilaError::DeadlineExceeded { .. } => "deadline_exceeded",
            TukwilaError::Admission(_) => "admission",
            TukwilaError::Io(_) => "io",
            TukwilaError::Internal(_) => "internal",
        }
    }

    /// Whether the adaptive layer may respond to this error (reschedule,
    /// fall back to a mirror, re-optimize) rather than aborting the query.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            TukwilaError::SourceUnavailable { .. }
                | TukwilaError::SourceTimeout { .. }
                | TukwilaError::OutOfMemory { .. }
        )
    }
}

impl fmt::Display for TukwilaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TukwilaError::Schema(m) => write!(f, "schema error: {m}"),
            TukwilaError::Plan(m) => write!(f, "plan error: {m}"),
            TukwilaError::SourceUnavailable { source, reason } => {
                write!(f, "source `{source}` unavailable: {reason}")
            }
            TukwilaError::SourceTimeout { source, timeout_ms } => {
                write!(f, "source `{source}` timed out after {timeout_ms}ms")
            }
            TukwilaError::OutOfMemory { operator, budget } => {
                write!(
                    f,
                    "operator `{operator}` exceeded its {budget}-byte memory budget \
                     with no overflow strategy"
                )
            }
            TukwilaError::Optimizer(m) => write!(f, "optimizer error: {m}"),
            TukwilaError::Reformulation(m) => write!(f, "reformulation error: {m}"),
            TukwilaError::Rule(m) => write!(f, "rule error: {m}"),
            TukwilaError::Cancelled(m) => write!(f, "execution cancelled: {m}"),
            TukwilaError::DeadlineExceeded { elapsed_ms } => {
                write!(f, "query deadline exceeded after {elapsed_ms}ms")
            }
            TukwilaError::Admission(m) => write!(f, "query not admitted: {m}"),
            TukwilaError::Io(m) => write!(f, "io error: {m}"),
            TukwilaError::Internal(m) => write!(f, "internal error (bug): {m}"),
        }
    }
}

impl std::error::Error for TukwilaError {}

impl From<std::io::Error> for TukwilaError {
    fn from(e: std::io::Error) -> Self {
        TukwilaError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(TukwilaError::Schema("x".into()).kind(), "schema");
        assert_eq!(
            TukwilaError::SourceTimeout {
                source: "s".into(),
                timeout_ms: 5
            }
            .kind(),
            "source_timeout"
        );
    }

    #[test]
    fn recoverability() {
        assert!(TukwilaError::SourceTimeout {
            source: "a".into(),
            timeout_ms: 1
        }
        .is_recoverable());
        assert!(TukwilaError::OutOfMemory {
            operator: "dpj".into(),
            budget: 64
        }
        .is_recoverable());
        assert!(!TukwilaError::Plan("bad".into()).is_recoverable());
    }

    #[test]
    fn display_mentions_source_name() {
        let e = TukwilaError::SourceUnavailable {
            source: "bib1".into(),
            reason: "connection refused".into(),
        };
        let s = e.to_string();
        assert!(s.contains("bib1") && s.contains("connection refused"));
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("disk gone");
        let e: TukwilaError = io.into();
        assert_eq!(e.kind(), "io");
    }
}
