//! Fast, deterministic hashing for the join hot path.
//!
//! The seed engine hashed every join key with SipHash (`DefaultHasher`) —
//! a keyed, DoS-resistant hash whose per-call cost dominates the probe and
//! insert loops of the hash-based joins. Join keys here are engine-internal
//! (never attacker-controlled hash-table keys in a long-lived map), so we
//! trade DoS resistance for speed with an FxHash-style multiply-rotate
//! hasher, implemented inline because crates.io is unreachable from this
//! build environment.
//!
//! Three layers live here:
//!
//! * [`FxHasher`] / [`FxBuildHasher`] — a drop-in [`std::hash::Hasher`]
//!   usable with `HashMap` (see [`FxHashMap`]).
//! * [`mix`] / [`fold_hash`] — finalizers that spread an Fx hash's entropy
//!   into the low bits (Fx is multiply-based, so low bits are weak) and mix
//!   in a recursion *salt* so overflow re-partitioning redistributes keys
//!   **without rehashing the value** — the prehash is computed once per
//!   tuple and reused for bucket selection, map lookup, and re-partitioning.
//! * [`PrehashMap`] — an open-addressed key → value map addressed by a
//!   caller-supplied 64-bit prehash, so the bucketed hash tables never hash
//!   a key twice (the seed hashed once in `bucket_of` and again inside the
//!   per-bucket `HashMap`).
//!
//! Stability: FxHash output is pinned by unit tests below. Spill files and
//! bucket assignments never cross process boundaries, but deterministic
//! hashing keeps runs reproducible and lets tests assert exact routing.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The Firefox/rustc multiplier (64-bit golden-ratio-derived constant).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: `hash = (hash.rol(5) ^ word) * SEED`
/// per 8-byte word. Not cryptographic, not DoS-resistant — fast.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Fresh hasher with a zero state.
    #[inline]
    pub fn new() -> Self {
        FxHasher { hash: 0 }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add(i as u8 as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s — plug into any `HashMap`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`] instead of SipHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`] instead of SipHash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Fx-hash any `Hash` value to a raw 64-bit prehash (salt-free; apply
/// [`mix`]/[`fold_hash`] before using bits positionally).
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Finalize a raw prehash with a `salt`, spreading entropy into all bits
/// (murmur3-style avalanche). Same `(hash, salt)` always yields the same
/// output; different salts redistribute — this is what overflow
/// re-partitioning uses instead of rehashing the key.
#[inline]
pub fn mix(hash: u64, salt: u64) -> u64 {
    let mut x = hash ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^= x >> 33;
    x
}

/// Map a prehash to one of `n` partitions under `salt`. The bucket routing
/// primitive: `fold_hash(h, n, salt)` replaces "hash the value again with a
/// salted hasher".
#[inline]
pub fn fold_hash(hash: u64, n: usize, salt: u64) -> usize {
    (mix(hash, salt) as usize) % n.max(1)
}

const EMPTY_SLOT: u32 = u32::MAX;

/// An open-addressed map from prehashed keys to values that never hashes a
/// key itself: every operation takes the caller's 64-bit prehash plus the
/// key for equality confirmation. Lookups are allocation-free; inserts
/// clone the key **once per distinct key** (group creation), not once per
/// row.
///
/// Keys are stored in insertion order in a dense `groups` vector (drain and
/// iteration are cache-friendly); `slots` is a linear-probed index over it.
#[derive(Debug, Clone)]
pub struct PrehashMap<K, V> {
    groups: Vec<(u64, K, V)>,
    slots: Vec<u32>,
    mask: usize,
}

impl<K, V> Default for PrehashMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> PrehashMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        PrehashMap {
            groups: Vec::new(),
            slots: Vec::new(),
            mask: 0,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Salt for slot addressing. MUST differ from the bucket-routing salt
    /// (0): the bucketed tables partition with `mix(hash, 0) % n`, so
    /// within one bucket every key shares the low bits of `mix(hash, 0)` —
    /// indexing slots with the same finalizer would funnel a bucket's keys
    /// into `cap / n` initial slots and degrade probes to linear scans.
    const SLOT_SALT: u64 = 0xA076_1D64_78BD_642F;

    #[inline]
    fn slot_of(&self, hash: u64) -> usize {
        (mix(hash, Self::SLOT_SALT) as usize) & self.mask
    }

    /// Find the group index for `(hash, key)` where `key_eq` confirms a
    /// candidate match. Returns `Err(slot)` with the insertion slot when
    /// absent.
    #[inline]
    fn find(&self, hash: u64, key_eq: impl Fn(&K) -> bool) -> std::result::Result<u32, usize> {
        if self.slots.is_empty() {
            return Err(0);
        }
        let mut slot = self.slot_of(hash);
        loop {
            let g = self.slots[slot];
            if g == EMPTY_SLOT {
                return Err(slot);
            }
            let (h, k, _) = &self.groups[g as usize];
            if *h == hash && key_eq(k) {
                return Ok(g);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Allocation-free lookup: borrow the value for `(hash, key)` if
    /// present. `key_eq` confirms equality against the stored key, so the
    /// probe key can be any borrowed representation.
    #[inline]
    pub fn get_hashed(&self, hash: u64, key_eq: impl Fn(&K) -> bool) -> Option<&V> {
        match self.find(hash, key_eq) {
            Ok(g) => Some(&self.groups[g as usize].2),
            Err(_) => None,
        }
    }

    /// Mutable lookup (allocation-free when present).
    #[inline]
    pub fn get_hashed_mut(&mut self, hash: u64, key_eq: impl Fn(&K) -> bool) -> Option<&mut V> {
        match self.find(hash, key_eq) {
            Ok(g) => Some(&mut self.groups[g as usize].2),
            Err(_) => None,
        }
    }

    /// Entry-style upsert: return the value for `(hash, key)`, materializing
    /// the owned key (via `make_key`) and a default value only when the key
    /// is new. This is the insert path's "clone the key once per group".
    #[inline]
    pub fn entry_hashed(
        &mut self,
        hash: u64,
        key_eq: impl Fn(&K) -> bool,
        make_key: impl FnOnce() -> K,
    ) -> &mut V
    where
        V: Default,
    {
        if self.needs_grow() {
            self.grow();
        }
        match self.find(hash, key_eq) {
            Ok(g) => &mut self.groups[g as usize].2,
            Err(slot) => {
                let g = self.groups.len() as u32;
                self.groups.push((hash, make_key(), V::default()));
                self.slots[slot] = g;
                &mut self.groups[g as usize].2
            }
        }
    }

    #[inline]
    fn needs_grow(&self) -> bool {
        // Load factor 7/8 over a power-of-two slot table.
        self.slots.is_empty() || (self.groups.len() + 1) * 8 > self.slots.len() * 7
    }

    #[cold]
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(8);
        self.slots = vec![EMPTY_SLOT; cap];
        self.mask = cap - 1;
        for (g, (h, _, _)) in self.groups.iter().enumerate() {
            let mut slot = (mix(*h, Self::SLOT_SALT) as usize) & self.mask;
            while self.slots[slot] != EMPTY_SLOT {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = g as u32;
        }
    }

    /// Iterate `(prehash, key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &K, &V)> {
        self.groups.iter().map(|(h, k, v)| (h, k, v))
    }

    /// Iterate the values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.groups.iter().map(|(_, _, v)| v)
    }

    /// Drain all groups, leaving the map empty but with its slot table
    /// retained for reuse.
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> + '_ {
        for s in &mut self.slots {
            *s = EMPTY_SLOT;
        }
        self.groups.drain(..).map(|(_, k, v)| (k, v))
    }

    /// Remove everything, keeping allocations.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = EMPTY_SLOT;
        }
        self.groups.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn fx_hasher_output_is_pinned() {
        // FxHash must be stable across runs and across processes: bucket
        // routing, spill partitioning, and the perf baselines all assume a
        // fixed hash function. If this test fails, the hash changed — that
        // invalidates recorded BENCH_* baselines and needs a call-out.
        assert_eq!(fx_hash(&42u64), 6807129317463932018);
        assert_eq!(fx_hash(&0u64), 0);
        assert_eq!(fx_hash(&1u64), 5871781006564002453);
        assert_eq!(fx_hash(&"tukwila"), 2746443715173178374);
        assert_eq!(fx_hash(&Value::Int(42)), 6807129317463932018);
        assert_eq!(fx_hash(&Value::str("seattle")), 747995832866758795);
        assert_eq!(fx_hash(&Value::Null), 5040379952546458196);
    }

    #[test]
    fn fx_hash_distinguishes_streams() {
        // write("ab") != write("a") + write("b") thanks to length folding
        let mut h1 = FxHasher::new();
        h1.write(b"ab");
        let mut h2 = FxHasher::new();
        h2.write(b"a");
        h2.write(b"b");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn value_hash_stable_within_process() {
        let a = fx_hash(&Value::Int(7));
        let b = fx_hash(&Value::Int(7));
        assert_eq!(a, b);
        assert_ne!(fx_hash(&Value::Int(7)), fx_hash(&Value::Int(8)));
    }

    #[test]
    fn mix_salts_redistribute() {
        let moved = (0..1000u64)
            .filter(|&i| fold_hash(fx_hash(&i), 16, 0) != fold_hash(fx_hash(&i), 16, 1))
            .count();
        assert!(moved > 800, "salted mix should redistribute, moved={moved}");
    }

    #[test]
    fn fold_hash_spreads_sequential_keys() {
        // Sequential integers must not pile into few buckets (the classic
        // weak-low-bits failure for multiply-based hashes).
        let mut counts = [0usize; 16];
        for i in 0..1600u64 {
            counts[fold_hash(fx_hash(&i), 16, 0)] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(c > 40, "bucket {b} starved: {c}/1600");
        }
    }

    #[test]
    fn prehash_map_basics() {
        let mut m: PrehashMap<Value, Vec<i64>> = PrehashMap::new();
        for i in 0..100i64 {
            let key = Value::Int(i % 10);
            let h = fx_hash(&key);
            m.entry_hashed(h, |k| *k == key, || key.clone()).push(i);
        }
        assert_eq!(m.len(), 10);
        let key = Value::Int(3);
        let h = fx_hash(&key);
        let rows = m.get_hashed(h, |k| *k == key).unwrap();
        assert_eq!(rows.len(), 10);
        assert!(rows.iter().all(|r| r % 10 == 3));
        let missing = Value::Int(11);
        assert!(m.get_hashed(fx_hash(&missing), |k| *k == missing).is_none());
    }

    #[test]
    fn prehash_map_drain_and_reuse() {
        let mut m: PrehashMap<Value, Vec<i64>> = PrehashMap::new();
        for i in 0..20i64 {
            let key = Value::Int(i);
            let h = fx_hash(&key);
            m.entry_hashed(h, |k| *k == key, || key.clone()).push(i);
        }
        let drained: Vec<_> = m.drain().collect();
        assert_eq!(drained.len(), 20);
        assert!(m.is_empty());
        // reusable after drain
        let key = Value::Int(5);
        let h = fx_hash(&key);
        m.entry_hashed(h, |k| *k == key, || key.clone()).push(5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn prehash_map_collision_safety() {
        // Same hash, different keys: equality confirmation must separate
        // them (forced by lying about the hash).
        let mut m: PrehashMap<Value, Vec<i64>> = PrehashMap::new();
        let a = Value::Int(1);
        let b = Value::Int(2);
        m.entry_hashed(7, |k| *k == a, || a.clone()).push(10);
        m.entry_hashed(7, |k| *k == b, || b.clone()).push(20);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get_hashed(7, |k| *k == a), Some(&vec![10]));
        assert_eq!(m.get_hashed(7, |k| *k == b), Some(&vec![20]));
    }
}
