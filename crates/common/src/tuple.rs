//! Immutable, cheaply-cloneable tuples.
//!
//! Joins in Tukwila are hash-based and produce concatenations of their input
//! tuples. A [`Tuple`] wraps `Arc<[Value]>`, so cloning a tuple into a hash
//! table, a transfer queue, or a spill bucket costs one refcount bump. The
//! double pipelined join holds *both* inputs in memory (§4.2.2), so this
//! representation is what makes the memory accounting meaningful.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of [`Value`]s.
#[derive(Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// The empty tuple (identity for [`Tuple::concat`]).
    pub fn empty() -> Self {
        Tuple {
            values: Vec::new().into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column accessor. Panics on out-of-range like slice indexing; use
    /// [`Tuple::get`] for the checked variant.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Checked column accessor.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Concatenate two tuples (join output). Allocates a fresh buffer of
    /// `self.arity() + other.arity()` values; the `Value`s themselves are
    /// cloned cheaply (strings are `Arc<str>`).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut out = Vec::with_capacity(self.values.len() + other.values.len());
        out.extend_from_slice(&self.values);
        out.extend_from_slice(&other.values);
        Tuple::new(out)
    }

    /// Project onto the given column indices (in the given order).
    ///
    /// Panics if an index is out of range — the planner validates indices
    /// before execution.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let out: Vec<Value> = indices.iter().map(|&i| self.values[i].clone()).collect();
        Tuple::new(out)
    }

    /// Extract the join key for `key_cols` as an owned vector of values.
    pub fn key(&self, key_cols: &[usize]) -> Vec<Value> {
        key_cols.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// Approximate resident memory footprint in bytes: the shared buffer
    /// plus the `Arc` header. Charged once per owning container by the
    /// memory manager; clones of the same tuple share the buffer, but each
    /// hash-table entry retains it, so operators charge per retained clone
    /// (a deliberate, conservative over-count matching the paper's model of
    /// "memory holds M tuples").
    pub fn mem_size(&self) -> usize {
        let header = std::mem::size_of::<Tuple>() + 2 * std::mem::size_of::<usize>();
        header + self.values.iter().map(Value::mem_size).sum::<usize>()
    }
}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values.hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values.iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "a", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;

    #[test]
    fn build_and_access() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.value(0), &Value::Int(1));
        assert_eq!(t.get(1), Some(&Value::str("x")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.value(0), &Value::Int(1));
        assert_eq!(c.value(2), &Value::str("x"));
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let a = tuple![1, "y"];
        assert_eq!(a.concat(&Tuple::empty()), a);
        assert_eq!(Tuple::empty().concat(&a), a);
    }

    #[test]
    fn project_reorders() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![30, 10]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple![10, "k", 30];
        assert_eq!(t.key(&[1]), vec![Value::str("k")]);
        assert_eq!(t.key(&[0, 2]), vec![Value::Int(10), Value::Int(30)]);
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, "some string payload"];
        let u = t.clone();
        // Same underlying buffer.
        assert!(std::ptr::eq(t.values().as_ptr(), u.values().as_ptr()));
    }

    #[test]
    fn mem_size_grows_with_payload() {
        let small = tuple![1];
        let big = tuple![1, 2, 3, "a long string that takes space"];
        assert!(big.mem_size() > small.mem_size());
    }

    #[test]
    fn display_formats() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    proptest! {
        #[test]
        fn prop_concat_arity(xs in proptest::collection::vec(0i64..100, 0..8),
                             ys in proptest::collection::vec(0i64..100, 0..8)) {
            let a = Tuple::new(xs.iter().copied().map(Value::Int).collect());
            let b = Tuple::new(ys.iter().copied().map(Value::Int).collect());
            let c = a.concat(&b);
            prop_assert_eq!(c.arity(), a.arity() + b.arity());
            for (i, x) in xs.iter().enumerate() {
                prop_assert_eq!(c.value(i), &Value::Int(*x));
            }
            for (j, y) in ys.iter().enumerate() {
                prop_assert_eq!(c.value(xs.len() + j), &Value::Int(*y));
            }
        }

        #[test]
        fn prop_project_identity(xs in proptest::collection::vec(0i64..100, 1..8)) {
            let t = Tuple::new(xs.iter().copied().map(Value::Int).collect());
            let all: Vec<usize> = (0..t.arity()).collect();
            prop_assert_eq!(t.project(&all), t);
        }
    }
}
