//! Immutable, cheaply-cloneable tuples.
//!
//! Joins in Tukwila are hash-based and produce concatenations of their input
//! tuples. A [`Tuple`] is a view into a shared `Arc<[Value]>` **block**: an
//! independently built tuple owns its whole block, while rows assembled by
//! [`crate::BatchAssembler`] are slices of one block shared by the whole
//! output batch — so hot emit loops pay one buffer allocation per *batch*
//! instead of one `Vec` plus one `Arc` per row. Cloning either form costs
//! one refcount bump. The double pipelined join holds *both* inputs in
//! memory (§4.2.2), so this representation is what makes the memory
//! accounting meaningful.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::value::Value;

/// An immutable row of [`Value`]s: a (possibly whole-block) view into a
/// shared value buffer.
///
/// The block is `Arc<[Value]>` (single indirection on every read — value
/// reads dominate the probe/hash paths, so this beats an adopt-the-Vec
/// `Arc<Vec<Value>>` representation even though sealing pays one move-copy
/// of the buffer into the `Arc` allocation).
#[derive(Clone)]
pub struct Tuple {
    block: Arc<[Value]>,
    start: u32,
    len: u32,
}

/// Per-row bookkeeping bytes charged by [`Tuple::mem_size`] on top of the
/// values (tuple struct + `Arc` header) — shared with the batch assembler
/// so incrementally tracked batch sizes match a fresh per-tuple sum.
pub(crate) const TUPLE_HEADER_BYTES: usize =
    std::mem::size_of::<Tuple>() + 2 * std::mem::size_of::<usize>();

impl Tuple {
    /// Build a tuple owning its own block.
    pub fn new(values: Vec<Value>) -> Self {
        let block: Arc<[Value]> = values.into();
        let len = block.len() as u32;
        Tuple {
            block,
            start: 0,
            len,
        }
    }

    /// The empty tuple (identity for [`Tuple::concat`]).
    pub fn empty() -> Self {
        Tuple::new(Vec::new())
    }

    /// A view of `len` values of `block` starting at `start` — the
    /// batch-assembly constructor ([`crate::BatchAssembler`] owns the only
    /// call sites; rows of one output batch share one block).
    pub(crate) fn view(block: Arc<[Value]>, start: usize, len: usize) -> Self {
        debug_assert!(start + len <= block.len());
        Tuple {
            block,
            start: start as u32,
            len: len as u32,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.len as usize
    }

    /// Column accessor. Panics on out-of-range like slice indexing; use
    /// [`Tuple::get`] for the checked variant.
    #[inline]
    pub fn value(&self, idx: usize) -> &Value {
        &self.values()[idx]
    }

    /// Checked column accessor.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values().get(idx)
    }

    /// All values as a slice.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.block[self.start as usize..(self.start + self.len) as usize]
    }

    /// Concatenate two tuples (join output). Allocates a fresh buffer of
    /// `self.arity() + other.arity()` values; the `Value`s themselves are
    /// cloned cheaply (strings are `Arc<str>`).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let a = self.values();
        let b = other.values();
        let mut out = Vec::with_capacity(a.len() + b.len());
        out.extend_from_slice(a);
        out.extend_from_slice(b);
        Tuple::new(out)
    }

    /// Project onto the given column indices (in the given order).
    ///
    /// Panics if an index is out of range — the planner validates indices
    /// before execution.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let vals = self.values();
        let out: Vec<Value> = indices.iter().map(|&i| vals[i].clone()).collect();
        Tuple::new(out)
    }

    /// Extract the join key for `key_cols` as an owned [`crate::JoinKey`]
    /// (inline for one- and two-column keys — no `Vec` allocation).
    pub fn key(&self, key_cols: &[usize]) -> crate::JoinKey {
        crate::JoinKey::from_tuple(self, key_cols)
    }

    /// Return a tuple owning exactly its own values. A no-op for tuples
    /// that already own their whole block; a partial view into a shared
    /// batch block is copied out. Long-term retainers whose memory
    /// accounting must track *freeable* bytes (the bucketed join tables,
    /// whose overflow flushes release their charge) detach on insert —
    /// otherwise one retained row would pin its entire batch block while
    /// the books claim only the slice.
    pub fn detach(self) -> Tuple {
        if self.len as usize == self.block.len() {
            self
        } else {
            Tuple::new(self.values().to_vec())
        }
    }

    /// Approximate resident memory footprint in bytes: the shared buffer
    /// plus the `Arc` header. Charged once per owning container by the
    /// memory manager; clones of the same tuple share the buffer, but each
    /// hash-table entry retains it, so operators charge per retained clone
    /// (a deliberate, conservative over-count matching the paper's model of
    /// "memory holds M tuples").
    pub fn mem_size(&self) -> usize {
        TUPLE_HEADER_BYTES + self.values().iter().map(Value::mem_size).sum::<usize>()
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.values() == other.values()
    }
}

impl Eq for Tuple {}

impl Hash for Tuple {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.values().hash(state);
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.values().iter()).finish()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

/// Convenience macro for building tuples in tests and examples:
/// `tuple![1, "a", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use proptest::prelude::*;

    #[test]
    fn build_and_access() {
        let t = Tuple::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.value(0), &Value::Int(1));
        assert_eq!(t.get(1), Some(&Value::str("x")));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn concat_preserves_order() {
        let a = tuple![1, 2];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.value(0), &Value::Int(1));
        assert_eq!(c.value(2), &Value::str("x"));
    }

    #[test]
    fn concat_with_empty_is_identity() {
        let a = tuple![1, "y"];
        assert_eq!(a.concat(&Tuple::empty()), a);
        assert_eq!(Tuple::empty().concat(&a), a);
    }

    #[test]
    fn project_reorders() {
        let t = tuple![10, 20, 30];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![30, 10]);
    }

    #[test]
    fn key_extraction() {
        let t = tuple![10, "k", 30];
        assert_eq!(t.key(&[1]), crate::JoinKey::One(Value::str("k")));
        assert_eq!(
            t.key(&[0, 2]),
            crate::JoinKey::Pair(Value::Int(10), Value::Int(30))
        );
    }

    #[test]
    fn detach_unshares_partial_views_only() {
        let block: Arc<[Value]> = vec![Value::Int(1), Value::Int(2), Value::Int(3)].into();
        let whole = Tuple::view(block.clone(), 0, 3);
        let part = Tuple::view(block.clone(), 1, 2);
        // whole-block view: no copy
        let whole_ptr = whole.values().as_ptr();
        assert!(std::ptr::eq(whole.detach().values().as_ptr(), whole_ptr));
        // partial view: copied into its own buffer, values preserved
        let detached = part.clone().detach();
        assert_eq!(detached, part);
        assert!(!std::ptr::eq(
            detached.values().as_ptr(),
            part.values().as_ptr()
        ));
    }

    #[test]
    fn view_tuples_share_one_block() {
        let block: Arc<[Value]> =
            vec![Value::Int(1), Value::Int(2), Value::str("x"), Value::Int(3)].into();
        let a = Tuple::view(block.clone(), 0, 2);
        let b = Tuple::view(block.clone(), 2, 2);
        assert_eq!(a, tuple![1, 2]);
        assert_eq!(b, tuple!["x", 3]);
        // same underlying buffer, disjoint ranges
        assert!(std::ptr::eq(
            a.values().as_ptr().wrapping_add(2),
            b.values().as_ptr()
        ));
    }

    #[test]
    fn clone_is_shallow() {
        let t = tuple![1, "some string payload"];
        let u = t.clone();
        // Same underlying buffer.
        assert!(std::ptr::eq(t.values().as_ptr(), u.values().as_ptr()));
    }

    #[test]
    fn mem_size_grows_with_payload() {
        let small = tuple![1];
        let big = tuple![1, 2, 3, "a long string that takes space"];
        assert!(big.mem_size() > small.mem_size());
    }

    #[test]
    fn display_formats() {
        assert_eq!(tuple![1, "a"].to_string(), "(1, a)");
        assert_eq!(Tuple::empty().to_string(), "()");
    }

    proptest! {
        #[test]
        fn prop_concat_arity(xs in proptest::collection::vec(0i64..100, 0..8),
                             ys in proptest::collection::vec(0i64..100, 0..8)) {
            let a = Tuple::new(xs.iter().copied().map(Value::Int).collect());
            let b = Tuple::new(ys.iter().copied().map(Value::Int).collect());
            let c = a.concat(&b);
            prop_assert_eq!(c.arity(), a.arity() + b.arity());
            for (i, x) in xs.iter().enumerate() {
                prop_assert_eq!(c.value(i), &Value::Int(*x));
            }
            for (j, y) in ys.iter().enumerate() {
                prop_assert_eq!(c.value(xs.len() + j), &Value::Int(*y));
            }
        }

        #[test]
        fn prop_project_identity(xs in proptest::collection::vec(0i64..100, 1..8)) {
            let t = Tuple::new(xs.iter().copied().map(Value::Int).collect());
            let all: Vec<usize> = (0..t.arity()).collect();
            prop_assert_eq!(t.project(&all), t);
        }
    }
}
