//! Golden diagnostics over the fixture corpus in `plans/`.
//!
//! Every file in `plans/bad/` is named `ta<code>_<slug>.plan` and must
//! produce its named diagnostic under the same oracle-less configuration
//! CI runs `plan-lint` with (`--max-parallelism 8`). Every file in
//! `plans/ok/` must be completely clean — zero findings of any severity.

use std::path::PathBuf;

use tukwila_analyze::Analyzer;
use tukwila_plan::diag::codes;
use tukwila_plan::parse_plan_unchecked;

fn plans_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../plans")
        .join(sub)
}

fn fixture_files(sub: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(plans_dir(sub))
        .unwrap_or_else(|e| panic!("missing fixture dir plans/{sub}: {e}"))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    files.sort();
    files
}

fn analyzer() -> Analyzer<'static> {
    // Mirrors CI's `plan-lint --max-parallelism 8`.
    Analyzer::new().with_max_parallelism(8)
}

#[test]
fn ok_fixtures_are_completely_clean() {
    let files = fixture_files("ok");
    assert!(!files.is_empty(), "no ok fixtures found");
    for file in files {
        let text = std::fs::read_to_string(&file).unwrap();
        let plan = parse_plan_unchecked(&text).unwrap();
        let report = analyzer().analyze(&plan);
        assert!(
            report.diagnostics.is_empty(),
            "{}: expected no findings, got:\n{}",
            file.display(),
            report.render(&plan)
        );
    }
}

#[test]
fn bad_fixtures_trip_their_named_code() {
    let files = fixture_files("bad");
    for file in &files {
        let stem = file.file_stem().unwrap().to_str().unwrap();
        let code = stem
            .split('_')
            .next()
            .map(str::to_uppercase)
            .unwrap_or_default();
        assert!(
            codes::lookup(&code).is_some(),
            "{}: file name does not start with a registered code",
            file.display()
        );
        let text = std::fs::read_to_string(file).unwrap();
        let plan = parse_plan_unchecked(&text)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", file.display()));
        let report = analyzer().analyze(&plan);
        assert!(
            report.has(&code),
            "{}: expected {code}, got:\n{}",
            file.display(),
            report.render(&plan)
        );
        // The severity the report carries must match the registry.
        let info = codes::lookup(&code).unwrap();
        let diag = report.diagnostics.iter().find(|d| d.code == code).unwrap();
        assert_eq!(diag.severity, info.severity, "{}", file.display());
    }
    // The acceptance floor: at least ten distinct codes covered by
    // one-fixture-each.
    let mut covered: Vec<String> = files
        .iter()
        .map(|f| {
            f.file_stem()
                .unwrap()
                .to_str()
                .unwrap()
                .split('_')
                .next()
                .unwrap()
                .to_uppercase()
        })
        .collect();
    covered.sort();
    covered.dedup();
    assert!(
        covered.len() >= 10,
        "only {} distinct codes covered: {covered:?}",
        covered.len()
    );
}

#[test]
fn error_fixtures_are_rejected_before_execution() {
    // Every bad fixture whose named code is Error severity must make the
    // plan non-executable.
    for file in fixture_files("bad") {
        let stem = file.file_stem().unwrap().to_str().unwrap();
        let code = stem.split('_').next().unwrap().to_uppercase();
        if codes::lookup(&code).unwrap().severity != tukwila_analyze::Severity::Error {
            continue;
        }
        let text = std::fs::read_to_string(&file).unwrap();
        let plan = parse_plan_unchecked(&text).unwrap();
        let report = analyzer().analyze(&plan);
        assert!(!report.is_executable(), "{}", file.display());
    }
}
