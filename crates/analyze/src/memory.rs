//! Pass 5: memory-reservation discipline (`TA04x`).
//!
//! At runtime, every operator with a `memory_budget` annotation gets a
//! reservation registered under the global memory governor — that is the
//! *only* path by which governor pressure (rebalancing, out-of-memory
//! events) reaches an operator. A stateful operator with no budget is
//! invisible to the governor (TA040). A partitioned exchange splits the
//! wrapped join's budget across its instances, so a budget smaller than
//! the partition count rounds to zero bytes per instance (TA041). Overflow
//! methods are implemented by the double-pipelined join's spill machinery;
//! installing one on any other join kind does nothing (TA042), and a
//! budgeted DPJ with `Fail` overflow and no `out_of_memory` rule to change
//! it will abort the query on its first overflow (TA043).

use tukwila_plan::diag::{codes, Diagnostic, Span};
use tukwila_plan::{
    Action, EventKind, FragmentId, JoinKind, OperatorNode, OperatorSpec, OverflowMethod, QueryPlan,
    SubjectRef,
};

/// Run the pass.
pub fn check(plan: &QueryPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &plan.fragments {
        walk(&f.root, f.id, plan, &mut diags);
    }
    diags
}

/// Whether any rule can resolve an out-of-memory condition on `op`:
/// either it listens for `out_of_memory(op)`, or one of its actions
/// installs an overflow method on `op`.
fn oom_handled(plan: &QueryPlan, op: tukwila_plan::OpId) -> bool {
    plan.all_rules().iter().any(|r| {
        (r.event.kind == EventKind::OutOfMemory && r.event.subject == SubjectRef::Op(op))
            || r.actions
                .iter()
                .any(|a| matches!(a, Action::SetOverflowMethod { op: target, .. } if *target == op))
    })
}

fn walk(node: &OperatorNode, fragment: FragmentId, plan: &QueryPlan, diags: &mut Vec<Diagnostic>) {
    let span = || Span::Op {
        fragment: Some(fragment),
        op: node.id,
    };
    match &node.spec {
        OperatorSpec::Join { kind, overflow, .. } => {
            if node.memory_budget.is_none() {
                diags.push(
                    Diagnostic::new(
                        codes::UNBUDGETED_STATEFUL_OP,
                        span(),
                        format!(
                            "{kind:?} join has no memory budget; the memory governor \
                             cannot reach it"
                        ),
                    )
                    .with_note("annotate the join with `:mem <bytes>`"),
                );
            }
            if *kind != JoinKind::DoublePipelined && *overflow != OverflowMethod::Fail {
                diags.push(Diagnostic::new(
                    codes::OVERFLOW_WITHOUT_SPILL_CONTEXT,
                    span(),
                    format!(
                        "overflow method {overflow:?} is set on a {kind:?} join, but only \
                         the double-pipelined join can spill incrementally"
                    ),
                ));
            }
            if *kind == JoinKind::DoublePipelined
                && *overflow == OverflowMethod::Fail
                && node.memory_budget.is_some()
                && !oom_handled(plan, node.id)
            {
                diags.push(
                    Diagnostic::new(
                        codes::UNHANDLED_OVERFLOW,
                        span(),
                        "double-pipelined join with `Fail` overflow has no out_of_memory \
                         rule; the first overflow aborts the query",
                    )
                    .with_note(
                        "set `:overflow left|symmetric|flushall` or add a rule on \
                         oom(<this op>)",
                    ),
                );
            }
        }
        OperatorSpec::Exchange { input, partitions } => {
            if let OperatorSpec::Join { .. } = &input.spec {
                if let Some(budget) = input.memory_budget {
                    if *partitions > 1 && budget / *partitions == 0 {
                        diags.push(
                            Diagnostic::new(
                                codes::PARTITION_BUDGET_UNDERFLOW,
                                span(),
                                format!(
                                    "join budget of {budget} byte(s) split across \
                                     {partitions} partitions rounds to zero bytes each"
                                ),
                            )
                            .with_note("raise the join's `:mem` or lower the partition count"),
                        );
                    }
                }
            }
        }
        _ => {}
    }
    for c in node.children() {
        walk(c, fragment, plan, diags);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_plan::parse_plan_unchecked;

    fn run(text: &str) -> Vec<&'static str> {
        let plan = parse_plan_unchecked(text).unwrap();
        check(&plan).iter().map(|d| d.code).collect()
    }

    #[test]
    fn budgeted_join_with_spill_is_clean() {
        let codes = run(
            "(fragment f (join dpj k = k :mem 65536 :overflow left (wrapper A) (wrapper B))) \
             (output f)",
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn unbudgeted_join_warned() {
        let codes = run("(fragment f (join hybrid k = k (wrapper A) (wrapper B))) (output f)");
        assert_eq!(codes, vec!["TA040"]);
    }

    #[test]
    fn partition_budget_underflow_warned() {
        let codes = run(
            "(fragment f (exchange 8 (join dpj k = k :mem 4 :overflow left
                (wrapper A) (wrapper B))))
             (output f)",
        );
        assert_eq!(codes, vec!["TA041"]);
    }

    #[test]
    fn overflow_on_non_dpj_warned() {
        // not expressible in plan text (the parser only applies :overflow
        // to dpj joins), so build it directly
        use tukwila_plan::{OperatorSpec, PlanBuilder};
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("A");
        let r = b.wrapper_scan("B");
        let mut j = b
            .join(JoinKind::HybridHash, l, r, "k", "k")
            .with_memory(4096);
        if let OperatorSpec::Join { overflow, .. } = &mut j.spec {
            *overflow = OverflowMethod::IncrementalLeftFlush;
        }
        let f = b.fragment(j, "out");
        let plan = b.build(f);
        let codes: Vec<_> = check(&plan).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["TA042"]);
    }

    #[test]
    fn unhandled_dpj_overflow_warned_unless_a_rule_covers_it() {
        let codes = run(
            "(fragment f (join dpj k = k :mem 4096 :overflow fail (wrapper A) (wrapper B))) \
             (output f)",
        );
        assert_eq!(codes, vec!["TA043"]);
        // an oom rule on the join silences it
        let codes = run("(fragment f
                (join dpj k = k :mem 4096 :overflow fail (wrapper A) (wrapper B))
                (rule \"save\" :owner f :when oom op2 :do (set-overflow op2 left)))
             (output f)");
        assert!(codes.is_empty(), "{codes:?}");
    }
}
