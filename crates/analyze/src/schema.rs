//! Pass 3: bottom-up schema/type inference (`TA02x`).
//!
//! Re-derives every operator's output schema the same way the execution
//! engine does at open time — wrapper schemas from the catalog, join
//! output as the concatenation of both sides, fragment materializations in
//! dependency order — and checks, per node:
//!
//! * every column reference resolves, unambiguously (TA020 / TA021) — this
//!   is what `validate_plan` never did, so a `project` referencing a column
//!   dropped by a child `project` used to survive to runtime;
//! * join keys and predicate comparisons are over comparable types
//!   (TA022 / TA023, mirroring `Value::sql_cmp`'s comparability);
//! * union inputs agree on arity and types (TA024 / TA025);
//! * no operator outputs the same qualified column twice (TA026).
//!
//! Where the schema is unknowable (no catalog, unknown materialization) the
//! inference degrades to [`Cols::Opaque`] and checks are suspended until a
//! `project` re-fixes the column set.

use std::collections::BTreeMap;

use tukwila_catalog::Catalog;
use tukwila_common::{DataType, FxHashMap, Value};
use tukwila_plan::diag::{codes, Diagnostic, Span};
use tukwila_plan::{FragmentId, OperatorNode, OperatorSpec, Predicate, QueryPlan};

use crate::typed::{Cols, Resolution, TCol};

/// Inferred output schemas, one per operator id (shared with the exchange
/// pass, which needs join-key nullability).
pub type SchemaMap = FxHashMap<u32, Cols>;

/// Run the pass. Returns the findings plus the per-operator schema map.
pub fn check(plan: &QueryPlan, catalog: Option<&Catalog>) -> (Vec<Diagnostic>, SchemaMap) {
    let mut ctx = Ctx {
        catalog,
        mats: BTreeMap::new(),
        schemas: SchemaMap::default(),
        diags: Vec::new(),
        fragment: FragmentId(0),
    };
    for f in fragment_order(plan) {
        ctx.fragment = f.id;
        let cols = ctx.infer(&f.root);
        ctx.mats.insert(f.materialize_as.clone(), cols);
    }
    (ctx.diags, ctx.schemas)
}

/// Fragments in dependency order (Kahn), so materialization schemas exist
/// before the scans that read them. On a cyclic or dangling dependency
/// graph (reported by the structure pass) the stragglers are appended in
/// plan order.
fn fragment_order(plan: &QueryPlan) -> Vec<&tukwila_plan::Fragment> {
    let mut done: Vec<FragmentId> = Vec::new();
    let mut out = Vec::new();
    loop {
        let mut progressed = false;
        for f in &plan.fragments {
            if done.contains(&f.id) {
                continue;
            }
            let ready = plan
                .dependencies
                .iter()
                .filter(|(_, after)| *after == f.id)
                .all(|(before, _)| done.contains(before));
            if ready {
                done.push(f.id);
                out.push(f);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    for f in &plan.fragments {
        if !done.contains(&f.id) {
            out.push(f);
        }
    }
    out
}

/// Whether `sql_cmp` can order these two types (NULL/unknown compares with
/// anything — the comparison is just three-valued at runtime).
fn comparable(a: DataType, b: DataType) -> bool {
    use DataType::*;
    matches!(
        (a, b),
        (Int, Int)
            | (Double, Double)
            | (Int, Double)
            | (Double, Int)
            | (Str, Str)
            | (Date, Date)
            | (Null, _)
            | (_, Null)
    )
}

fn literal_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Int(_) => Some(DataType::Int),
        Value::Double(_) => Some(DataType::Double),
        Value::Str(_) => Some(DataType::Str),
        Value::Date(_) => Some(DataType::Date),
        Value::Null => None,
    }
}

struct Ctx<'a> {
    catalog: Option<&'a Catalog>,
    /// Materialization name → producing fragment's inferred schema.
    mats: BTreeMap<String, Cols>,
    schemas: SchemaMap,
    diags: Vec<Diagnostic>,
    fragment: FragmentId,
}

impl Ctx<'_> {
    fn span(&self, node: &OperatorNode) -> Span {
        Span::Op {
            fragment: Some(self.fragment),
            op: node.id,
        }
    }

    fn source_cols(&self, name: &str) -> Cols {
        match self.catalog.and_then(|c| c.source(name).ok()) {
            Some(desc) => Cols::Known(
                desc.schema
                    .fields()
                    .iter()
                    .map(|f| TCol {
                        qualifier: f.qualifier.as_str().into(),
                        name: f.name.as_str().into(),
                        dtype: Some(f.data_type),
                        // catalog-backed sources never emit NULL
                        nullable: false,
                    })
                    .collect(),
            ),
            None => Cols::Opaque,
        }
    }

    /// Resolve a column reference, reporting TA020/TA021. Returns the
    /// resolved column, or None when unknown/ambiguous/opaque.
    fn resolve<'c>(
        &mut self,
        cols: &'c Cols,
        pattern: &str,
        node: &OperatorNode,
        what: &str,
    ) -> Option<&'c TCol> {
        match cols.resolve(pattern) {
            Resolution::Found(i) => match cols {
                Cols::Known(v) => Some(&v[i]),
                Cols::Opaque => None,
            },
            Resolution::Opaque => None,
            Resolution::Unknown => {
                self.diags.push(
                    Diagnostic::new(
                        codes::UNKNOWN_COLUMN,
                        self.span(node),
                        format!("{what} `{pattern}` does not resolve in the input schema"),
                    )
                    .with_note(format!("input columns: {}", cols.describe())),
                );
                None
            }
            Resolution::Ambiguous => {
                self.diags.push(
                    Diagnostic::new(
                        codes::AMBIGUOUS_COLUMN,
                        self.span(node),
                        format!("{what} `{pattern}` matches more than one input column"),
                    )
                    .with_note(format!("input columns: {}", cols.describe())),
                );
                None
            }
        }
    }

    fn check_predicate(&mut self, p: &Predicate, cols: &Cols, node: &OperatorNode) {
        match p {
            Predicate::True => {}
            Predicate::ColLit { col, op: _, value } => {
                let ct = self
                    .resolve(cols, col, node, "predicate column")
                    .and_then(|c| c.dtype);
                if let (Some(ct), Some(lt)) = (ct, literal_type(value)) {
                    if !comparable(ct, lt) {
                        self.diags.push(Diagnostic::new(
                            codes::PREDICATE_TYPE_MISMATCH,
                            self.span(node),
                            format!("predicate compares `{col}` ({ct}) with a {lt} literal"),
                        ));
                    }
                }
            }
            Predicate::ColCol { left, op: _, right } => {
                let lt = self
                    .resolve(cols, left, node, "predicate column")
                    .and_then(|c| c.dtype);
                let rt = self
                    .resolve(cols, right, node, "predicate column")
                    .and_then(|c| c.dtype);
                if let (Some(lt), Some(rt)) = (lt, rt) {
                    if !comparable(lt, rt) {
                        self.diags.push(Diagnostic::new(
                            codes::PREDICATE_TYPE_MISMATCH,
                            self.span(node),
                            format!("predicate compares `{left}` ({lt}) with `{right}` ({rt})"),
                        ));
                    }
                }
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    self.check_predicate(p, cols, node);
                }
            }
            Predicate::Not(inner) => self.check_predicate(inner, cols, node),
        }
    }

    /// Columns a predicate proves non-NULL when it passes: the columns
    /// compared in top-level conjuncts (3VL — a NULL comparand makes the
    /// comparison unknown and the row is dropped).
    fn filtered_columns<'p>(p: &'p Predicate, out: &mut Vec<&'p str>) {
        match p {
            Predicate::ColLit { col, .. } => out.push(col),
            Predicate::ColCol { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Predicate::And(ps) => {
                for p in ps {
                    Self::filtered_columns(p, out);
                }
            }
            _ => {}
        }
    }

    /// Warn (TA026) when an operator's output repeats a qualified name.
    fn check_duplicate_output(&mut self, cols: &Cols, node: &OperatorNode) {
        if let Cols::Known(v) = cols {
            let mut seen = std::collections::BTreeSet::new();
            for c in v {
                if !seen.insert((c.qualifier.clone(), c.name.clone())) {
                    self.diags.push(Diagnostic::new(
                        codes::DUPLICATE_OUTPUT_COLUMN,
                        self.span(node),
                        format!("output schema repeats column `{}`", c.qualified_name()),
                    ));
                }
            }
        }
    }

    fn infer(&mut self, node: &OperatorNode) -> Cols {
        let cols = match &node.spec {
            OperatorSpec::TableScan { table } => {
                self.mats.get(table).cloned().unwrap_or(Cols::Opaque)
            }
            OperatorSpec::WrapperScan { source, .. } => self.source_cols(source),
            OperatorSpec::Select { input, predicate } => {
                let input_cols = self.infer(input);
                self.check_predicate(predicate, &input_cols, node);
                // narrow nullability for filtered columns
                match input_cols {
                    kc @ Cols::Known(_) => {
                        let mut filtered = Vec::new();
                        Self::filtered_columns(predicate, &mut filtered);
                        let hits: Vec<usize> = filtered
                            .iter()
                            .filter_map(|pattern| match kc.resolve(pattern) {
                                Resolution::Found(i) => Some(i),
                                _ => None,
                            })
                            .collect();
                        let Cols::Known(mut v) = kc else {
                            unreachable!()
                        };
                        for i in hits {
                            v[i].nullable = false;
                        }
                        Cols::Known(v)
                    }
                    Cols::Opaque => Cols::Opaque,
                }
            }
            OperatorSpec::Project { input, columns } => {
                let input_cols = self.infer(input);
                let mut out = Vec::with_capacity(columns.len());
                for pattern in columns {
                    match input_cols.resolve(pattern) {
                        Resolution::Found(i) => {
                            if let Cols::Known(v) = &input_cols {
                                out.push(v[i].clone());
                            }
                        }
                        // a project over an opaque input still *fixes* the
                        // output column set — downstream resolution checks
                        // resume from here
                        Resolution::Opaque => out.push(TCol::from_pattern(pattern)),
                        Resolution::Unknown | Resolution::Ambiguous => {
                            // report via resolve(), keep the named column so
                            // one bad reference doesn't cascade
                            self.resolve(&input_cols, pattern, node, "projected column");
                            out.push(TCol::from_pattern(pattern));
                        }
                    }
                }
                let cols = Cols::Known(out);
                self.check_duplicate_output(&cols, node);
                cols
            }
            OperatorSpec::Join {
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                let l = self.infer(left);
                let r = self.infer(right);
                let lt = self
                    .resolve(&l, left_key, node, "join key")
                    .and_then(|c| c.dtype);
                let rt = self
                    .resolve(&r, right_key, node, "join key")
                    .and_then(|c| c.dtype);
                if let (Some(lt), Some(rt)) = (lt, rt) {
                    if !comparable(lt, rt) {
                        self.diags.push(Diagnostic::new(
                            codes::JOIN_KEY_TYPE_MISMATCH,
                            self.span(node),
                            format!(
                                "join keys `{left_key}` ({lt}) and `{right_key}` ({rt}) \
                                 have incomparable types"
                            ),
                        ));
                    }
                }
                match (l, r) {
                    (Cols::Known(mut lv), Cols::Known(rv)) => {
                        lv.extend(rv);
                        Cols::Known(lv)
                    }
                    _ => Cols::Opaque,
                }
            }
            OperatorSpec::DependentJoin {
                left,
                source,
                bind_col,
                probe_col,
            } => {
                let l = self.infer(left);
                let s = self.source_cols(source);
                let bt = self
                    .resolve(&l, bind_col, node, "binding column")
                    .and_then(|c| c.dtype);
                let pt = self
                    .resolve(&s, probe_col, node, "probe column")
                    .and_then(|c| c.dtype);
                if let (Some(bt), Some(pt)) = (bt, pt) {
                    if !comparable(bt, pt) {
                        self.diags.push(Diagnostic::new(
                            codes::JOIN_KEY_TYPE_MISMATCH,
                            self.span(node),
                            format!(
                                "dependent-join columns `{bind_col}` ({bt}) and \
                                 `{probe_col}` ({pt}) have incomparable types"
                            ),
                        ));
                    }
                }
                match (l, s) {
                    (Cols::Known(mut lv), Cols::Known(sv)) => {
                        lv.extend(sv);
                        Cols::Known(lv)
                    }
                    _ => Cols::Opaque,
                }
            }
            OperatorSpec::Union { inputs } => {
                let all: Vec<Cols> = inputs.iter().map(|i| self.infer(i)).collect();
                self.check_branch_compat(&all, node, "union input");
                self.merge_branches(&all)
            }
            OperatorSpec::Exchange { input, .. } => self.infer(input),
            OperatorSpec::Collector { children, .. } => {
                let all: Vec<Cols> = children
                    .iter()
                    .map(|c| self.source_cols(&c.source))
                    .collect();
                self.check_branch_compat(&all, node, "collector child");
                self.merge_branches(&all)
            }
        };
        // Opaque entries carry no information for the exchange pass (a
        // missing entry means the same thing) — don't store them.
        if matches!(cols, Cols::Known(_)) {
            self.schemas.insert(node.id.0, cols.clone());
        }
        cols
    }

    /// TA024/TA025 over the branches of a union or collector.
    fn check_branch_compat(&mut self, all: &[Cols], node: &OperatorNode, what: &str) {
        let known: Vec<(usize, &Vec<TCol>)> = all
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                Cols::Known(v) => Some((i, v)),
                Cols::Opaque => None,
            })
            .collect();
        let Some((first_idx, first)) = known.first() else {
            return;
        };
        for (i, v) in known.iter().skip(1) {
            if v.len() != first.len() {
                self.diags.push(Diagnostic::new(
                    codes::UNION_ARITY_MISMATCH,
                    self.span(node),
                    format!(
                        "{what} {i} has {} column(s) but {what} {first_idx} has {}",
                        v.len(),
                        first.len()
                    ),
                ));
                continue;
            }
            for (pos, (a, b)) in first.iter().zip(v.iter()).enumerate() {
                if let (Some(at), Some(bt)) = (a.dtype, b.dtype) {
                    if !comparable(at, bt) {
                        self.diags.push(Diagnostic::new(
                            codes::UNION_TYPE_MISMATCH,
                            self.span(node),
                            format!(
                                "{what}s disagree at column {pos}: `{}` is {at} but `{}` is {bt}",
                                a.qualified_name(),
                                b.qualified_name()
                            ),
                        ));
                    }
                }
            }
        }
    }

    /// Output schema of a union/collector: the first known branch, with a
    /// column nullable when it is nullable in *any* branch.
    fn merge_branches(&self, all: &[Cols]) -> Cols {
        let mut known = all.iter().filter_map(|c| match c {
            Cols::Known(v) => Some(v),
            Cols::Opaque => None,
        });
        let Some(first) = known.next() else {
            return Cols::Opaque;
        };
        if all.iter().any(|c| matches!(c, Cols::Opaque)) {
            return Cols::Opaque;
        }
        let mut out = first.clone();
        for branch in known {
            if branch.len() != out.len() {
                continue; // arity mismatch already reported
            }
            for (c, b) in out.iter_mut().zip(branch.iter()) {
                c.nullable |= b.nullable;
                if c.dtype.is_none() {
                    c.dtype = b.dtype;
                }
            }
        }
        Cols::Known(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_catalog::SourceDesc;
    use tukwila_common::Schema;
    use tukwila_plan::parse_plan_unchecked;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(SourceDesc::new(
            "orders",
            "orders",
            Schema::of(
                "orders",
                &[("okey", DataType::Int), ("cust", DataType::Str)],
            ),
        ));
        c.add_source(SourceDesc::new(
            "customer",
            "customer",
            Schema::of(
                "customer",
                &[("ckey", DataType::Int), ("name", DataType::Str)],
            ),
        ));
        c.add_source(SourceDesc::new(
            "customer2",
            "customer",
            Schema::of(
                "customer",
                &[("ckey", DataType::Int), ("name", DataType::Str)],
            ),
        ));
        c
    }

    fn diags_for(text: &str) -> Vec<Diagnostic> {
        let plan = parse_plan_unchecked(text).unwrap();
        let cat = catalog();
        check(&plan, Some(&cat)).0
    }

    fn codes_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_join_has_no_findings() {
        let d = diags_for(
            "(fragment f (join dpj okey = ckey (wrapper orders) (wrapper customer))) (output f)",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unknown_and_ambiguous_columns() {
        let d = diags_for(
            r#"
            (fragment f (select (lit ghost = 1)
                (join dpj okey = ckey (wrapper orders) (wrapper customer))))
            (output f)
            "#,
        );
        assert_eq!(codes_of(&d), vec!["TA020"]);

        // `ckey` is unambiguous, but joining customer with itself makes it
        // ambiguous for downstream references
        let d = diags_for(
            r#"
            (fragment f (project [ckey]
                (join hybrid customer.ckey = customer.ckey
                    (wrapper customer) (wrapper customer2))))
            (output f)
            "#,
        );
        assert!(codes_of(&d).contains(&"TA021"), "{d:?}");
    }

    #[test]
    fn project_dropping_column_then_referencing_it_rejected() {
        // The latent validate_plan gap: inner project drops `okey`, outer
        // project references it. validate_plan accepted this; the schema
        // pass must not.
        let d = diags_for(
            r#"
            (fragment f (project [okey] (project [cust] (wrapper orders))))
            (output f)
            "#,
        );
        assert_eq!(codes_of(&d), vec!["TA020"], "{d:?}");
        // …and the same must hold with no catalog at all: the inner
        // project still fixes the column set over an opaque wrapper.
        let plan = parse_plan_unchecked(
            "(fragment f (project [okey] (project [cust] (wrapper mystery)))) (output f)",
        )
        .unwrap();
        let (d, _) = check(&plan, None);
        assert_eq!(codes_of(&d), vec!["TA020"], "{d:?}");
    }

    #[test]
    fn join_key_and_predicate_type_mismatches() {
        let d = diags_for(
            "(fragment f (join dpj okey = name (wrapper orders) (wrapper customer))) (output f)",
        );
        assert_eq!(codes_of(&d), vec!["TA022"]);

        let d = diags_for(r#"(fragment f (select cust = 42 (wrapper orders))) (output f)"#);
        assert_eq!(codes_of(&d), vec!["TA023"]);

        let d =
            diags_for(r#"(fragment f (select (cols okey = cust) (wrapper orders))) (output f)"#);
        assert_eq!(codes_of(&d), vec!["TA023"]);
    }

    #[test]
    fn union_arity_and_type_mismatches() {
        let d = diags_for(
            r#"
            (fragment f (union (wrapper orders) (project [ckey] (wrapper customer))))
            (output f)
            "#,
        );
        assert_eq!(codes_of(&d), vec!["TA024"]);

        let d = diags_for(
            r#"
            (fragment f (union
                (project [okey, cust] (wrapper orders))
                (project [name, ckey] (wrapper customer))))
            (output f)
            "#,
        );
        assert_eq!(codes_of(&d), vec!["TA025", "TA025"], "{d:?}");
    }

    #[test]
    fn duplicate_projected_column_warned() {
        let d = diags_for("(fragment f (project [okey, okey] (wrapper orders))) (output f)");
        assert_eq!(codes_of(&d), vec!["TA026"]);
    }

    #[test]
    fn materialization_schemas_flow_across_fragments() {
        // f0 projects `cust` away; f1 scans the materialization and
        // references it — must be TA020 even across the fragment boundary.
        let d = diags_for(
            r#"
            (fragment f0 (project [okey] (wrapper orders)))
            (fragment f1 (select (lit cust = "x") (scan mat_f0)))
            (after f0 f1)
            (output f1)
            "#,
        );
        assert_eq!(codes_of(&d), vec!["TA020"], "{d:?}");
    }

    #[test]
    fn select_narrows_nullability() {
        let plan = parse_plan_unchecked(
            "(fragment f (select (lit okey > 0) (project [okey, cust] (wrapper mystery)))) (output f)",
        )
        .unwrap();
        let (_, schemas) = check(&plan, None);
        // the select is the fragment root: its output `okey` is proven
        // non-null, `cust` stays nullable
        let root_id = plan.fragments[0].root.id.0;
        match schemas.get(&root_id).unwrap() {
            Cols::Known(v) => {
                assert!(!v[0].nullable, "{v:?}");
                assert!(v[1].nullable, "{v:?}");
            }
            Cols::Opaque => panic!("expected known schema"),
        }
    }
}
