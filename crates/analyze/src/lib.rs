//! # tukwila-analyze
//!
//! Multi-pass static analyzer over [`QueryPlan`]s and their ECA rule sets.
//!
//! Tukwila's adaptivity means one logical query passes through many plan
//! shapes — optimizer lowerings, rule-driven re-plans, hand-written
//! experiment plans — and the invariants those shapes must satisfy (schemas
//! agree bottom-up, exchange wraps only partitionable joins, memory budgets
//! are parented under the governor, rules resolve to live plan elements)
//! were historically enforced only dynamically, by whichever query tripped
//! them at runtime. This crate checks them *statically*, before execution,
//! reporting **all** findings through the lint-style diagnostics engine in
//! [`tukwila_plan::diag`] instead of bailing on the first.
//!
//! Five passes run in order (the first two live in `tukwila-plan` because
//! `validate_plan` needs them; this crate adds the rest and composes all
//! five):
//!
//! 1. **structure** ([`tukwila_plan::analyze_structure`]) — ids,
//!    dependency DAG, orphan fragments (`TA00x`);
//! 2. **rules** ([`tukwila_plan::analyze_rules`]) — subject resolution,
//!    conflicts, shadowing, dead timeout rules (`TA01x`);
//! 3. **schema** ([`schema`]) — bottom-up schema/type inference with
//!    column resolution and predicate type checking (`TA02x`);
//! 4. **exchange** ([`exchange`]) — parallelism discipline (`TA03x`);
//! 5. **memory** ([`memory`]) — memory-reservation discipline (`TA04x`).
//!
//! The analyzer is consulted in three places: the optimizer runs it on
//! every lowered plan (Error findings abort before execution), the service
//! tier surfaces per-query diagnostic counts in its statistics, and the
//! `plan-lint` binary checks plan-text files in CI.
//!
//! ```
//! use tukwila_analyze::Analyzer;
//! use tukwila_plan::parse_plan_unchecked;
//!
//! let plan = parse_plan_unchecked(
//!     "(fragment f (exchange 2 (join nlj k = k (wrapper A) (wrapper B)))) (output f)",
//! ).unwrap();
//! let report = Analyzer::new().analyze(&plan);
//! assert!(report.has("TA030")); // nlj is not hash-partitionable
//! assert!(report.is_executable()); // …but that is a Warn, not an Error
//! ```

pub mod exchange;
pub mod memory;
pub mod schema;

use tukwila_catalog::Catalog;
use tukwila_plan::diag::Report;
use tukwila_plan::QueryPlan;

pub use tukwila_plan::diag::{codes, Diagnostic, Severity, Span};
pub use typed::{Cols, Resolution, TCol};

/// The composed multi-pass analyzer.
///
/// Without a catalog, source schemas are opaque: column references through
/// wrappers resolve to untyped, nullable columns and type checks are
/// skipped (resolution checks still run wherever a `project` fixes the
/// column set). Without a `max_parallelism`, the partition-count bound
/// (TA031) is skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analyzer<'a> {
    catalog: Option<&'a Catalog>,
    max_parallelism: Option<usize>,
}

impl<'a> Analyzer<'a> {
    /// Oracle-less analyzer (used by `plan-lint` on bare plan files).
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// Resolve wrapper-scan schemas against a source catalog, enabling the
    /// full type-checking half of the schema pass.
    pub fn with_catalog(mut self, catalog: &'a Catalog) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Bound exchange partition counts (TA031) by the optimizer's
    /// configured maximum parallelism.
    pub fn with_max_parallelism(mut self, n: usize) -> Self {
        self.max_parallelism = Some(n);
        self
    }

    /// Run every pass and return the accumulated report.
    pub fn analyze(&self, plan: &QueryPlan) -> Report {
        let mut report = Report::new();
        report.extend(tukwila_plan::analyze_structure(plan));
        report.extend(tukwila_plan::analyze_rules(plan));
        let (diags, schemas) = schema::check(plan, self.catalog);
        report.extend(diags);
        report.extend(exchange::check(plan, self.max_parallelism, &schemas));
        report.extend(memory::check(plan));
        report
    }
}

/// One-shot oracle-less analysis.
pub fn analyze_plan(plan: &QueryPlan) -> Report {
    Analyzer::new().analyze(plan)
}

mod typed {
    use std::rc::Rc;
    use tukwila_common::DataType;

    /// One inferred column: a [`tukwila_common::Field`] whose type may be
    /// unknown (no oracle behind it) plus a nullability bit the engine's
    /// schemas do not carry — catalog-backed sources never emit NULL, a
    /// comparison filter proves its column non-NULL downstream (3VL drops
    /// unknown rows), everything else is assumed nullable.
    ///
    /// Name parts are `Rc<str>`: inferred schemas are cloned at every
    /// operator (the per-op [`SchemaMap`](crate::schema::SchemaMap) entry,
    /// join concatenation), and the schema pass dominates analyzer time
    /// when those clones re-allocate strings.
    #[derive(Debug, Clone, PartialEq)]
    pub struct TCol {
        /// Originating relation; empty for unqualified columns.
        pub qualifier: Rc<str>,
        /// Column name.
        pub name: Rc<str>,
        /// Inferred type, when an oracle or a literal pinned one down.
        pub dtype: Option<DataType>,
        /// Whether the column may hold NULL.
        pub nullable: bool,
    }

    impl TCol {
        /// Untyped, nullable column from a `name` / `qualifier.name`
        /// reference pattern.
        pub fn from_pattern(pattern: &str) -> TCol {
            let (qualifier, name) = match pattern.split_once('.') {
                Some((q, n)) => (Rc::from(q), Rc::from(n)),
                None => (Rc::from(""), Rc::from(pattern)),
            };
            TCol {
                qualifier,
                name,
                dtype: None,
                nullable: true,
            }
        }

        /// Same resolution contract as `Field::matches`.
        pub fn matches(&self, pattern: &str) -> bool {
            match pattern.split_once('.') {
                Some((q, n)) => &*self.qualifier == q && &*self.name == n,
                None => &*self.name == pattern,
            }
        }

        /// `qualifier.name`, or just `name` when unqualified.
        pub fn qualified_name(&self) -> String {
            if self.qualifier.is_empty() {
                self.name.to_string()
            } else {
                format!("{}.{}", self.qualifier, self.name)
            }
        }
    }

    /// An operator's inferred output schema. `Opaque` means the analyzer
    /// cannot know the column set (wrapper without a catalog, scan of an
    /// unknown materialization) and resolution checks are skipped below it
    /// until a `project` re-fixes the columns.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Cols {
        /// Known column list (types may still be individually unknown).
        Known(Vec<TCol>),
        /// Unknown column set.
        Opaque,
    }

    /// How a column reference resolves against an inferred schema.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub enum Resolution {
        /// Exactly one match, at this index.
        Found(usize),
        /// More than one match.
        Ambiguous,
        /// No match.
        Unknown,
        /// The schema is opaque — no verdict.
        Opaque,
    }

    impl Cols {
        /// Resolve `pattern` with the engine's `Schema::index_of` contract.
        pub fn resolve(&self, pattern: &str) -> Resolution {
            let cols = match self {
                Cols::Known(cols) => cols,
                Cols::Opaque => return Resolution::Opaque,
            };
            let mut found = None;
            for (i, c) in cols.iter().enumerate() {
                if c.matches(pattern) {
                    if found.is_some() {
                        return Resolution::Ambiguous;
                    }
                    found = Some(i);
                }
            }
            match found {
                Some(i) => Resolution::Found(i),
                None => Resolution::Unknown,
            }
        }

        /// The available column names, for diagnostics.
        pub fn describe(&self) -> String {
            match self {
                Cols::Known(cols) => cols
                    .iter()
                    .map(TCol::qualified_name)
                    .collect::<Vec<_>>()
                    .join(", "),
                Cols::Opaque => "<opaque>".to_string(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_catalog::SourceDesc;
    use tukwila_common::{DataType, Schema};
    use tukwila_plan::parse_plan_unchecked;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_source(SourceDesc::new(
            "orders",
            "orders",
            Schema::of(
                "orders",
                &[("okey", DataType::Int), ("cust", DataType::Str)],
            ),
        ));
        c.add_source(SourceDesc::new(
            "customer",
            "customer",
            Schema::of(
                "customer",
                &[("ckey", DataType::Int), ("name", DataType::Str)],
            ),
        ));
        c
    }

    #[test]
    fn clean_plan_is_clean() {
        let plan = parse_plan_unchecked(
            r#"
            (fragment f (join dpj okey = ckey :mem 65536
                (wrapper orders)
                (wrapper customer)))
            (output f)
            "#,
        )
        .unwrap();
        let report = Analyzer::new().with_catalog(&catalog()).analyze(&plan);
        assert_eq!(report.error_count(), 0, "{}", report.render(&plan));
    }

    #[test]
    fn every_pass_contributes() {
        // One plan tripping at least one code from each pass family.
        let plan = parse_plan_unchecked(
            r#"
            (fragment f (exchange 4 (exchange 2 (join nlj ghost = ckey
                (wrapper orders)
                (wrapper customer)))))
            (fragment dead (wrapper orders))
            (rule "r" :owner op99 :when timeout op0 :do replan)
            (output f)
            "#,
        )
        .unwrap();
        let report = Analyzer::new().with_catalog(&catalog()).analyze(&plan);
        assert!(report.has("TA007"), "structure: {}", report.render(&plan));
        assert!(report.has("TA010"), "rules: {}", report.render(&plan));
        assert!(report.has("TA020"), "schema: {}", report.render(&plan));
        assert!(report.has("TA032"), "exchange: {}", report.render(&plan));
        assert!(report.has("TA040"), "memory: {}", report.render(&plan));
        assert!(!report.is_executable());
    }
}
