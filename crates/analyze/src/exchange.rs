//! Pass 4: exchange / parallelism discipline (`TA03x`).
//!
//! The partitioned exchange of PR 5 only parallelizes hash-partitionable
//! joins, and the engine silently degrades everything else to a
//! passthrough. This pass makes those silent behaviors visible and rejects
//! the one shape the runtime cannot express at all (an exchange nested
//! inside another exchange — partition instances are fragment-local and do
//! not re-partition):
//!
//! * TA030: exchange over a join kind that is not hash-partitionable;
//! * TA031: partition count above the configured `max_parallelism`;
//! * TA032: an exchange *directly* wrapping another exchange (Error) —
//!   partition instances cannot re-partition their own output. An exchange
//!   deeper in a partitioned join's input subtree is fine: it runs as its
//!   own operator and feeds whole tuples to the outer partitioner;
//! * TA033: a partitioned join key that may be NULL — hash partitioning
//!   routes NULL keys to a partition where they can never match, so NULL
//!   rows are silently dropped from the join input;
//! * TA034: a single-partition exchange (pure passthrough overhead).

use tukwila_plan::diag::{codes, Diagnostic, Span};
use tukwila_plan::{FragmentId, OperatorNode, OperatorSpec, QueryPlan};

use crate::schema::SchemaMap;
use crate::typed::{Cols, Resolution};

/// Run the pass. `schemas` comes from the schema pass and supplies
/// join-key nullability for TA033.
pub fn check(
    plan: &QueryPlan,
    max_parallelism: Option<usize>,
    schemas: &SchemaMap,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &plan.fragments {
        walk(&f.root, f.id, max_parallelism, schemas, &mut diags);
    }
    diags
}

fn walk(
    node: &OperatorNode,
    fragment: FragmentId,
    max_parallelism: Option<usize>,
    schemas: &SchemaMap,
    diags: &mut Vec<Diagnostic>,
) {
    let span = || Span::Op {
        fragment: Some(fragment),
        op: node.id,
    };
    if let OperatorSpec::Exchange { input, partitions } = &node.spec {
        if matches!(&input.spec, OperatorSpec::Exchange { .. }) {
            diags.push(Diagnostic::new(
                codes::NESTED_EXCHANGE,
                span(),
                "exchange directly wraps another exchange; partition instances \
                 cannot re-partition",
            ));
        }
        if let Some(maxp) = max_parallelism {
            if *partitions > maxp {
                diags.push(Diagnostic::new(
                    codes::EXCHANGE_OVER_PARALLELISM,
                    span(),
                    format!(
                        "{partitions} partitions exceed the configured max parallelism of {maxp}"
                    ),
                ));
            }
        }
        match &input.spec {
            OperatorSpec::Join {
                kind,
                left,
                right,
                left_key,
                right_key,
                ..
            } => {
                if !kind.is_hash_partitionable() {
                    diags.push(Diagnostic::new(
                        codes::EXCHANGE_NOT_PARTITIONABLE,
                        span(),
                        format!(
                            "exchange wraps a {kind:?} join, which is not hash-partitionable; \
                             it will run as a passthrough"
                        ),
                    ));
                } else {
                    if *partitions == 1 {
                        diags.push(Diagnostic::new(
                            codes::EXCHANGE_PASSTHROUGH,
                            span(),
                            "single-partition exchange is a passthrough",
                        ));
                    }
                    for (child, key) in [(left, left_key), (right, right_key)] {
                        if let Some(cols @ Cols::Known(v)) = schemas.get(&child.id.0) {
                            if let Resolution::Found(i) = cols.resolve(key) {
                                if v[i].nullable {
                                    diags.push(
                                        Diagnostic::new(
                                            codes::NULLABLE_EXCHANGE_KEY,
                                            span(),
                                            format!(
                                                "partitioned join key `{key}` may be NULL; \
                                                 NULL-keyed rows are dropped by hash partitioning"
                                            ),
                                        )
                                        .with_note(
                                            "filter the key non-NULL below the exchange, or \
                                             run the join unpartitioned",
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                diags.push(Diagnostic::new(
                    codes::EXCHANGE_NOT_PARTITIONABLE,
                    span(),
                    format!(
                        "exchange wraps `{}`, which is not a join; it will run as a passthrough",
                        input.label()
                    ),
                ));
            }
        }
        walk(input, fragment, max_parallelism, schemas, diags);
    } else {
        for c in node.children() {
            walk(c, fragment, max_parallelism, schemas, diags);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use tukwila_plan::parse_plan_unchecked;

    fn run(text: &str, max_parallelism: Option<usize>) -> Vec<&'static str> {
        let plan = parse_plan_unchecked(text).unwrap();
        let (_, schemas) = schema::check(&plan, None);
        check(&plan, max_parallelism, &schemas)
            .iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn clean_exchange_is_clean() {
        let codes = run(
            "(fragment f (exchange 4 (join dpj k = k (wrapper A) (wrapper B)))) (output f)",
            Some(8),
        );
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn non_partitionable_join_warned() {
        let codes = run(
            "(fragment f (exchange 4 (join nlj k = k (wrapper A) (wrapper B)))) (output f)",
            None,
        );
        assert_eq!(codes, vec!["TA030"]);
    }

    #[test]
    fn non_join_input_warned() {
        let codes = run("(fragment f (exchange 4 (wrapper A))) (output f)", None);
        assert_eq!(codes, vec!["TA030"]);
    }

    #[test]
    fn partition_count_bounded() {
        let codes = run(
            "(fragment f (exchange 16 (join dpj k = k (wrapper A) (wrapper B)))) (output f)",
            Some(4),
        );
        assert_eq!(codes, vec!["TA031"]);
    }

    #[test]
    fn nested_exchange_is_error() {
        let codes = run(
            "(fragment f (exchange 2 (exchange 2 (join dpj k = k (wrapper A) (wrapper B))))) \
             (output f)",
            None,
        );
        // outer exchange wraps a non-join (the inner exchange) → TA030;
        // inner exchange is nested → TA032
        assert!(codes.contains(&"TA032"), "{codes:?}");
    }

    #[test]
    fn single_partition_is_info() {
        let codes = run(
            "(fragment f (exchange 1 (join dpj k = k (wrapper A) (wrapper B)))) (output f)",
            None,
        );
        assert_eq!(codes, vec!["TA034"]);
    }

    #[test]
    fn nullable_key_warned_only_when_provably_nullable() {
        // oracle-less wrapper → opaque schema → no TA033
        let codes = run(
            "(fragment f (exchange 2 (join dpj k = k (wrapper A) (wrapper B)))) (output f)",
            None,
        );
        assert!(codes.is_empty(), "{codes:?}");
        // a project fixes the columns (untyped, nullable) → TA033 on both keys
        let codes = run(
            "(fragment f (exchange 2 (join dpj k = k
                (project [k] (wrapper A))
                (project [k] (wrapper B)))))
             (output f)",
            None,
        );
        assert_eq!(codes, vec!["TA033", "TA033"]);
        // …and a comparison filter under the exchange proves it non-NULL
        let codes = run(
            "(fragment f (exchange 2 (join dpj k = k
                (select (lit k > 0) (project [k] (wrapper A)))
                (select (lit k > 0) (project [k] (wrapper B))))))
             (output f)",
            None,
        );
        assert!(codes.is_empty(), "{codes:?}");
    }
}
