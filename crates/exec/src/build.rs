//! Instantiate operator trees from plan nodes.

use std::sync::Arc;

use tukwila_common::Result;
use tukwila_plan::{JoinKind, OperatorNode, OperatorSpec, SubjectRef};

use crate::operator::OperatorBox;
use crate::operators::{
    Collector, DependentJoin, DoublePipelinedJoin, Exchange, Filter, HashJoinOp, NestedLoopsJoin,
    Project, RemoteExchange, SortMergeJoin, TableScan, UnionAll, WrapperScan,
};
use crate::runtime::{OpHarness, PlanRuntime};

/// Build the executable operator for a plan node (recursively building its
/// children). The operator is not yet opened.
pub fn build_operator(node: &OperatorNode, rt: &Arc<PlanRuntime>) -> Result<OperatorBox> {
    let harness = OpHarness::new(rt.clone(), SubjectRef::Op(node.id));
    Ok(match &node.spec {
        OperatorSpec::TableScan { table } => Box::new(TableScan::new(table.clone(), harness)),
        OperatorSpec::WrapperScan {
            source,
            timeout_ms,
            prefetch,
        } => Box::new(WrapperScan::new(
            source.clone(),
            *timeout_ms,
            *prefetch,
            harness,
        )),
        OperatorSpec::Select { input, predicate } => Box::new(Filter::new(
            build_operator(input, rt)?,
            predicate.clone(),
            harness,
        )),
        OperatorSpec::Project { input, columns } => Box::new(Project::new(
            build_operator(input, rt)?,
            columns.clone(),
            harness,
        )),
        OperatorSpec::Join {
            left,
            right,
            left_key,
            right_key,
            kind,
            overflow: _,
        } => {
            let l = build_operator(left, rt)?;
            let r = build_operator(right, rt)?;
            let (lk, rk) = (left_key.clone(), right_key.clone());
            match kind {
                JoinKind::DoublePipelined => {
                    let descendants: Vec<SubjectRef> = left
                        .all_ids()
                        .into_iter()
                        .chain(right.all_ids())
                        .map(SubjectRef::Op)
                        .collect();
                    Box::new(
                        DoublePipelinedJoin::new(l, r, lk, rk, harness)
                            .with_descendants(descendants),
                    )
                }
                JoinKind::HybridHash => Box::new(HashJoinOp::hybrid(l, r, lk, rk, harness)),
                JoinKind::GraceHash => Box::new(HashJoinOp::grace(l, r, lk, rk, harness)),
                JoinKind::NestedLoops => Box::new(NestedLoopsJoin::new(l, r, lk, rk, harness)),
                JoinKind::SortMerge => Box::new(SortMergeJoin::new(l, r, lk, rk, harness)),
            }
        }
        OperatorSpec::DependentJoin {
            left,
            source,
            bind_col,
            probe_col,
        } => Box::new(DependentJoin::new(
            build_operator(left, rt)?,
            source.clone(),
            bind_col.clone(),
            probe_col.clone(),
            harness,
        )),
        OperatorSpec::Union { inputs } => {
            let children = inputs
                .iter()
                .map(|i| build_operator(i, rt))
                .collect::<Result<Vec<_>>>()?;
            Box::new(UnionAll::new(children, harness))
        }
        OperatorSpec::Collector {
            children,
            quota,
            child_timeout_ms,
        } => Box::new(Collector::new(
            children.clone(),
            *quota,
            *child_timeout_ms,
            harness,
        )),
        OperatorSpec::Exchange { input, partitions } => {
            // With a shard executor installed (coordinator role), the
            // exchange scatters the join's partition pipelines to worker
            // processes instead of local threads. Sharding by join-key
            // hash is correct for any equi-join kind, so the remote path
            // is not limited to the thread-partitionable ones.
            if rt.env().shard_executor.is_some() {
                if let OperatorSpec::Join { .. } = &input.spec {
                    let join_harness = OpHarness::new(rt.clone(), SubjectRef::Op(input.id));
                    return Ok(Box::new(RemoteExchange::new(
                        (**input).clone(),
                        *partitions,
                        harness,
                        join_harness,
                    )));
                }
            }
            // Partition only hash-partitionable joins with an actual
            // degree; everything else executes as a transparent
            // passthrough (the wrapper node stays registered but idle).
            match &input.spec {
                OperatorSpec::Join {
                    left,
                    right,
                    left_key,
                    right_key,
                    kind,
                    overflow: _,
                } if *partitions > 1 && crate::operators::is_partitionable(*kind) => {
                    let l = build_operator(left, rt)?;
                    let r = build_operator(right, rt)?;
                    let descendants: Vec<SubjectRef> = left
                        .all_ids()
                        .into_iter()
                        .chain(right.all_ids())
                        .map(SubjectRef::Op)
                        .collect();
                    let join_harness = OpHarness::new(rt.clone(), SubjectRef::Op(input.id));
                    Box::new(
                        Exchange::new(
                            l,
                            r,
                            left_key.clone(),
                            right_key.clone(),
                            *kind,
                            *partitions,
                            harness,
                            join_harness,
                        )
                        .with_descendants(descendants),
                    )
                }
                _ => build_operator(input, rt)?,
            }
        }
    })
}
