//! # tukwila-exec
//!
//! The Tukwila query execution engine (§3.2–§4): a top-down, batched
//! iterator-model engine whose adaptive behaviour is driven by
//! event-condition-action rules.
//!
//! Layers, bottom-up:
//!
//! * [`operator::Operator`] — the open/next_batch/close interface every
//!   physical operator implements (§3.2's top-down iterator model, moving
//!   [`tukwila_common::TupleBatch`]es instead of single tuples so hot
//!   paths amortize dispatch and channel overhead; see DESIGN.md §2).
//! * [`runtime`] — the per-plan runtime shared by all operators: statistics
//!   registry (the [`tukwila_plan::Quantity`] provider), activation /
//!   overflow-method control cells, the event bus with the rule engine, and
//!   engine-level signals (replan / reschedule / abort).
//! * [`operators`] — scans, wrapper scans, selection, projection, the join
//!   family (nested loops, sort-merge, hybrid/Grace hash, the **double
//!   pipelined join** with its overflow strategies), union, the **dynamic
//!   collector**, dependent join, and the **partitioned exchange** that
//!   runs N parallel instances of a hash join over key-partitioned inputs
//!   (DESIGN.md §8).
//! * [`fragment`] — executes one pipelined fragment to completion,
//!   materializing its result and reporting statistics; interleaved
//!   planning/execution (crate `tukwila-core`) loops over this.

pub mod build;
pub mod control;
pub mod fragment;
pub mod operator;
pub mod operators;
pub mod runtime;
pub mod shard;

#[cfg(test)]
pub(crate) mod test_support;

pub use build::build_operator;
pub use control::{CancelKind, QueryControl};
pub use fragment::{run_fragment, run_fragment_observed, FragmentOutcome, FragmentReport};
pub use operator::{drain, drain_batches, drain_tuples, Operator, OperatorBox, TupleCursor};
pub use runtime::{
    CacheCounts, EngineSignal, ExchangeSpill, ExecEnv, OpHarness, ParallelStats, PlanRuntime,
};
pub use shard::{
    build_shard_root, subtree_plan_text, subtree_table_deps, ShardExecutor, ShardFilter, ShardSpec,
    ShardStats, ShardStream,
};
