//! The per-plan execution runtime.
//!
//! Holds everything rules and adaptive operators observe and manipulate at
//! runtime:
//!
//! * [`ExecEnv`] — the engine environment (memory pool, spill store, local
//!   store, source registry), shared across plan runs;
//! * per-subject **statistics** (tuples produced, activity timestamps,
//!   state) — the engine's side of [`QuantityProvider`];
//! * **control cells** — activation flags, overflow methods, cancel
//!   handles — the state rule actions mutate;
//! * the **event bus**: events are queued and processed in order under a
//!   single lock, so "all of a rule's actions are executed before another
//!   event is processed" (§3.1.2 restriction 1) holds by construction;
//! * **engine signals** (replan / reschedule / abort) that rule actions
//!   raise and the fragment loop observes.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use tukwila_common::{Result, TukwilaError};
use tukwila_plan::{
    Action, Event, EventKind, OpState, OperatorSpec, OverflowMethod, QuantityProvider, QueryPlan,
    Rule, SubjectRef,
};
use tukwila_source::SourceRegistry;
use tukwila_storage::{
    InMemorySpillStore, LocalStore, MemoryManager, MemoryReservation, ScopedSpillStore, SpillStore,
};
use tukwila_trace::{CacheOutcome, OpMetrics, QueryTrace, TraceEvent, TraceLevel};

use crate::control::QueryControl;
use crate::shard::ShardExecutor;

/// Engine environment shared across plan runs.
#[derive(Clone)]
pub struct ExecEnv {
    /// Memory pool.
    pub memory: MemoryManager,
    /// Spill storage for overflow resolution.
    pub spill: Arc<dyn SpillStore>,
    /// Materialized fragment results and cached tables.
    pub local: LocalStore,
    /// Live data sources.
    pub sources: SourceRegistry,
    /// Target tuples per [`tukwila_common::TupleBatch`] exchanged between
    /// operators and across the wrapper boundary. Defaults to the
    /// `TUKWILA_BATCH` environment variable via
    /// [`tukwila_common::env_batch_size`].
    pub batch_size: usize,
    /// Intra-query thread budget: how many plan fragments the DAG
    /// scheduler may run concurrently for one query (1 = the paper's
    /// sequential "each fragment in turn" model). Defaults to the
    /// `TUKWILA_THREADS` environment variable via
    /// [`tukwila_common::env_parallelism`].
    pub intra_query_threads: usize,
    /// Trace level installed on query controls this environment creates
    /// (an externally owned control keeps whatever its creator set).
    pub trace_level: TraceLevel,
    /// Distributed shard executor (coordinator role): when installed, the
    /// builder lowers `Exchange` nodes over joins into a
    /// [`crate::operators::RemoteExchange`] that scatters partition
    /// pipelines to worker processes instead of local threads.
    pub shard_executor: Option<Arc<dyn ShardExecutor>>,
}

impl ExecEnv {
    /// Environment with in-memory spill storage and the default batch size.
    pub fn new(sources: SourceRegistry) -> Self {
        ExecEnv {
            memory: MemoryManager::new(),
            spill: Arc::new(InMemorySpillStore::new()),
            local: LocalStore::new(),
            sources,
            batch_size: tukwila_common::env_batch_size(),
            intra_query_threads: tukwila_common::env_parallelism(),
            trace_level: TraceLevel::default(),
            shard_executor: None,
        }
    }

    /// Replace the spill store (e.g. with a file-backed one).
    pub fn with_spill(mut self, spill: Arc<dyn SpillStore>) -> Self {
        self.spill = spill;
        self
    }

    /// Override the operator batch size (1 = tuple-at-a-time execution).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Override the intra-query thread budget (1 = sequential fragments).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.intra_query_threads = threads.max(1);
        self
    }

    /// Override the trace level for controls created in this environment
    /// (`Off` for benchmarks measuring raw engine throughput).
    pub fn with_trace_level(mut self, level: TraceLevel) -> Self {
        self.trace_level = level;
        self
    }

    /// Install a distributed shard executor (see
    /// [`crate::shard::ShardExecutor`]): exchanges over joins then run as
    /// remote shard scatters instead of local thread partitions.
    pub fn with_shard_executor(mut self, executor: Arc<dyn ShardExecutor>) -> Self {
        self.shard_executor = Some(executor);
        self
    }

    /// Derive an environment for one query run in a concurrent service:
    /// sources and the backing spill store are shared with this base
    /// environment, but the local store (materialization namespace) and
    /// the memory pool are fresh — concurrent queries cannot collide on
    /// materialization names or each other's memory accounting — and the
    /// spill store is wrapped in a [`ScopedSpillStore`] so this query's
    /// spill I/O counters include only its own traffic.
    pub fn for_query(&self) -> ExecEnv {
        self.for_query_with_memory(MemoryManager::new())
    }

    /// [`ExecEnv::for_query`] with a caller-built memory pool — the memory
    /// governor passes a pool parented to the query's grant on the fleet
    /// pool (see `tukwila_storage::MemoryManager::with_parent`).
    pub fn for_query_with_memory(&self, memory: MemoryManager) -> ExecEnv {
        ExecEnv {
            memory,
            spill: Arc::new(ScopedSpillStore::new(self.spill.clone())),
            local: LocalStore::new(),
            sources: self.sources.clone(),
            batch_size: self.batch_size,
            intra_query_threads: self.intra_query_threads,
            trace_level: self.trace_level,
            shard_executor: self.shard_executor.clone(),
        }
    }
}

fn encode_state(s: OpState) -> u8 {
    match s {
        OpState::NotStarted => 0,
        OpState::Open => 1,
        OpState::Closed => 2,
        OpState::Failed => 3,
        OpState::Deactivated => 4,
    }
}

fn decode_state(v: u8) -> OpState {
    match v {
        0 => OpState::NotStarted,
        1 => OpState::Open,
        2 => OpState::Closed,
        3 => OpState::Failed,
        _ => OpState::Deactivated,
    }
}

/// Per-subject runtime record.
struct SubjectRecord {
    produced: AtomicU64,
    state: AtomicU8,
    last_activity_ms: AtomicU64,
    est_card: Option<f64>,
    reservation: Option<MemoryReservation>,
    active: AtomicBool,
    /// Activation state at plan load (restored on fragment retry).
    default_active: bool,
    overflow: Mutex<OverflowMethod>,
    cancel_handles: Mutex<Vec<Arc<AtomicBool>>>,
    /// Threshold milestones (sorted) harvested from the plan's rules.
    milestones: Vec<u64>,
}

impl SubjectRecord {
    fn new(
        est_card: Option<f64>,
        reservation: Option<MemoryReservation>,
        initially_active: bool,
        overflow: OverflowMethod,
        milestones: Vec<u64>,
    ) -> Self {
        SubjectRecord {
            produced: AtomicU64::new(0),
            state: AtomicU8::new(encode_state(OpState::NotStarted)),
            last_activity_ms: AtomicU64::new(0),
            est_card,
            reservation,
            active: AtomicBool::new(initially_active),
            default_active: initially_active,
            overflow: Mutex::new(overflow),
            cancel_handles: Mutex::new(Vec::new()),
            milestones,
        }
    }
}

struct RuleSlot {
    rule: Rule,
    active: bool,
}

/// Engine-level outcome a rule action requested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSignal {
    /// Terminate the current plan and re-invoke the optimizer.
    Replan,
    /// Reschedule remaining fragments (query scrambling).
    Reschedule,
    /// Abort with an error to the user.
    Abort(String),
}

#[derive(Default)]
struct Signals {
    replan: AtomicBool,
    /// Pending reschedule requests, keyed by the fragment that owns the
    /// rule which raised them (`None` = not attributable to a fragment —
    /// delivered to whichever fragment asks first). Per-fragment scoping
    /// matters once fragments run concurrently: a timeout rule of a
    /// stalled fragment must not abort a healthy sibling mid-run.
    reschedule: Mutex<std::collections::BTreeSet<Option<tukwila_plan::FragmentId>>>,
    abort: Mutex<Option<String>>,
}

/// Per-partition spill-tuple totals of one exchange instance, labeled by
/// the plan operator id of the partitioned join — so two 4-way joins stay
/// distinguishable from one 8-way in the query stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExchangeSpill {
    /// Plan operator id of the partitioned join.
    pub op: u32,
    /// Spill tuples written per partition index.
    pub tuples: Vec<u64>,
}

impl ExchangeSpill {
    /// Total spill tuples across this exchange's partitions.
    pub fn total(&self) -> u64 {
        self.tuples.iter().sum()
    }
}

/// Intra-query parallelism counters recorded by exchange operators over
/// one plan run.
#[derive(Debug, Clone, Default)]
pub struct ParallelStats {
    /// Largest partition degree any exchange ran with (0 = no exchange).
    pub max_partitions: usize,
    /// Per-exchange spill totals, labeled by join operator id (a fragment
    /// retry folds into the same entry).
    pub partition_spills: Vec<ExchangeSpill>,
}

/// Per-query source-cache lookup counts (satellite of the source-result
/// cache's global [`tukwila_source`] counters: these attribute outcomes to
/// *this* query's flight).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Lookups served from a completed cache entry.
    pub hits: u64,
    /// Lookups this query led (cache misses it then populated).
    pub misses: u64,
    /// Lookups coalesced onto another query's in-flight fetch.
    pub coalesced: u64,
    /// Lookups the cache declined (uncacheable, over budget, lease held).
    pub bypass: u64,
}

#[derive(Default)]
struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    bypass: AtomicU64,
}

/// The per-plan runtime: statistics, controls, events, rules, signals.
pub struct PlanRuntime {
    env: ExecEnv,
    epoch: Instant,
    control: Arc<QueryControl>,
    /// The query's trace (shared with the control; cached here because
    /// emit checks sit on operator paths).
    trace: Arc<QueryTrace>,
    /// Per-query source-cache outcome counters for this plan run.
    cache: CacheCounters,
    /// Fx-keyed: `record()` sits on the per-batch accounting path of every
    /// operator (`produced`, `is_active`), so SipHash lookups add up.
    subjects: tukwila_common::FxHashMap<SubjectRef, SubjectRecord>,
    /// Which fragment each subject belongs to — the attribution map for
    /// fragment-scoped reschedule signals.
    frag_of: tukwila_common::FxHashMap<SubjectRef, tukwila_plan::FragmentId>,
    /// Exchange-operator parallelism counters for this plan run.
    parallel: Mutex<ParallelStats>,
    rules: Mutex<Vec<RuleSlot>>,
    event_queue: Mutex<VecDeque<Event>>,
    /// Serializes rule processing; also records processed events for tests
    /// and the statistics report.
    event_log: Mutex<Vec<Event>>,
    processing: Mutex<()>,
    signals: Signals,
}

impl PlanRuntime {
    /// Build the runtime for a plan: registers every fragment and operator
    /// (including collector children), creates memory reservations for
    /// budgeted operators, loads all rules, and harvests threshold
    /// milestones.
    pub fn for_plan(plan: &QueryPlan, env: ExecEnv) -> Arc<PlanRuntime> {
        let control = QueryControl::unbounded_traced(env.trace_level);
        Self::for_plan_controlled(plan, env, control)
    }

    /// [`PlanRuntime::for_plan`] under an externally owned [`QueryControl`]
    /// — the service threads one control through every plan a query runs so
    /// cancellation and deadlines reach all of them.
    pub fn for_plan_controlled(
        plan: &QueryPlan,
        env: ExecEnv,
        control: Arc<QueryControl>,
    ) -> Arc<PlanRuntime> {
        let mut milestones: HashMap<SubjectRef, Vec<u64>> = HashMap::new();
        for rule in plan.all_rules() {
            if rule.event.kind == EventKind::Threshold {
                if let Some(v) = rule.event.value {
                    milestones.entry(rule.event.subject).or_default().push(v);
                }
            }
        }
        for ms in milestones.values_mut() {
            ms.sort_unstable();
            ms.dedup();
        }

        let mut subjects = tukwila_common::FxHashMap::default();
        for frag in &plan.fragments {
            subjects.insert(
                SubjectRef::Fragment(frag.id),
                SubjectRecord::new(
                    frag.root.est_cardinality,
                    None,
                    frag.initially_active,
                    OverflowMethod::Fail,
                    milestones
                        .remove(&SubjectRef::Fragment(frag.id))
                        .unwrap_or_default(),
                ),
            );
            frag.root.walk(&mut |node| {
                let overflow = match &node.spec {
                    OperatorSpec::Join { overflow, .. } => *overflow,
                    _ => OverflowMethod::Fail,
                };
                let reservation = node
                    .memory_budget
                    .map(|b| env.memory.register(format!("{}", node.id), b));
                subjects.insert(
                    SubjectRef::Op(node.id),
                    SubjectRecord::new(
                        node.est_cardinality,
                        reservation,
                        true,
                        overflow,
                        milestones
                            .remove(&SubjectRef::Op(node.id))
                            .unwrap_or_default(),
                    ),
                );
                if let OperatorSpec::Collector { children, .. } = &node.spec {
                    for c in children {
                        subjects.insert(
                            SubjectRef::Op(c.id),
                            SubjectRecord::new(
                                None,
                                None,
                                c.initially_active,
                                OverflowMethod::Fail,
                                milestones.remove(&SubjectRef::Op(c.id)).unwrap_or_default(),
                            ),
                        );
                    }
                }
            });
        }

        let mut frag_of = tukwila_common::FxHashMap::default();
        for frag in &plan.fragments {
            frag_of.insert(SubjectRef::Fragment(frag.id), frag.id);
            for id in frag.op_ids() {
                frag_of.insert(SubjectRef::Op(id), frag.id);
            }
        }

        let rules = plan
            .all_rules()
            .into_iter()
            .map(|r| RuleSlot {
                rule: r.clone(),
                active: true,
            })
            .collect();

        Arc::new(PlanRuntime {
            env,
            epoch: Instant::now(),
            trace: control.trace().clone(),
            cache: CacheCounters::default(),
            control,
            subjects,
            frag_of,
            parallel: Mutex::new(ParallelStats::default()),
            rules: Mutex::new(rules),
            event_queue: Mutex::new(VecDeque::new()),
            event_log: Mutex::new(Vec::new()),
            processing: Mutex::new(()),
            signals: Signals::default(),
        })
    }

    /// The engine environment.
    pub fn env(&self) -> &ExecEnv {
        &self.env
    }

    /// The query-level control this plan runs under.
    pub fn control(&self) -> &Arc<QueryControl> {
        &self.control
    }

    /// The query's execution trace.
    pub fn trace(&self) -> &Arc<QueryTrace> {
        &self.trace
    }

    /// Record a per-query source-cache lookup outcome (and trace it).
    pub fn note_cache_outcome(&self, source: &str, outcome: CacheOutcome) {
        let counter = match outcome {
            CacheOutcome::Hit => &self.cache.hits,
            CacheOutcome::Miss => &self.cache.misses,
            CacheOutcome::Coalesced => &self.cache.coalesced,
            CacheOutcome::Bypass => &self.cache.bypass,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if self.trace.events_enabled() {
            self.trace.emit(TraceEvent::CacheLookup {
                source: source.to_string(),
                outcome,
            });
        }
    }

    /// Source-cache outcome counts recorded so far in this plan run.
    pub fn cache_counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.cache.hits.load(Ordering::Relaxed),
            misses: self.cache.misses.load(Ordering::Relaxed),
            coalesced: self.cache.coalesced.load(Ordering::Relaxed),
            bypass: self.cache.bypass.load(Ordering::Relaxed),
        }
    }

    fn record(&self, s: SubjectRef) -> Result<&SubjectRecord> {
        self.subjects
            .get(&s)
            .ok_or_else(|| TukwilaError::Internal(format!("unregistered subject {s}")))
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    // ---- statistics ----

    /// Record `n` more tuples produced by `subject`; emits threshold events
    /// for crossed milestones.
    pub fn add_produced(&self, subject: SubjectRef, n: u64) {
        let Ok(rec) = self.record(subject) else {
            return;
        };
        let prev = rec.produced.fetch_add(n, Ordering::Relaxed);
        let now = prev + n;
        rec.last_activity_ms.store(self.now_ms(), Ordering::Relaxed);
        // milestone crossings
        for &m in &rec.milestones {
            if prev < m && m <= now {
                self.emit(Event::with_value(EventKind::Threshold, subject, m));
            }
        }
    }

    /// Tuples produced so far.
    pub fn produced(&self, subject: SubjectRef) -> u64 {
        self.record(subject)
            .map(|r| r.produced.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Set lifecycle state and emit the corresponding event.
    pub fn set_state(&self, subject: SubjectRef, state: OpState) {
        if let Ok(rec) = self.record(subject) {
            rec.state.store(encode_state(state), Ordering::Relaxed);
            rec.last_activity_ms.store(self.now_ms(), Ordering::Relaxed);
        }
        match state {
            OpState::Open => self.emit(Event::new(EventKind::Opened, subject)),
            OpState::Closed => self.emit(Event::new(EventKind::Closed, subject)),
            OpState::Failed => self.emit(Event::new(EventKind::Error, subject)),
            _ => {}
        }
    }

    /// Reset a subject's counters (fragment re-run after rescheduling).
    pub fn reset_subject(&self, subject: SubjectRef) {
        if let Ok(rec) = self.record(subject) {
            rec.produced.store(0, Ordering::Relaxed);
            rec.state
                .store(encode_state(OpState::NotStarted), Ordering::Relaxed);
        }
    }

    /// Prepare a fragment for a retry (rescheduling): reset counters and
    /// lifecycle state of the fragment and every operator in it, restore
    /// plan-default activation (undoing engine-internal cancellations from
    /// the aborted run), and clear stale cancel handles. Rules that already
    /// fired stay fired — "firing a rule once makes it become inactive"
    /// applies across retries.
    pub fn reset_fragment(&self, fragment: &tukwila_plan::Fragment) {
        let mut subjects = vec![SubjectRef::Fragment(fragment.id)];
        subjects.extend(fragment.op_ids().into_iter().map(SubjectRef::Op));
        for s in subjects {
            if let Ok(rec) = self.record(s) {
                rec.produced.store(0, Ordering::Relaxed);
                rec.state
                    .store(encode_state(OpState::NotStarted), Ordering::Relaxed);
                let default = if s == SubjectRef::Fragment(fragment.id) {
                    true // it is being retried, so it must be runnable
                } else {
                    rec.default_active
                };
                rec.active.store(default, Ordering::Relaxed);
                rec.cancel_handles.lock().clear();
            }
        }
    }

    // ---- controls ----

    /// Whether a subject is active (deactivated operators stop; inactive
    /// fragments are not scheduled).
    pub fn is_active(&self, subject: SubjectRef) -> bool {
        self.record(subject)
            .map(|r| r.active.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    /// Activate a subject.
    pub fn activate(&self, subject: SubjectRef) {
        if let Ok(rec) = self.record(subject) {
            rec.active.store(true, Ordering::Relaxed);
        }
    }

    /// Deactivate a subject: stops its execution (cancels registered
    /// streams). Its rules become inert because owner-activity is checked
    /// at trigger time.
    pub fn deactivate(&self, subject: SubjectRef) {
        if let Ok(rec) = self.record(subject) {
            rec.active.store(false, Ordering::Relaxed);
            rec.state
                .store(encode_state(OpState::Deactivated), Ordering::Relaxed);
            for h in rec.cancel_handles.lock().iter() {
                h.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Register a cancellation handle to be flipped if `subject` is
    /// deactivated — or if the whole query is cancelled or times out (the
    /// handle is also registered with the query control). A handle
    /// registered *after* the subject was deactivated is flipped
    /// immediately: streams created on worker threads (collector
    /// children) may register after a rule has already fired, and the
    /// cancellation must not be lost in that window.
    pub fn register_cancel(&self, subject: SubjectRef, handle: Arc<AtomicBool>) {
        self.control.register_handle(handle.clone());
        if let Ok(rec) = self.record(subject) {
            rec.cancel_handles.lock().push(handle.clone());
            if !rec.active.load(Ordering::Relaxed) {
                handle.store(true, Ordering::Relaxed);
            }
        }
    }

    /// Current overflow method for an operator.
    pub fn overflow_method(&self, subject: SubjectRef) -> OverflowMethod {
        self.record(subject)
            .map(|r| *r.overflow.lock())
            .unwrap_or(OverflowMethod::Fail)
    }

    /// Install an overflow method (rule action).
    pub fn set_overflow_method(&self, subject: SubjectRef, method: OverflowMethod) {
        if let Ok(rec) = self.record(subject) {
            *rec.overflow.lock() = method;
        }
    }

    /// The memory reservation of an operator, if it has a budget.
    pub fn reservation(&self, subject: SubjectRef) -> Option<MemoryReservation> {
        self.record(subject).ok()?.reservation.clone()
    }

    // ---- events & rules ----

    /// Emit an event and synchronously process the queue (the event handler
    /// of §3.3). Any thread may call this; processing is serialized.
    pub fn emit(&self, event: Event) {
        self.event_queue.lock().push_back(event);
        self.process_events();
    }

    fn process_events(&self) {
        // Only one thread processes at a time; others enqueue and return —
        // the processor drains everything, preserving the global order.
        let Some(_guard) = self.processing.try_lock() else {
            return;
        };
        loop {
            let Some(event) = self.event_queue.lock().pop_front() else {
                return;
            };
            self.event_log.lock().push(event.clone());
            // Find matching active rules with active owners; fire them.
            let mut to_fire: Vec<Rule> = Vec::new();
            {
                let mut rules = self.rules.lock();
                for slot in rules.iter_mut() {
                    if slot.active
                        && slot.rule.event.matches(&event)
                        && self.is_active(slot.rule.owner)
                        && slot.rule.condition.eval(self)
                    {
                        slot.active = false; // firing once deactivates
                        to_fire.push(slot.rule.clone());
                    }
                }
            }
            for rule in to_fire {
                if self.trace.events_enabled() {
                    self.trace.emit(TraceEvent::RuleFired {
                        rule: rule.name.clone(),
                        trigger: describe_event(&event),
                    });
                }
                for action in &rule.actions {
                    self.apply_action_for(action, Some(rule.owner));
                }
            }
        }
    }

    #[cfg(test)]
    fn apply_action(&self, action: &Action) {
        self.apply_action_for(action, None);
    }

    fn apply_action_for(&self, action: &Action, owner: Option<SubjectRef>) {
        match action {
            Action::SetOverflowMethod { op, method } => {
                self.set_overflow_method(SubjectRef::Op(*op), *method);
            }
            Action::AlterMemory { op, bytes } => {
                if let Some(r) = self.reservation(SubjectRef::Op(*op)) {
                    r.set_budget(*bytes);
                }
            }
            Action::Activate(s) => self.activate(*s),
            Action::Deactivate(s) => self.deactivate(*s),
            Action::Reschedule => {
                // Attribute the request to the owning rule's fragment so a
                // concurrent sibling does not pick it up.
                let frag = owner.and_then(|s| self.frag_of.get(&s).copied());
                self.signals.reschedule.lock().insert(frag);
            }
            Action::Replan => {
                if self.trace.events_enabled() {
                    let reason = match owner {
                        Some(s) => format!("rule action ({s})"),
                        None => "rule action".to_string(),
                    };
                    self.trace.emit(TraceEvent::ReplanRequested { reason });
                }
                self.signals.replan.store(true, Ordering::Relaxed);
            }
            Action::ReturnError(m) => {
                *self.signals.abort.lock() = Some(m.clone());
            }
        }
    }

    /// Take the highest-priority pending engine signal, clearing it.
    /// Priority: abort > replan > reschedule. Reschedule requests for
    /// *any* fragment qualify — the single-fragment-at-a-time view.
    pub fn take_signal(&self) -> Option<EngineSignal> {
        if let Some(m) = self.signals.abort.lock().take() {
            return Some(EngineSignal::Abort(m));
        }
        if self.signals.replan.swap(false, Ordering::Relaxed) {
            return Some(EngineSignal::Replan);
        }
        let mut resched = self.signals.reschedule.lock();
        if let Some(first) = resched.iter().next().copied() {
            resched.remove(&first);
            return Some(EngineSignal::Reschedule);
        }
        None
    }

    /// [`PlanRuntime::take_signal`] scoped to one running fragment: abort
    /// and replan are plan-global, but a reschedule request is delivered
    /// only to the fragment whose rule raised it (un-attributed requests go
    /// to whichever fragment asks first). With concurrent fragments this
    /// is what keeps "deprioritize the stalled fragment" from abandoning a
    /// healthy sibling.
    pub fn take_signal_for(&self, frag: tukwila_plan::FragmentId) -> Option<EngineSignal> {
        if let Some(m) = self.signals.abort.lock().take() {
            return Some(EngineSignal::Abort(m));
        }
        if self.signals.replan.swap(false, Ordering::Relaxed) {
            return Some(EngineSignal::Replan);
        }
        let mut resched = self.signals.reschedule.lock();
        if resched.remove(&Some(frag)) || resched.remove(&None) {
            return Some(EngineSignal::Reschedule);
        }
        None
    }

    /// Record one exchange run's parallelism counters: the partition
    /// degree and per-partition spill-tuple totals, labeled by the
    /// partitioned join's operator id. A retry of the same exchange folds
    /// into its existing entry element-wise.
    pub fn note_exchange(&self, op: u32, partition_spill_tuples: &[u64]) {
        let mut p = self.parallel.lock();
        p.max_partitions = p.max_partitions.max(partition_spill_tuples.len());
        let entry = match p.partition_spills.iter_mut().find(|e| e.op == op) {
            Some(e) => e,
            None => {
                p.partition_spills.push(ExchangeSpill {
                    op,
                    tuples: Vec::new(),
                });
                p.partition_spills.last_mut().expect("just pushed")
            }
        };
        if entry.tuples.len() < partition_spill_tuples.len() {
            entry.tuples.resize(partition_spill_tuples.len(), 0);
        }
        for (acc, n) in entry.tuples.iter_mut().zip(partition_spill_tuples) {
            *acc += n;
        }
    }

    /// Parallelism counters recorded so far in this plan run.
    pub fn parallel_stats(&self) -> ParallelStats {
        self.parallel.lock().clone()
    }

    /// Re-raise the replan signal (used when a mid-fragment replan request
    /// must be deferred to the materialization point).
    pub fn emit_replan_signal(&self) {
        self.signals.replan.store(true, Ordering::Relaxed);
    }

    /// Peek whether any signal is pending (without clearing).
    pub fn signal_pending(&self) -> bool {
        self.signals.abort.lock().is_some()
            || self.signals.replan.load(Ordering::Relaxed)
            || !self.signals.reschedule.lock().is_empty()
    }

    /// Events processed so far (diagnostics, tests).
    pub fn event_log(&self) -> Vec<Event> {
        self.event_log.lock().clone()
    }

    /// Number of rules still active.
    pub fn active_rule_count(&self) -> usize {
        self.rules.lock().iter().filter(|s| s.active).count()
    }
}

/// Render an engine event for the `trigger` field of a rule-fired trace
/// record, e.g. `timeout(op0, 50)`.
fn describe_event(e: &Event) -> String {
    let kind = match e.kind {
        EventKind::Opened => "opened",
        EventKind::Closed => "closed",
        EventKind::Error => "error",
        EventKind::Timeout => "timeout",
        EventKind::OutOfMemory => "out_of_memory",
        EventKind::Threshold => "threshold",
    };
    match e.value {
        Some(v) => format!("{kind}({}, {v})", e.subject),
        None => format!("{kind}({})", e.subject),
    }
}

impl QuantityProvider for PlanRuntime {
    fn card(&self, subject: SubjectRef) -> Option<f64> {
        self.record(subject)
            .ok()
            .map(|r| r.produced.load(Ordering::Relaxed) as f64)
    }

    fn est_card(&self, subject: SubjectRef) -> Option<f64> {
        self.record(subject).ok().and_then(|r| r.est_card)
    }

    fn time_waiting_ms(&self, subject: SubjectRef) -> Option<f64> {
        let rec = self.record(subject).ok()?;
        let last = rec.last_activity_ms.load(Ordering::Relaxed);
        Some((self.now_ms().saturating_sub(last)) as f64)
    }

    fn memory_used(&self, subject: SubjectRef) -> Option<f64> {
        Some(
            self.record(subject)
                .ok()?
                .reservation
                .as_ref()?
                .usage()
                .used as f64,
        )
    }

    fn memory_budget(&self, subject: SubjectRef) -> Option<f64> {
        Some(self.record(subject).ok()?.reservation.as_ref()?.budget() as f64)
    }

    fn state(&self, subject: SubjectRef) -> OpState {
        self.record(subject)
            .map(|r| decode_state(r.state.load(Ordering::Relaxed)))
            .unwrap_or(OpState::NotStarted)
    }
}

/// Per-partition overrides for an operator instance running inside a
/// partitioned exchange: a split memory reservation parented to the plan
/// operator's own reservation, and a scoped spill store for per-partition
/// I/O attribution.
struct PartitionCtx {
    index: usize,
    reservation: Option<MemoryReservation>,
    spill: Arc<dyn SpillStore>,
}

/// Handle tying one operator instance to the runtime: the operator's view
/// of statistics, events, and controls.
#[derive(Clone)]
pub struct OpHarness {
    rt: Arc<PlanRuntime>,
    subject: SubjectRef,
    /// Set for partition instances inside an exchange. Such instances
    /// share the plan operator's subject for statistics and rules but must
    /// not flip its lifecycle state (the exchange operator owns that), and
    /// they see a partition-split reservation and spill store.
    partition: Option<Arc<PartitionCtx>>,
}

impl OpHarness {
    /// Build a harness for `subject`.
    pub fn new(rt: Arc<PlanRuntime>, subject: SubjectRef) -> Self {
        OpHarness {
            rt,
            subject,
            partition: None,
        }
    }

    /// Derive the harness one partition instance of an exchange runs
    /// under: same subject (shared statistics, rules, overflow method) but
    /// lifecycle-state transitions suppressed and reservation/spill
    /// overridden with the partition's split.
    pub fn for_partition(
        &self,
        index: usize,
        reservation: Option<MemoryReservation>,
        spill: Arc<dyn SpillStore>,
    ) -> OpHarness {
        OpHarness {
            rt: self.rt.clone(),
            subject: self.subject,
            partition: Some(Arc::new(PartitionCtx {
                index,
                reservation,
                spill,
            })),
        }
    }

    /// Partition index when this is a partition-instance harness.
    pub fn partition_index(&self) -> Option<usize> {
        self.partition.as_ref().map(|p| p.index)
    }

    /// The spill store this operator instance should overflow into: the
    /// partition's scoped store inside an exchange, the engine's store
    /// otherwise.
    pub fn spill(&self) -> Arc<dyn SpillStore> {
        match &self.partition {
            Some(p) => p.spill.clone(),
            None => self.rt.env().spill.clone(),
        }
    }

    /// The runtime.
    pub fn runtime(&self) -> &Arc<PlanRuntime> {
        &self.rt
    }

    /// This operator's subject reference.
    pub fn subject(&self) -> SubjectRef {
        self.subject
    }

    /// The query's execution trace.
    pub fn trace(&self) -> &Arc<QueryTrace> {
        self.rt.trace()
    }

    /// Plan operator id, when this harness is for an operator subject.
    pub fn op_id(&self) -> Option<u32> {
        match self.subject {
            SubjectRef::Op(id) => Some(id.0),
            SubjectRef::Fragment(_) => None,
        }
    }

    /// This operator's metrics handle at `TraceLevel::Metrics` (`None`
    /// below it — operators cache the result at open so the per-batch
    /// path stays a plain `Option` check). Partition instances of an
    /// exchange resolve to the same handle, aggregating per plan operator.
    pub fn metrics(&self, name: &str) -> Option<Arc<OpMetrics>> {
        if !self.rt.trace().metrics_enabled() {
            return None;
        }
        self.op_id()
            .map(|id| self.rt.trace().metrics().register(id, name))
    }

    /// Mark opened (emits `opened`). A partition instance must not flip
    /// the shared subject's lifecycle — the exchange emits it once.
    pub fn opened(&self) {
        if self.partition.is_none() {
            self.rt.set_state(self.subject, OpState::Open);
        }
    }

    /// Mark closed (emits `closed`).
    pub fn closed(&self) {
        if self.partition.is_none() {
            self.rt.set_state(self.subject, OpState::Closed);
        }
    }

    /// Mark failed (emits `error`).
    pub fn failed(&self) {
        self.rt.set_state(self.subject, OpState::Failed);
    }

    /// Record produced tuples (emits threshold events at milestones).
    /// Batched operators call this once per emitted batch.
    pub fn produced(&self, n: u64) {
        self.rt.add_produced(self.subject, n);
    }

    /// The engine's configured batch capacity — how many tuples this
    /// operator should aim to put in each output batch.
    pub fn batch_size(&self) -> usize {
        self.rt.env().batch_size
    }

    /// Emit a timeout event (`value` = configured timeout in ms).
    pub fn timeout(&self, timeout_ms: u64) {
        self.rt.emit(Event::with_value(
            EventKind::Timeout,
            self.subject,
            timeout_ms,
        ));
    }

    /// Emit an out-of-memory event.
    pub fn out_of_memory(&self) {
        self.rt
            .emit(Event::new(EventKind::OutOfMemory, self.subject));
    }

    /// Whether this operator is still active.
    pub fn is_active(&self) -> bool {
        self.rt.is_active(self.subject)
    }

    /// Current overflow method for this operator.
    pub fn overflow_method(&self) -> OverflowMethod {
        self.rt.overflow_method(self.subject)
    }

    /// This operator's memory reservation, if budgeted — for a partition
    /// instance, its split of the plan operator's reservation.
    pub fn reservation(&self) -> Option<MemoryReservation> {
        match &self.partition {
            Some(p) => p.reservation.clone(),
            None => self.rt.reservation(self.subject),
        }
    }

    /// Register a cancel handle flipped on deactivation.
    pub fn register_cancel(&self, handle: Arc<AtomicBool>) {
        self.rt.register_cancel(self.subject, handle);
    }

    /// Whether an engine-level signal is pending (operators should yield).
    pub fn signal_pending(&self) -> bool {
        self.rt.signal_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_plan::{Condition, EventPattern, JoinKind, PlanBuilder, Rule};

    fn simple_plan() -> QueryPlan {
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("A");
        let r = b.wrapper_scan("B");
        let j = b
            .join(JoinKind::DoublePipelined, l, r, "k", "k")
            .with_memory(1000)
            .with_est_cardinality(50.0);
        let f = b.fragment(j, "out");
        b.build(f)
    }

    fn runtime(plan: &QueryPlan) -> Arc<PlanRuntime> {
        PlanRuntime::for_plan(plan, ExecEnv::new(SourceRegistry::new()))
    }

    #[test]
    fn subjects_registered_with_annotations() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let join = SubjectRef::Op(tukwila_plan::OpId(2));
        assert_eq!(rt.est_card(join), Some(50.0));
        assert_eq!(rt.memory_budget(join), Some(1000.0));
        assert_eq!(rt.state(join), OpState::NotStarted);
        assert!(rt.is_active(join));
    }

    #[test]
    fn produced_updates_card() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let s = SubjectRef::Op(tukwila_plan::OpId(0));
        rt.add_produced(s, 7);
        rt.add_produced(s, 3);
        assert_eq!(rt.card(s), Some(10.0));
    }

    #[test]
    fn threshold_rule_fires_once() {
        let mut plan = simple_plan();
        let scan_a = SubjectRef::Op(tukwila_plan::OpId(0));
        let scan_b = SubjectRef::Op(tukwila_plan::OpId(1));
        plan.global_rules.push(Rule::new(
            "kill-b-when-a-10",
            SubjectRef::Fragment(tukwila_plan::FragmentId(0)),
            EventPattern::with_value(EventKind::Threshold, scan_a, 10),
            Condition::True,
            vec![Action::Deactivate(scan_b)],
        ));
        let rt = runtime(&plan);
        assert!(rt.is_active(scan_b));
        rt.add_produced(scan_a, 5);
        assert!(rt.is_active(scan_b));
        rt.add_produced(scan_a, 6); // crosses 10
        assert!(!rt.is_active(scan_b));
        assert_eq!(rt.active_rule_count(), 0);
        // reactivating and crossing again does not re-fire (rule spent)
        rt.activate(scan_b);
        rt.add_produced(scan_a, 100);
        assert!(rt.is_active(scan_b));
    }

    #[test]
    fn rules_with_inactive_owner_do_not_fire() {
        let mut plan = simple_plan();
        let frag = SubjectRef::Fragment(tukwila_plan::FragmentId(0));
        let scan_b = SubjectRef::Op(tukwila_plan::OpId(1));
        plan.global_rules.push(Rule::new(
            "owner-test",
            scan_b, // owned by scan B
            EventPattern::new(EventKind::Closed, frag),
            Condition::True,
            vec![Action::Replan],
        ));
        let rt = runtime(&plan);
        rt.deactivate(scan_b);
        rt.set_state(frag, OpState::Closed);
        assert_eq!(rt.take_signal(), None);
    }

    #[test]
    fn replan_signal_priority() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        rt.apply_action(&Action::Reschedule);
        rt.apply_action(&Action::Replan);
        assert_eq!(rt.take_signal(), Some(EngineSignal::Replan));
        assert_eq!(rt.take_signal(), Some(EngineSignal::Reschedule));
        assert_eq!(rt.take_signal(), None);
    }

    #[test]
    fn reschedule_signal_is_fragment_scoped() {
        use tukwila_plan::{FragmentId, OpId};
        // Two independent fragments; a timeout rule owned by fragment 0.
        let mut b = PlanBuilder::new();
        let a = b.wrapper_scan("A");
        let f0 = b.fragment(a, "m0");
        let c = b.wrapper_scan("B");
        let f1 = b.fragment(c, "m1");
        let mut plan = b.build(f1);
        plan.global_rules
            .push(Rule::reschedule_on_timeout(f0, OpId(0)));
        let rt = runtime(&plan);
        rt.emit(Event::with_value(
            EventKind::Timeout,
            SubjectRef::Op(OpId(0)),
            5,
        ));
        assert!(rt.signal_pending());
        // A concurrent sibling must not consume fragment 0's reschedule.
        assert_eq!(rt.take_signal_for(FragmentId(1)), None);
        assert_eq!(
            rt.take_signal_for(FragmentId(0)),
            Some(EngineSignal::Reschedule)
        );
        assert!(!rt.signal_pending());
    }

    #[test]
    fn abort_signal_carries_message() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        rt.apply_action(&Action::ReturnError("boom".into()));
        assert!(rt.signal_pending());
        assert_eq!(rt.take_signal(), Some(EngineSignal::Abort("boom".into())));
    }

    #[test]
    fn deactivate_flips_cancel_handles() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let s = SubjectRef::Op(tukwila_plan::OpId(0));
        let h = Arc::new(AtomicBool::new(false));
        rt.register_cancel(s, h.clone());
        rt.deactivate(s);
        assert!(h.load(Ordering::Relaxed));
        assert_eq!(rt.state(s), OpState::Deactivated);
    }

    #[test]
    fn alter_memory_action_applies() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let join = tukwila_plan::OpId(2);
        rt.apply_action(&Action::AlterMemory {
            op: join,
            bytes: 9999,
        });
        assert_eq!(rt.memory_budget(SubjectRef::Op(join)), Some(9999.0));
    }

    #[test]
    fn overflow_method_cell() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let join = SubjectRef::Op(tukwila_plan::OpId(2));
        assert_eq!(
            rt.overflow_method(join),
            OverflowMethod::IncrementalLeftFlush
        );
        rt.set_overflow_method(join, OverflowMethod::IncrementalSymmetricFlush);
        assert_eq!(
            rt.overflow_method(join),
            OverflowMethod::IncrementalSymmetricFlush
        );
    }

    #[test]
    fn event_log_records_order() {
        let plan = simple_plan();
        let rt = runtime(&plan);
        let s = SubjectRef::Op(tukwila_plan::OpId(0));
        rt.set_state(s, OpState::Open);
        rt.set_state(s, OpState::Closed);
        let log = rt.event_log();
        assert_eq!(log[0].kind, EventKind::Opened);
        assert_eq!(log[1].kind, EventKind::Closed);
    }
}
