//! The iterator-model operator interface.
//!
//! Control flows top-down from the root (§3.2): `open` prepares the
//! operator (resolving schemas, spawning helper threads for the adaptive
//! operators), `next` pulls one tuple, `close` releases resources. All
//! operators are `Send` so the double pipelined join and the collector can
//! move their children into worker threads.

use tukwila_common::{Result, Schema, Tuple};

/// A physical operator in the iterator model.
pub trait Operator: Send {
    /// Prepare for execution. Must be called exactly once before `next`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next output tuple, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Tuple>>;

    /// Release resources (idempotent).
    fn close(&mut self) -> Result<()>;

    /// Output schema. Only valid after `open` succeeded.
    fn schema(&self) -> &Schema;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Boxed operator (the tree edge type).
pub type OperatorBox = Box<dyn Operator>;

/// Drain an operator to completion (open → next* → close), collecting
/// output. Test/bench helper.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Tuple>> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(t) = op.next()? {
        out.push(t);
    }
    op.close()?;
    Ok(out)
}
