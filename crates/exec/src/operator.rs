//! The batched iterator-model operator interface.
//!
//! Control flows top-down from the root (§3.2): `open` prepares the
//! operator (resolving schemas, spawning helper threads for the adaptive
//! operators), `next_batch` pulls one **block** of tuples, `close` releases
//! resources. All operators are `Send` so the double pipelined join and the
//! collector can move their children into worker threads.
//!
//! The interface is batch-first: operators exchange [`TupleBatch`]es sized
//! by the engine's configured batch capacity ([`crate::runtime::ExecEnv`]),
//! which amortizes virtual dispatch, channel synchronization, and
//! statistics updates over whole blocks while keeping the paper's
//! adaptivity — a batch is handed downstream as soon as it exists, never
//! held back to fill, so time-to-first-output matches the tuple-at-a-time
//! engine. Consumers that genuinely need single tuples (e.g. the nested
//! loops join's outer side) pull through a [`TupleCursor`].
//!
//! Contract:
//! * `next_batch` returns `Ok(Some(batch))` with a **non-empty** batch, or
//!   `Ok(None)` at end of stream;
//! * all tuples in a batch conform to [`Operator::schema`].

use tukwila_common::{Result, Schema, Tuple, TupleBatch};

/// A physical operator in the batched iterator model.
pub trait Operator: Send {
    /// Prepare for execution. Must be called exactly once before
    /// `next_batch`.
    fn open(&mut self) -> Result<()>;

    /// Produce the next non-empty batch of output tuples, or `None` at end
    /// of stream.
    fn next_batch(&mut self) -> Result<Option<TupleBatch>>;

    /// Release resources (idempotent).
    fn close(&mut self) -> Result<()>;

    /// Output schema. Only valid after `open` succeeded.
    fn schema(&self) -> &Schema;

    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
}

/// Boxed operator (the tree edge type).
pub type OperatorBox = Box<dyn Operator>;

/// Single-tuple adapter over a batched operator: buffers the current batch
/// and yields one tuple per call. This is the migration/consumption shim
/// for call sites that need tuple granularity; the operators themselves are
/// all natively batched.
#[derive(Default)]
pub struct TupleCursor {
    buf: Option<TupleBatch>,
    pos: usize,
}

impl TupleCursor {
    /// Fresh cursor with no buffered batch.
    pub fn new() -> Self {
        TupleCursor { buf: None, pos: 0 }
    }

    /// Next tuple from `op`, pulling a new batch when the buffer runs dry.
    pub fn next(&mut self, op: &mut dyn Operator) -> Result<Option<Tuple>> {
        loop {
            if let Some(batch) = &self.buf {
                if let Some(t) = batch.get(self.pos) {
                    let t = t.clone();
                    self.pos += 1;
                    return Ok(Some(t));
                }
                self.buf = None;
            }
            match op.next_batch()? {
                Some(batch) => {
                    self.buf = Some(batch);
                    self.pos = 0;
                }
                None => return Ok(None),
            }
        }
    }

    /// Whether a tuple is available without pulling a new batch — i.e. the
    /// next `next` call cannot block on the underlying operator. Lets
    /// consumers fill an output batch only as long as doing so is free.
    pub fn has_buffered(&self) -> bool {
        self.buf.as_ref().is_some_and(|b| self.pos < b.len())
    }

    /// Drop any buffered tuples (e.g. before a retry).
    pub fn clear(&mut self) {
        self.buf = None;
        self.pos = 0;
    }
}

/// Drain an operator to completion (open → next_batch* → close),
/// collecting output tuples. Test/bench helper — goes through the batch
/// path, so every drain-based test exercises the batched contract.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Tuple>> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        debug_assert!(!batch.is_empty(), "operators must not emit empty batches");
        out.extend(batch);
    }
    op.close()?;
    Ok(out)
}

/// Drain an operator to completion, keeping batch boundaries. Test/bench
/// helper for asserting batching behaviour itself.
pub fn drain_batches(op: &mut dyn Operator) -> Result<Vec<TupleBatch>> {
    op.open()?;
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        debug_assert!(!batch.is_empty(), "operators must not emit empty batches");
        out.push(batch);
    }
    op.close()?;
    Ok(out)
}

/// Drain an operator through the single-tuple adapter (open → cursor pulls
/// → close). Used by equivalence tests to compare the per-tuple view with
/// the batched view of the same stream.
pub fn drain_tuples(op: &mut dyn Operator) -> Result<Vec<Tuple>> {
    op.open()?;
    let mut cursor = TupleCursor::new();
    let mut out = Vec::new();
    while let Some(t) = cursor.next(op)? {
        out.push(t);
    }
    op.close()?;
    Ok(out)
}
