//! Distributed shard execution support (DESIGN.md §12).
//!
//! A [`ShardExecutor`] is the coordinator's handle on a pool of worker
//! processes: [`crate::operators::RemoteExchange`] asks it to scatter the
//! partition pipelines of an optimizer-lowered `Exchange` and hands back
//! one [`ShardStream`] per shard, whose union is the exchange's output.
//! The transport lives in `tukwila-net`; this module only defines the
//! contract plus the worker-side building blocks that must agree with the
//! local [`crate::operators::Exchange`] on partitioning semantics:
//!
//! * [`ShardFilter`] keeps exactly the rows the local exchange would route
//!   to one partition — same prehash, same [`fold_hash`] fold, same salt,
//!   and the same "NULL keys are dropped" rule (a NULL never equi-joins).
//! * [`build_shard_root`] builds a worker's operator tree for one shard:
//!   the dispatched join with both inputs wrapped in shard filters.
//!
//! Each worker recomputes the join's input subtrees from its own sources
//! and keeps only its shard (shared-nothing scatter; inputs are never
//! shipped through the coordinator), so the union over all shards equals
//! the local join for any equi-join kind — including the kinds the local
//! exchange cannot thread-partition.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use tukwila_common::{fold_hash, KeyVector, Relation, Result, Schema, TukwilaError, TupleBatch};
use tukwila_plan::{
    print_plan, Fragment, FragmentId, JoinKind, OperatorNode, OperatorSpec, QueryPlan, SubjectRef,
};
use tukwila_trace::QueryTrace;

use crate::build::build_operator;
use crate::control::QueryControl;
use crate::operator::{Operator, OperatorBox};
use crate::operators::exchange::EXCHANGE_SALT;
use crate::operators::{DoublePipelinedJoin, HashJoinOp, NestedLoopsJoin, SortMergeJoin};
use crate::runtime::{OpHarness, PlanRuntime};

/// Everything a worker needs to run one shard of a scattered exchange.
/// The same spec is dispatched to every shard; only the shard index
/// differs.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// The dispatched fragment as parseable plan text
    /// ([`subtree_plan_text`]): a single fragment whose root is the join
    /// under the exchange.
    pub plan_text: String,
    /// Coordinator-local materializations the fragment's `TableScan`s
    /// reference, shipped to the worker's local store.
    pub tables: Vec<(String, Arc<Relation>)>,
    /// Total number of shards (the exchange's partition degree).
    pub shard_count: usize,
    /// Operator batch size the worker should execute with.
    pub batch_size: usize,
    /// Per-shard memory budget in bytes (0 = unbounded).
    pub shard_budget: usize,
    /// Remaining query deadline at dispatch time, forwarded so workers
    /// trip on their own clock instead of relying on a cancel message.
    pub deadline: Option<Duration>,
}

/// Completion statistics one shard reports with its final message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Output rows the shard produced.
    pub rows: u64,
    /// Output batches the shard produced.
    pub batches: u64,
    /// Times the worker blocked waiting for send credit (backpressure).
    pub backpressure_stalls: u64,
    /// Tuples the worker spilled while executing the shard.
    pub spill_tuples: u64,
}

/// One shard's result stream at the coordinator.
pub trait ShardStream: Send {
    /// Worker identity (address) for diagnostics and trace events.
    fn worker(&self) -> &str;

    /// Block until the shard started executing and report its output
    /// schema. Must be called exactly once before `next_batch`.
    fn open(&mut self) -> Result<Schema>;

    /// Next batch of shard output, or `None` once the shard completed.
    /// Worker death surfaces here as an error, never as a hang.
    fn next_batch(&mut self) -> Result<Option<TupleBatch>>;

    /// Completion statistics (valid after `next_batch` returned `None`).
    fn stats(&self) -> ShardStats;

    /// Flag that makes a blocked `open`/`next_batch` bail out promptly
    /// (registered with the query control for cancellation, and set by the
    /// exchange on early close).
    fn abort_handle(&self) -> Arc<AtomicBool>;
}

/// Coordinator-side handle on a worker pool: scatters shard specs, returns
/// the per-shard result streams. Implemented by `tukwila_net::Cluster`
/// over TCP; tests may install in-process fakes.
pub trait ShardExecutor: Send + Sync {
    /// Number of distinct workers behind this executor (shards are dealt
    /// round-robin across them).
    fn worker_count(&self) -> usize;

    /// Dispatch `spec.shard_count` shards and return their streams, in
    /// shard order. Streams are not yet opened.
    fn start(
        &self,
        spec: &ShardSpec,
        control: &Arc<QueryControl>,
        trace: &Arc<QueryTrace>,
    ) -> Result<Vec<Box<dyn ShardStream>>>;
}

/// Render the join subtree under an exchange as a standalone
/// single-fragment plan, parseable by `tukwila_plan::parse_plan` on the
/// worker. `shard_budget` (when non-zero) replaces the root join's memory
/// annotation so each worker plans with its shard's slice, mirroring the
/// local exchange's budget/N split.
pub fn subtree_plan_text(node: &OperatorNode, shard_budget: usize) -> String {
    let mut root = node.clone();
    if shard_budget > 0 && root.memory_budget.is_some() {
        root.memory_budget = Some(shard_budget);
    }
    let frag = Fragment::new(FragmentId(0), root, "result");
    print_plan(&QueryPlan::new(vec![frag], FragmentId(0)))
}

/// Names of local-store tables the subtree scans (the coordinator must
/// ship these to workers alongside the plan).
pub fn subtree_table_deps(node: &OperatorNode) -> Vec<String> {
    fn walk(node: &OperatorNode, out: &mut Vec<String>) {
        match &node.spec {
            OperatorSpec::TableScan { table } => {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            OperatorSpec::WrapperScan { .. } | OperatorSpec::Collector { .. } => {}
            OperatorSpec::Select { input, .. }
            | OperatorSpec::Project { input, .. }
            | OperatorSpec::Exchange { input, .. } => walk(input, out),
            OperatorSpec::Join { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            OperatorSpec::DependentJoin { left, .. } => walk(left, out),
            OperatorSpec::Union { inputs } => {
                for i in inputs {
                    walk(i, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(node, &mut out);
    out
}

/// Filter a child's output down to one shard: keep rows whose join-key
/// prehash folds to `shard_index`, drop NULL keys (identical routing to
/// the local exchange's `drive_side`).
pub struct ShardFilter {
    child: OperatorBox,
    key: String,
    key_idx: usize,
    shard_index: usize,
    shard_count: usize,
}

impl ShardFilter {
    /// Wrap `child`, keeping shard `shard_index` of `shard_count` by the
    /// (possibly qualified) key column `key`.
    pub fn new(child: OperatorBox, key: String, shard_index: usize, shard_count: usize) -> Self {
        ShardFilter {
            child,
            key,
            key_idx: 0,
            shard_index,
            shard_count: shard_count.max(1),
        }
    }
}

impl Operator for ShardFilter {
    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        match self.child.schema().index_of(&self.key) {
            Ok(idx) => {
                self.key_idx = idx;
                Ok(())
            }
            Err(e) => {
                let _ = self.child.close();
                Err(e)
            }
        }
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            let Some(batch) = self.child.next_batch()? else {
                return Ok(None);
            };
            let kv = KeyVector::compute(&batch, self.key_idx);
            let mut rows: Vec<u32> = Vec::with_capacity(batch.len());
            for (i, h) in kv.iter().enumerate() {
                if let Some(h) = h {
                    if fold_hash(h, self.shard_count, EXCHANGE_SALT) == self.shard_index {
                        rows.push(i as u32);
                    }
                }
            }
            if rows.len() == batch.len() {
                return Ok(Some(batch));
            }
            if rows.is_empty() {
                continue;
            }
            let out = match batch.columns() {
                Some(cols) => TupleBatch::from_columns(cols.gather(&rows)),
                None => {
                    let tuples = batch.tuples();
                    TupleBatch::from_tuples(
                        rows.iter().map(|&i| tuples[i as usize].clone()).collect(),
                    )
                }
            };
            return Ok(Some(out));
        }
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }

    fn schema(&self) -> &Schema {
        self.child.schema()
    }

    fn name(&self) -> &'static str {
        "shard-filter"
    }
}

/// Build a worker's operator tree for one shard of a dispatched fragment:
/// the root join with both inputs wrapped in [`ShardFilter`]s. With a
/// single shard there is nothing to filter and the tree builds as-is.
/// Unlike the local exchange this handles *any* equi-join kind — hash
/// partitioning by the join key is correct for all of them.
pub fn build_shard_root(
    node: &OperatorNode,
    rt: &Arc<PlanRuntime>,
    shard_index: usize,
    shard_count: usize,
) -> Result<OperatorBox> {
    if shard_count <= 1 {
        return build_operator(node, rt);
    }
    let OperatorSpec::Join {
        left,
        right,
        left_key,
        right_key,
        kind,
        overflow: _,
    } = &node.spec
    else {
        return Err(TukwilaError::Plan(format!(
            "shard {shard_index}/{shard_count}: dispatched fragment root must be a join"
        )));
    };
    let l: OperatorBox = Box::new(ShardFilter::new(
        build_operator(left, rt)?,
        left_key.clone(),
        shard_index,
        shard_count,
    ));
    let r: OperatorBox = Box::new(ShardFilter::new(
        build_operator(right, rt)?,
        right_key.clone(),
        shard_index,
        shard_count,
    ));
    let harness = OpHarness::new(rt.clone(), SubjectRef::Op(node.id));
    let (lk, rk) = (left_key.clone(), right_key.clone());
    Ok(match kind {
        JoinKind::DoublePipelined => {
            let descendants: Vec<SubjectRef> = left
                .all_ids()
                .into_iter()
                .chain(right.all_ids())
                .map(SubjectRef::Op)
                .collect();
            Box::new(DoublePipelinedJoin::new(l, r, lk, rk, harness).with_descendants(descendants))
        }
        JoinKind::HybridHash => Box::new(HashJoinOp::hybrid(l, r, lk, rk, harness)),
        JoinKind::GraceHash => Box::new(HashJoinOp::grace(l, r, lk, rk, harness)),
        JoinKind::NestedLoops => Box::new(NestedLoopsJoin::new(l, r, lk, rk, harness)),
        JoinKind::SortMerge => Box::new(SortMergeJoin::new(l, r, lk, rk, harness)),
    })
}
