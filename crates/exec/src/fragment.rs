//! Fragment execution (§3.2).
//!
//! "Each plan fragment is processed in turn, as a single, pipelined
//! execution unit." The fragment executor drives the root operator with the
//! iterator model, materializes the result in the local store, gathers the
//! cardinality statistics the optimizer needs, and watches for the engine
//! signals that rules raise (reschedule mid-fragment, replan at the
//! materialization point, abort).

use std::time::{Duration, Instant};

use tukwila_common::{Relation, Result, TukwilaError};
use tukwila_plan::{OpState, QueryPlan, SubjectRef};

use crate::build::build_operator;
use crate::runtime::{EngineSignal, PlanRuntime};

/// How a fragment run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum FragmentOutcome {
    /// Ran to completion; result materialized.
    Completed {
        /// Result cardinality.
        cardinality: usize,
        /// A rule requested re-optimization at the materialization point
        /// (the §3.1.2 `replan` action).
        replan_requested: bool,
    },
    /// A rule requested rescheduling mid-fragment (query scrambling); the
    /// fragment was abandoned and should be retried after other fragments.
    Rescheduled,
    /// A rule aborted the query with an error for the user.
    Aborted(String),
    /// The fragment failed with an unhandled error.
    Failed(TukwilaError),
}

/// Statistics from one fragment run (shipped back to the optimizer, §3.2).
#[derive(Debug, Clone)]
pub struct FragmentReport {
    /// The fragment.
    pub fragment: tukwila_plan::FragmentId,
    /// Outcome.
    pub outcome: FragmentOutcome,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Time until the first output tuple, if any was produced.
    pub time_to_first: Option<Duration>,
    /// Tuples produced.
    pub produced: u64,
}

/// Execute one fragment, materializing its result under the fragment's
/// `materialize_as` name. `observer` is called with `(tuples_so_far,
/// elapsed)` per output **batch** — the probe used to regenerate the
/// paper's tuples-vs-time figures (with batched execution one sample
/// covers one arrival burst; slow sources still sample near-per-tuple).
pub fn run_fragment_observed(
    plan: &QueryPlan,
    frag_id: tukwila_plan::FragmentId,
    rt: &std::sync::Arc<PlanRuntime>,
    observer: &mut dyn FnMut(u64, Duration),
) -> Result<FragmentReport> {
    let start = Instant::now();
    let frag = plan
        .fragment(frag_id)
        .ok_or_else(|| TukwilaError::Plan(format!("unknown fragment {frag_id}")))?;
    let subject = SubjectRef::Fragment(frag_id);

    let finish = |outcome: FragmentOutcome, produced: u64, ttf: Option<Duration>| {
        Ok(FragmentReport {
            fragment: frag_id,
            outcome,
            duration: start.elapsed(),
            time_to_first: ttf,
            produced,
        })
    };

    // Refuse to start under a cancelled/expired control.
    if let Err(e) = rt.control().check() {
        rt.set_state(subject, OpState::Failed);
        return finish(FragmentOutcome::Failed(e), 0, None);
    }

    let mut root = build_operator(&frag.root, rt)?;
    rt.set_state(subject, OpState::Open);
    if let Err(e) = root.open() {
        let _ = root.close();
        rt.set_state(subject, OpState::Failed);
        return finish(classify_error(rt, frag_id, e), 0, None);
    }

    // Batches are collected whole (not flattened to rows): when every batch
    // is columnar, materialization below assembles the relation column-wise
    // with typed buffer appends and never builds a row view.
    let mut batches: Vec<tukwila_common::TupleBatch> = Vec::new();
    let mut rows = 0usize;
    let mut time_to_first = None;
    loop {
        match root.next_batch() {
            Ok(Some(batch)) => {
                if rows == 0 {
                    time_to_first = Some(start.elapsed());
                }
                rt.add_produced(subject, batch.len() as u64);
                rows += batch.len();
                batches.push(batch);
                observer(rows as u64, start.elapsed());
                // Cooperative cancellation: the query control is checked at
                // every batch boundary (deadlines self-trip here).
                if let Err(e) = rt.control().check() {
                    let _ = root.close();
                    rt.set_state(subject, OpState::Failed);
                    return finish(FragmentOutcome::Failed(e), rows as u64, time_to_first);
                }
                // Mid-fragment signals: reschedule and abort take effect
                // immediately; replan waits for the materialization point.
                // Reschedule is fragment-scoped: a request raised for a
                // concurrent sibling stays queued for that sibling.
                if rt.signal_pending() {
                    if let Some(sig) = peek_interrupting_signal(rt, frag_id) {
                        let _ = root.close();
                        return finish(sig, rows as u64, time_to_first);
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = root.close();
                rt.set_state(subject, OpState::Failed);
                return finish(classify_error(rt, frag_id, e), rows as u64, time_to_first);
            }
        }
    }
    // A cancellation that interrupted a source mid-stream makes operators
    // end quietly; re-check the control before materializing so a truncated
    // stream can never masquerade as a completed fragment.
    if let Err(e) = rt.control().check() {
        let _ = root.close();
        rt.set_state(subject, OpState::Failed);
        return finish(FragmentOutcome::Failed(e), rows as u64, time_to_first);
    }
    let produced = rows as u64;
    let schema = root.schema().clone();
    root.close()?;
    let relation = Relation::from_batches(schema, batches)?;
    rt.env().local.put(&frag.materialize_as, relation);

    // Materialization point: emit closed(frag); replan rules fire here.
    rt.set_state(subject, OpState::Closed);
    let outcome = match rt.take_signal_for(frag_id) {
        Some(EngineSignal::Abort(m)) => FragmentOutcome::Aborted(m),
        Some(EngineSignal::Replan) => FragmentOutcome::Completed {
            cardinality: produced as usize,
            replan_requested: true,
        },
        Some(EngineSignal::Reschedule) | None => FragmentOutcome::Completed {
            cardinality: produced as usize,
            replan_requested: false,
        },
    };
    finish(outcome, produced, time_to_first)
}

/// Execute one fragment without observation.
pub fn run_fragment(
    plan: &QueryPlan,
    frag_id: tukwila_plan::FragmentId,
    rt: &std::sync::Arc<PlanRuntime>,
) -> Result<FragmentReport> {
    run_fragment_observed(plan, frag_id, rt, &mut |_, _| {})
}

fn peek_interrupting_signal(
    rt: &PlanRuntime,
    frag_id: tukwila_plan::FragmentId,
) -> Option<FragmentOutcome> {
    match rt.take_signal_for(frag_id) {
        Some(EngineSignal::Abort(m)) => Some(FragmentOutcome::Aborted(m)),
        Some(EngineSignal::Reschedule) => Some(FragmentOutcome::Rescheduled),
        Some(EngineSignal::Replan) => {
            // Replan only takes effect at a materialization point; re-raise
            // by... treating it as an immediate stop is wrong, so we simply
            // remember it via a fresh emit-less path: the fragment keeps
            // running and the signal is re-checked at close. To preserve
            // it, re-apply.
            rt.emit_replan_signal();
            None
        }
        None => None,
    }
}

fn classify_error(
    rt: &PlanRuntime,
    frag_id: tukwila_plan::FragmentId,
    e: TukwilaError,
) -> FragmentOutcome {
    // A recoverable error accompanied by a pending signal becomes that
    // signal's outcome (e.g. timeout + reschedule rule ⇒ Rescheduled).
    match rt.take_signal_for(frag_id) {
        Some(EngineSignal::Abort(m)) => FragmentOutcome::Aborted(m),
        Some(EngineSignal::Reschedule) => FragmentOutcome::Rescheduled,
        Some(EngineSignal::Replan) => {
            rt.emit_replan_signal();
            FragmentOutcome::Failed(e)
        }
        None => FragmentOutcome::Failed(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::ExecEnv;
    use crate::test_support::keyed_relation;
    use tukwila_plan::{JoinKind, PlanBuilder, Rule};
    use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

    fn registry(n: i64) -> SourceRegistry {
        let reg = SourceRegistry::new();
        reg.register(SimulatedSource::new(
            "L",
            keyed_relation("l", n, 10),
            LinkModel::instant(),
        ));
        reg.register(SimulatedSource::new(
            "R",
            keyed_relation("r", n / 2, 10),
            LinkModel::instant(),
        ));
        reg
    }

    #[test]
    fn completes_and_materializes() {
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("L");
        let r = b.wrapper_scan("R");
        let j = b.join(JoinKind::DoublePipelined, l, r, "k", "k");
        let f = b.fragment(j, "result");
        let plan = b.build(f);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, ExecEnv::new(registry(100)));
        let report = run_fragment(&plan, f, &rt).unwrap();
        match report.outcome {
            FragmentOutcome::Completed {
                cardinality,
                replan_requested,
            } => {
                assert!(cardinality > 0);
                assert!(!replan_requested);
                assert_eq!(rt.env().local.cardinality("result"), Some(cardinality));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        assert!(report.time_to_first.is_some());
        assert!(report.produced > 0);
    }

    #[test]
    fn replan_rule_fires_at_materialization() {
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("L");
        let r = b.wrapper_scan("R");
        // estimate is wildly wrong: est 1, actual = 500 (100×50 via 10 keys)
        let j = b
            .join(JoinKind::DoublePipelined, l, r, "k", "k")
            .with_est_cardinality(1.0);
        let jid = j.id;
        let f = b.fragment(j, "result");
        b.add_local_rule(f, Rule::replan_on_misestimate(f, jid, 2.0));
        let plan = b.build(f);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, ExecEnv::new(registry(100)));
        let report = run_fragment(&plan, f, &rt).unwrap();
        match report.outcome {
            FragmentOutcome::Completed {
                replan_requested, ..
            } => assert!(replan_requested, "2x misestimate must request replan"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn accurate_estimate_does_not_replan() {
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("L");
        let r = b.wrapper_scan("R");
        let j = b
            .join(JoinKind::DoublePipelined, l, r, "k", "k")
            .with_est_cardinality(500.0); // exactly right
        let jid = j.id;
        let f = b.fragment(j, "result");
        b.add_local_rule(f, Rule::replan_on_misestimate(f, jid, 2.0));
        let plan = b.build(f);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, ExecEnv::new(registry(100)));
        let report = run_fragment(&plan, f, &rt).unwrap();
        match report.outcome {
            FragmentOutcome::Completed {
                replan_requested, ..
            } => assert!(!replan_requested),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn timeout_with_reschedule_rule_returns_rescheduled() {
        let reg = SourceRegistry::new();
        reg.register(SimulatedSource::new(
            "stall",
            keyed_relation("s", 100, 10),
            LinkModel::stalling(5),
        ));
        let mut b = PlanBuilder::new();
        let s = b.wrapper_scan_opts("stall", Some(25), None);
        let sid = s.id;
        let f = b.fragment(s, "out");
        b.add_local_rule(f, Rule::reschedule_on_timeout(f, sid));
        let plan = b.build(f);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, ExecEnv::new(reg));
        let report = run_fragment(&plan, f, &rt).unwrap();
        assert_eq!(report.outcome, FragmentOutcome::Rescheduled);
        assert_eq!(report.produced, 5);
    }

    #[test]
    fn unhandled_source_failure_is_failed() {
        let reg = SourceRegistry::new();
        reg.register(SimulatedSource::new(
            "flaky",
            keyed_relation("s", 100, 10),
            LinkModel::failing(5),
        ));
        let mut b = PlanBuilder::new();
        let s = b.wrapper_scan("flaky");
        let f = b.fragment(s, "out");
        let plan = b.build(f);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, ExecEnv::new(reg));
        let report = run_fragment(&plan, f, &rt).unwrap();
        match report.outcome {
            FragmentOutcome::Failed(e) => assert_eq!(e.kind(), "source_unavailable"),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn observer_sees_monotone_series() {
        let mut b = PlanBuilder::new();
        let l = b.wrapper_scan("L");
        let f = b.fragment(l, "out");
        let plan = b.build(f);
        // batch size 10 → one observation per batch, five in total
        let env = ExecEnv::new(registry(50)).with_batch_size(10);
        let rt = crate::runtime::PlanRuntime::for_plan(&plan, env);
        let mut series = Vec::new();
        run_fragment_observed(&plan, f, &rt, &mut |n, d| series.push((n, d))).unwrap();
        assert_eq!(series.len(), 5);
        assert_eq!(series.last().unwrap().0, 50);
        assert!(series
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
    }
}
