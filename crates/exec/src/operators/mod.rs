//! Physical operator implementations.
//!
//! Standard relational operators (§4: "join (including dependent join),
//! selection, projection, union and table scan") plus Tukwila's adaptive
//! operators: the double pipelined join ([`dpj`]) and the dynamic collector
//! ([`collector`]).

#[cfg(test)]
mod batch_tests;
pub mod collector;
pub mod dependent_join;
pub mod dpj;
pub mod filter;
pub mod hash_join;
pub mod hash_table;
pub mod nlj;
#[cfg(test)]
mod op_tests;
pub mod project;
pub mod scan;
pub mod smj;
pub mod union_op;
pub mod wrapper_scan;

pub use collector::Collector;
pub use dependent_join::DependentJoin;
pub use dpj::DoublePipelinedJoin;
pub use filter::Filter;
pub use hash_join::HashJoinOp;
pub use nlj::NestedLoopsJoin;
pub use project::Project;
pub use scan::TableScan;
pub use smj::SortMergeJoin;
pub use union_op::UnionAll;
pub use wrapper_scan::WrapperScan;
