//! Physical operator implementations.
//!
//! Standard relational operators (§4: "join (including dependent join),
//! selection, projection, union and table scan") plus Tukwila's adaptive
//! operators: the double pipelined join ([`dpj`]) and the dynamic collector
//! ([`collector`]).

#[cfg(test)]
mod batch_tests;
pub mod collector;
#[cfg(test)]
mod columnar_equiv_tests;
pub mod dependent_join;
pub mod dpj;
pub mod exchange;
pub mod filter;
pub mod hash_join;
pub mod hash_table;
pub mod nlj;
#[cfg(test)]
mod op_tests;
#[cfg(test)]
mod par_tests;
#[cfg(test)]
mod prehash_tests;
pub mod project;
pub mod remote_exchange;
pub mod scan;
pub mod smj;
pub mod union_op;
pub mod wrapper_scan;

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use tukwila_common::Result;
use tukwila_plan::SubjectRef;
use tukwila_source::{FetchVia, Wrapper, WrapperStream};
use tukwila_trace::CacheOutcome;

use crate::runtime::PlanRuntime;

/// Open a wrapper stream for `subject`, going through the shared
/// source-result cache when one is installed (cache hit → replay; cold key
/// → teeing single-flight leader; in-flight key → coalesced wait keyed by
/// the query's flight id). The coalesced wait is interruptible: its cancel
/// flag is registered like any other blocking pull, so rule-driven
/// deactivation and query-level cancellation both end it. Returns
/// `Ok(None)` when the wait was cancelled by a rule (quiet end); a
/// query-level cancellation surfaces as the control's error.
pub(crate) fn open_source_stream(
    rt: &Arc<PlanRuntime>,
    subject: SubjectRef,
    wrapper: &Wrapper,
    base: impl FnOnce(&Wrapper) -> WrapperStream,
) -> Result<Option<WrapperStream>> {
    match rt.env().sources.cache() {
        Some(cache) => {
            let wait_cancel = Arc::new(AtomicBool::new(false));
            rt.register_cancel(subject, wait_cancel.clone());
            let flight = rt.control().flight_id();
            match wrapper.fetch_through_cache_observed(&cache, flight, Some(&wait_cancel), base) {
                Some((stream, via)) => {
                    let outcome = match via {
                        FetchVia::Hit => CacheOutcome::Hit,
                        FetchVia::Lead => CacheOutcome::Miss,
                        FetchVia::Coalesced => CacheOutcome::Coalesced,
                        FetchVia::Bypass => CacheOutcome::Bypass,
                    };
                    rt.note_cache_outcome(wrapper.source_name(), outcome);
                    Ok(Some(stream))
                }
                None => {
                    rt.control().check()?;
                    Ok(None)
                }
            }
        }
        None => Ok(Some(base(wrapper))),
    }
}

pub use collector::Collector;
pub use dependent_join::DependentJoin;
pub use dpj::DoublePipelinedJoin;
pub use exchange::{is_partitionable, Exchange};
pub use filter::Filter;
pub use hash_join::HashJoinOp;
pub use nlj::NestedLoopsJoin;
pub use project::Project;
pub use remote_exchange::RemoteExchange;
pub use scan::TableScan;
pub use smj::SortMergeJoin;
pub use union_op::UnionAll;
pub use wrapper_scan::WrapperScan;
