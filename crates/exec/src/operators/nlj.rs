//! Nested loops join (baseline).
//!
//! §4.2: "for a nested loops join, each tuple from the outer relation is
//! probed against the entire inner relation; we must wait for the entire
//! inner table to be transmitted initially before pipelining begins." That
//! blocking behaviour is exactly what we measure against.

use tukwila_common::{Result, Schema, Tuple, TukwilaError};

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Equi-join by scanning the fully buffered inner relation per outer tuple.
pub struct NestedLoopsJoin {
    left: OperatorBox,
    right: OperatorBox,
    left_key: String,
    right_key: String,
    harness: OpHarness,
    // after open:
    schema: Schema,
    left_key_idx: usize,
    right_key_idx: usize,
    inner: Vec<Tuple>,
    current_left: Option<Tuple>,
    inner_pos: usize,
    opened: bool,
}

impl NestedLoopsJoin {
    /// Build a nested loops join (right child = inner).
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        NestedLoopsJoin {
            left,
            right,
            left_key,
            right_key,
            harness,
            schema: Schema::empty(),
            left_key_idx: 0,
            right_key_idx: 0,
            inner: Vec::new(),
            current_left: None,
            inner_pos: 0,
            opened: false,
        }
    }
}

impl Operator for NestedLoopsJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.left_key_idx = self.left.schema().index_of(&self.left_key)?;
        self.right_key_idx = self.right.schema().index_of(&self.right_key)?;
        self.schema = self.left.schema().concat(self.right.schema());
        // Block: buffer the entire inner relation.
        self.inner.clear();
        while let Some(t) = self.right.next()? {
            if let Some(r) = self.harness.reservation() {
                r.charge(t.mem_size());
            }
            self.inner.push(t);
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(TukwilaError::Internal("NLJ before open".into()));
        }
        loop {
            if self.current_left.is_none() {
                self.current_left = self.left.next()?;
                self.inner_pos = 0;
                if self.current_left.is_none() {
                    return Ok(None);
                }
            }
            let l = self.current_left.as_ref().unwrap();
            let lk = l.value(self.left_key_idx);
            while self.inner_pos < self.inner.len() {
                let r = &self.inner[self.inner_pos];
                self.inner_pos += 1;
                if lk.sql_eq(r.value(self.right_key_idx)) == Some(true) {
                    let out = l.concat(r);
                    self.harness.produced(1);
                    return Ok(Some(out));
                }
            }
            self.current_left = None;
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        self.right.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(self.inner.iter().map(Tuple::mem_size).sum());
            }
            self.inner.clear();
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "nested_loops_join"
    }
}
