//! Nested loops join (baseline).
//!
//! §4.2: "for a nested loops join, each tuple from the outer relation is
//! probed against the entire inner relation; we must wait for the entire
//! inner table to be transmitted initially before pipelining begins." That
//! blocking behaviour is exactly what we measure against.

use tukwila_common::{BatchAssembler, Result, Schema, TukwilaError, Tuple, TupleBatch};

use crate::operator::{Operator, OperatorBox, TupleCursor};
use crate::runtime::OpHarness;

/// Equi-join by scanning the fully buffered inner relation per outer tuple.
pub struct NestedLoopsJoin {
    left: OperatorBox,
    right: OperatorBox,
    left_key: String,
    right_key: String,
    harness: OpHarness,
    // after open:
    schema: Schema,
    left_key_idx: usize,
    right_key_idx: usize,
    inner: Vec<Tuple>,
    left_cursor: TupleCursor,
    current_left: Option<Tuple>,
    inner_pos: usize,
    opened: bool,
}

impl NestedLoopsJoin {
    /// Build a nested loops join (right child = inner).
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        NestedLoopsJoin {
            left,
            right,
            left_key,
            right_key,
            harness,
            schema: Schema::empty(),
            left_key_idx: 0,
            right_key_idx: 0,
            inner: Vec::new(),
            left_cursor: TupleCursor::new(),
            current_left: None,
            inner_pos: 0,
            opened: false,
        }
    }

    /// Advance the join by one result. With `may_pull == false`, refuses to
    /// pull a fresh outer batch (which can block on a slow source) and
    /// reports `WouldBlock` instead; scanning the in-memory inner and
    /// cursor-buffered outer tuples is always free.
    fn step(&mut self, may_pull: bool) -> Result<Step> {
        loop {
            if self.current_left.is_none() {
                if !may_pull && !self.left_cursor.has_buffered() {
                    return Ok(Step::WouldBlock);
                }
                self.current_left = self.left_cursor.next(self.left.as_mut())?;
                self.inner_pos = 0;
                if self.current_left.is_none() {
                    return Ok(Step::End);
                }
            }
            let l = self.current_left.as_ref().unwrap();
            let lk = l.value(self.left_key_idx);
            while self.inner_pos < self.inner.len() {
                let r = &self.inner[self.inner_pos];
                self.inner_pos += 1;
                if lk.sql_eq(r.value(self.right_key_idx)) == Some(true) {
                    // Report the match by inner index; the caller assembles
                    // `current_left ++ inner[idx]` into the output block.
                    return Ok(Step::Match(self.inner_pos - 1));
                }
            }
            self.current_left = None;
        }
    }
}

enum Step {
    Match(usize),
    WouldBlock,
    End,
}

impl Operator for NestedLoopsJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.right.open()?;
        self.left_key_idx = self.left.schema().index_of(&self.left_key)?;
        self.right_key_idx = self.right.schema().index_of(&self.right_key)?;
        self.schema = self.left.schema().concat(self.right.schema());
        // Block: buffer the entire inner relation, batch by batch.
        self.inner.clear();
        while let Some(batch) = self.right.next_batch()? {
            if let Some(r) = self.harness.reservation() {
                r.charge(batch.mem_size());
            }
            self.inner.extend(batch);
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("NLJ before open".into()));
        }
        // Assemble output rows into one shared value block per batch — no
        // per-row `Vec`/`Arc` allocation in the emit loop.
        let mut asm = BatchAssembler::new(self.harness.batch_size());
        while !asm.is_full() {
            // Once output exists, a batch is never held back to fill: only
            // free work (inner scan, cursor-buffered outer tuples) may
            // extend it; a blocking pull ends the batch instead.
            match self.step(asm.is_empty())? {
                Step::Match(idx) => {
                    let l = self.current_left.as_ref().expect("match has outer row");
                    asm.push_concat(l, &self.inner[idx]);
                }
                Step::WouldBlock | Step::End => break,
            }
        }
        match asm.seal() {
            None => Ok(None),
            Some(out) => {
                self.harness.produced(out.len() as u64);
                Ok(Some(out))
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        self.right.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(self.inner.iter().map(Tuple::mem_size).sum());
            }
            self.inner.clear();
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "nested_loops_join"
    }
}
