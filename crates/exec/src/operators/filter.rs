//! Selection operator.

use tukwila_common::{Result, Schema, TupleBatch};
use tukwila_plan::Predicate;

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

use tukwila_plan::predicate::CompiledPredicate;

/// Filters tuples by a predicate (compiled against the input schema at
/// open).
pub struct Filter {
    input: OperatorBox,
    predicate: Predicate,
    compiled: Option<CompiledPredicate>,
    harness: OpHarness,
}

impl Filter {
    /// Build a filter.
    pub fn new(input: OperatorBox, predicate: Predicate, harness: OpHarness) -> Self {
        Filter {
            input,
            predicate,
            compiled: None,
            harness,
        }
    }
}

impl Operator for Filter {
    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.compiled = Some(self.predicate.compile(self.input.schema())?);
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let compiled = self
            .compiled
            .as_ref()
            .ok_or_else(|| tukwila_common::TukwilaError::Internal("Filter before open".into()))?;
        // Filter each input batch in place (no rebuild — a fully-passing
        // batch flows through with zero copies); skip batches that filter
        // to nothing (the contract forbids emitting empty batches).
        while let Some(mut batch) = self.input.next_batch()? {
            batch.retain(|t| compiled.matches(t));
            if !batch.is_empty() {
                self.harness.produced(batch.len() as u64);
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()?;
        if self.compiled.take().is_some() {
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}
