//! Selection operator.

use tukwila_common::{Result, Schema, TupleBatch};
use tukwila_plan::Predicate;

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

use tukwila_plan::predicate::CompiledPredicate;

/// Filters tuples by a predicate (compiled against the input schema at
/// open).
pub struct Filter {
    input: OperatorBox,
    predicate: Predicate,
    compiled: Option<CompiledPredicate>,
    harness: OpHarness,
}

impl Filter {
    /// Build a filter.
    pub fn new(input: OperatorBox, predicate: Predicate, harness: OpHarness) -> Self {
        Filter {
            input,
            predicate,
            compiled: None,
            harness,
        }
    }
}

impl Operator for Filter {
    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        self.compiled = Some(self.predicate.compile(self.input.schema())?);
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let compiled = self
            .compiled
            .as_ref()
            .ok_or_else(|| tukwila_common::TukwilaError::Internal("Filter before open".into()))?;
        // Columnar batches take the vectorized path: one typed comparison
        // loop per predicate leaf producing a selection bitmap, applied by
        // gather — no row views are ever built, all-pass batches flow
        // through untouched, and none-pass batches vanish without
        // materializing anything. Row batches (and predicates touching a
        // dynamic `Values` column) fall back to in-place `retain`, whose
        // all-/none-pass short circuits keep it cheap. Empty results are
        // skipped either way (the contract forbids emitting empty batches).
        while let Some(mut batch) = self.input.next_batch()? {
            if let Some(sel) = batch.columns().and_then(|cols| compiled.eval_batch(cols)) {
                match batch.select(&sel) {
                    Some(kept) => {
                        self.harness.produced(kept.len() as u64);
                        return Ok(Some(kept));
                    }
                    None => continue,
                }
            }
            batch.retain(|t| compiled.matches(t));
            if !batch.is_empty() {
                self.harness.produced(batch.len() as u64);
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()?;
        if self.compiled.take().is_some() {
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn name(&self) -> &'static str {
        "filter"
    }
}
