//! Projection operator.

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Projects the input onto a list of named columns (resolved at open).
pub struct Project {
    input: OperatorBox,
    columns: Vec<String>,
    indices: Vec<usize>,
    schema: Schema,
    harness: OpHarness,
    opened: bool,
}

impl Project {
    /// Build a projection.
    pub fn new(input: OperatorBox, columns: Vec<String>, harness: OpHarness) -> Self {
        Project {
            input,
            columns,
            indices: Vec::new(),
            schema: Schema::empty(),
            harness,
            opened: false,
        }
    }
}

impl Operator for Project {
    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let in_schema = self.input.schema();
        self.indices = self
            .columns
            .iter()
            .map(|c| in_schema.index_of(c))
            .collect::<Result<Vec<_>>>()?;
        self.schema = in_schema.project(&self.indices);
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("Project before open".into()));
        }
        match self.input.next_batch()? {
            Some(batch) => {
                let mut out = TupleBatch::with_capacity(batch.len());
                for t in batch.iter() {
                    out.push(t.project(&self.indices));
                }
                self.harness.produced(out.len() as u64);
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()?;
        if self.opened {
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "project"
    }
}
