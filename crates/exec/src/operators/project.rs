//! Projection operator.

use tukwila_common::{BatchAssembler, Result, Schema, TukwilaError, TupleBatch};

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Projects the input onto a list of named columns (resolved at open).
pub struct Project {
    input: OperatorBox,
    columns: Vec<String>,
    indices: Vec<usize>,
    /// True when the projection keeps every column in input order — the
    /// batch passes through untouched (no per-row rebuild).
    identity: bool,
    schema: Schema,
    harness: OpHarness,
    opened: bool,
}

impl Project {
    /// Build a projection.
    pub fn new(input: OperatorBox, columns: Vec<String>, harness: OpHarness) -> Self {
        Project {
            input,
            columns,
            indices: Vec::new(),
            identity: false,
            schema: Schema::empty(),
            harness,
            opened: false,
        }
    }
}

impl Operator for Project {
    fn open(&mut self) -> Result<()> {
        self.input.open()?;
        let in_schema = self.input.schema();
        self.indices = self
            .columns
            .iter()
            .map(|c| in_schema.index_of(c))
            .collect::<Result<Vec<_>>>()?;
        self.schema = in_schema.project(&self.indices);
        self.identity = self.indices.len() == in_schema.arity()
            && self.indices.iter().enumerate().all(|(i, &c)| i == c);
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("Project before open".into()));
        }
        match self.input.next_batch()? {
            Some(batch) => {
                // Identity projection: hand the batch through untouched.
                if self.identity {
                    self.harness.produced(batch.len() as u64);
                    return Ok(Some(batch));
                }
                // Columnar batches project by sharing whole column buffers
                // — O(columns) refcount bumps, zero per-row work.
                if let Some(cols) = batch.columns() {
                    let out = TupleBatch::from_columns(cols.project(&self.indices));
                    self.harness.produced(out.len() as u64);
                    return Ok(Some(out));
                }
                // Otherwise assemble all projected rows into one shared
                // value block (one allocation per batch, not per row).
                let mut asm = BatchAssembler::new(batch.len());
                for t in batch.iter() {
                    asm.push_project(t, &self.indices);
                }
                let out = asm.seal().expect("non-empty input batch");
                self.harness.produced(out.len() as u64);
                Ok(Some(out))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.input.close()?;
        if self.opened {
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "project"
    }
}
