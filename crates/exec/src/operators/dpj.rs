//! The double pipelined hash join (§4.2.2–§4.2.3) — Tukwila's flagship
//! adaptive operator.
//!
//! Symmetric and incremental: each input streams through its own thread
//! into a small **tuple transfer queue**; the output side takes a tuple from
//! whichever queue has data, probes the *opposite* hash table, and inserts
//! into its own. At any point in time all data seen so far has been joined
//! and emitted — which is what minimizes time-to-first-tuple and masks slow
//! sources.
//!
//! This is the paper's "iterator-based adaptation" (§4.2.2): the bottom-up,
//! data-driven join is wrapped in the top-down iterator model using
//! "separate threads for output, left child, and right child", with child
//! threads blocking when their transfer queue fills — that backpressure is
//! also how Incremental Left Flush "pauses" the left input.
//!
//! The transfer queues are **batched**: each channel message carries a
//! whole [`TupleBatch`] from the child's batched pull, so fast sources pay
//! one send/receive per block instead of per tuple, while slow sources
//! still deliver singleton batches with unchanged latency (the queue
//! capacity bounds in-flight *batches*).
//!
//! Memory overflow resolution (§4.2.3) implements both published
//! strategies plus the naive baseline:
//!
//! * **Incremental Left Flush** — pause the left input; flush left-side
//!   buckets as needed while draining the right input; flush right buckets
//!   only once the left table is fully flushed; resume the left when the
//!   right is exhausted (tuples in flushed buckets divert to disk, others
//!   probe the now-complete right table and need no storage at all).
//! * **Incremental Symmetric Flush** — pick the fattest bucket and flush it
//!   from *both* tables; both inputs keep streaming, with arrivals for
//!   flushed buckets marked `new` and diverted to disk.
//! * **FlushAllLeft** — the rejected "convert to hybrid hash" design, as an
//!   ablation baseline.
//!
//! Duplicate avoidance follows the paper's marking rule: cleanup joins
//! old×new, new×old and new×new — never old×old, which was emitted online.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver, Select};

use tukwila_common::{
    ColumnarBatch, DataType, KeyVector, KeyedBatch, OutputQueue, Result, Schema, TukwilaError,
    Tuple, TupleBatch,
};
use tukwila_plan::{OverflowMethod, QuantityProvider, SubjectRef};
use tukwila_trace::{OpMetrics, TraceEvent};

use crate::operator::{Operator, OperatorBox};
use crate::operators::hash_table::{join_sets, BucketedTable, FrozenSide};
use crate::runtime::OpHarness;

const LEFT: usize = 0;
const RIGHT: usize = 1;

/// Default number of hash buckets per side.
const DEFAULT_BUCKETS: usize = 16;
/// Default transfer queue capacity, in batches ("small tuple transfer
/// queue", §4.2.2 — one queue slot now holds one arrival burst).
const DEFAULT_QUEUE_CAP: usize = 16;

enum Msg {
    Batch(TupleBatch),
    End,
    Err(TukwilaError),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadMode {
    /// Pull from whichever side has data (normal data-driven operation).
    Both,
    /// Left input paused (Incremental Left Flush in progress).
    RightOnly,
}

/// The double pipelined hash join operator.
pub struct DoublePipelinedJoin {
    children: Option<(OperatorBox, OperatorBox)>,
    left_key: String,
    right_key: String,
    num_buckets: usize,
    queue_cap: usize,
    harness: OpHarness,
    /// Subjects of descendant operators — deactivated on early close so
    /// threads blocked inside link-model sleeps wake up.
    descendants: Vec<SubjectRef>,
    // -- runtime state (after open) --
    schema: Schema,
    key_idx: [usize; 2],
    rx: [Option<Receiver<Msg>>; 2],
    threads: Vec<JoinHandle<()>>,
    tables: Vec<BucketedTable>,
    done: [bool; 2],
    mode: ReadMode,
    pending: OutputQueue,
    /// The transferred batch currently being joined (from `staged_side`),
    /// prehashed once on arrival and drained in place — no per-tuple copy
    /// into a side buffer. The output side joins one tuple at a time,
    /// pausing as soon as a full output block is ready so `pending` stays
    /// bounded by batch_size plus one tuple's fanout.
    staged: Option<KeyedBatch>,
    staged_side: usize,
    cleanup_next: usize,
    cleanup_active: bool,
    raised_oom: bool,
    /// Alternates the try_recv probe order in `receive` (fairness).
    recv_flip: bool,
    engaged_method: Option<OverflowMethod>,
    /// Cached at open: `OpHarness::reservation` is a subject-map lookup +
    /// `Arc` clone, far too expensive for the per-insert overflow check.
    reservation: Option<tukwila_storage::MemoryReservation>,
    /// Metrics handle (Some only at `TraceLevel::Metrics`).
    metrics: Option<Arc<OpMetrics>>,
    /// When the current staged batch started draining (probe timing).
    staged_at: Option<Instant>,
    /// Tuples this run diverted to spill storage (overflow accounting).
    spilled_tuples: u64,
    /// The overflow-resolved event was emitted (once per run).
    resolved_emitted: bool,
    /// Per-side columnar freeze of a completed, fully in-memory table
    /// (`[left, right]`), built lazily the first time the opposite input
    /// turns probe-only. Valid while the probe-only gate holds: the frozen
    /// side receives no further inserts, and any later flush flips the gate
    /// off before the stale view could be consulted.
    frozen: [Option<FrozenSide>; 2],
    /// Schema-declared column types of each input (`[left, right]`) —
    /// freeze/builder hints captured at open.
    side_types: [Vec<DataType>; 2],
}

impl DoublePipelinedJoin {
    /// Build a double pipelined join.
    pub fn new(
        left: OperatorBox,
        right: OperatorBox,
        left_key: String,
        right_key: String,
        harness: OpHarness,
    ) -> Self {
        DoublePipelinedJoin {
            children: Some((left, right)),
            left_key,
            right_key,
            num_buckets: DEFAULT_BUCKETS,
            queue_cap: DEFAULT_QUEUE_CAP,
            harness,
            descendants: Vec::new(),
            schema: Schema::empty(),
            key_idx: [0, 0],
            rx: [None, None],
            threads: Vec::new(),
            tables: Vec::new(),
            done: [false, false],
            mode: ReadMode::Both,
            pending: OutputQueue::new(tukwila_common::DEFAULT_BATCH_CAPACITY),
            staged: None,
            staged_side: LEFT,
            cleanup_next: 0,
            cleanup_active: false,
            raised_oom: false,
            recv_flip: false,
            engaged_method: None,
            reservation: None,
            metrics: None,
            staged_at: None,
            spilled_tuples: 0,
            resolved_emitted: false,
            frozen: [None, None],
            side_types: [Vec::new(), Vec::new()],
        }
    }

    /// Override bucket count.
    pub fn with_buckets(mut self, n: usize) -> Self {
        self.num_buckets = n.max(1);
        self
    }

    /// Override transfer-queue capacity.
    pub fn with_queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n.max(1);
        self
    }

    /// Record descendant subjects for cancellation on early close.
    pub fn with_descendants(mut self, subjects: Vec<SubjectRef>) -> Self {
        self.descendants = subjects;
        self
    }

    /// Move the oldest pending output block into a batch and account it.
    fn emit_pending(&mut self) -> TupleBatch {
        let out = self.pending.pop_block().unwrap_or_default();
        if let Some(m) = &self.metrics {
            m.add_output(out.len() as u64);
        }
        self.harness.produced(out.len() as u64);
        out
    }

    /// Flush bucket `b` of `side` to spill storage, tracing the write.
    fn flush_traced(&mut self, side: usize, b: usize) -> Result<()> {
        let n = self.tables[side].flush_bucket(b)? as u64;
        self.spilled_tuples += n;
        let trace = self.harness.trace();
        if n > 0 && trace.events_enabled() {
            trace.emit(TraceEvent::SpillWrite {
                op: self.harness.op_id().unwrap_or(u32::MAX),
                tuples: n,
            });
        }
        Ok(())
    }

    /// Join one transferred tuple using its cached key prehash (NULL keys
    /// were dropped at staging). The in-memory path hashes nothing, clones
    /// no `Value`, and allocates nothing per probe: matches are borrowed
    /// from the opposite table and outputs are assembled into the pending
    /// queue's shared block.
    fn handle_tuple(&mut self, side: usize, t: Tuple, hash: u64) -> Result<()> {
        let opp = 1 - side;
        let b = self.tables[side].bucket_for_hash(hash);
        if self.tables[side].is_flushed(b) {
            // Arrivals for a flushed bucket divert to disk, marked new,
            // WITHOUT probing (paper step: "write the tuples to disk;
            // otherwise probe" — the cleanup joins new×old and new×new, so
            // probing here would double-count against the opposite side's
            // resident old partition).
            self.tables[side].spill_new(b, &t)?;
            self.spilled_tuples += 1;
            return Ok(());
        }
        // Probe the opposite table's in-memory primary partition. If the
        // opposite bucket is flushed its memory is empty, so this is
        // correct (the missed pairs are produced by the cleanup phase).
        let key = t.value(self.key_idx[side]);
        for m in self.tables[opp].probe_hashed(hash, key) {
            if side == LEFT {
                self.pending.push_concat(&t, m);
            } else {
                self.pending.push_concat(m, &t);
            }
        }
        if self.tables[opp].is_flushed(b) {
            // Opposite bucket flushed (Left Flush): keep in memory, marked,
            // so the cleanup can join it against the opposite spill without
            // writing this side to disk.
            self.tables[side].insert_marked_hashed(hash, t);
            self.check_overflow()?;
        } else if self.done[opp] {
            // Footnote 3: the opposite relation is complete and this bucket
            // fully in memory — the probe above produced every match, no
            // need to store the tuple.
        } else {
            self.tables[side].insert_hashed(hash, t);
            self.check_overflow()?;
        }
        Ok(())
    }

    /// Whether a batch arriving on `side` can take the vectorized
    /// probe-only path: the opposite input is complete, so by footnote 3
    /// nothing from `side` needs storing, and neither table has flushed a
    /// bucket, so no arrival diverts to spill and no probe needs a marked
    /// insert — every row is a pure in-memory probe with no table mutation.
    fn probe_only(&self, side: usize) -> bool {
        self.done[1 - side]
            && !self.cleanup_active
            && !self.tables[side].any_flushed()
            && !self.tables[1 - side].any_flushed()
    }

    /// Make sure the completed build side `bs` has a columnar freeze
    /// (caller guarantees the probe-only gate). Returns `false` when the
    /// table declines to freeze (marked tuples present) — the caller falls
    /// back to the tuple-at-a-time staged path.
    fn ensure_frozen(&mut self, bs: usize) -> bool {
        if self.frozen[bs].is_none() {
            self.frozen[bs] = self.tables[bs].freeze(&self.side_types[bs]);
        }
        self.frozen[bs].is_some()
    }

    /// Join one arriving columnar batch entirely by vectorized probe
    /// (caller guarantees [`Self::probe_only`] and a frozen build side):
    /// prehash the key column, resolve every probe row to match row ids in
    /// the frozen table, then assemble each output block from two typed
    /// column **gathers** — one over the arriving batch, one over the
    /// frozen build columns. No builder dispatch per value, and neither
    /// side's row views are ever materialized.
    fn probe_batch_columnar(&mut self, side: usize, batch: &TupleBatch) -> Result<()> {
        let (Some(cols), Some(frozen)) = (batch.columns(), self.frozen[1 - side].as_ref()) else {
            return Err(TukwilaError::Internal(
                "vectorized DPJ probe without columnar batch and frozen side".into(),
            ));
        };
        let kv = KeyVector::compute(batch, self.key_idx[side]);
        let key_col = cols.col(self.key_idx[side]);
        // Paired selection vectors: one entry per output row, indexing the
        // probe batch and the frozen build columns respectively. NULL keys
        // (hash None) never join.
        let mut sel_probe: Vec<u32> = Vec::new();
        let mut sel_build: Vec<u32> = Vec::new();
        for i in 0..batch.len() {
            let Some(h) = kv.get(i) else { continue };
            let key = key_col.value_at(i);
            let found = frozen.probe_hashed(h, &key);
            if !found.is_empty() {
                sel_probe.resize(sel_probe.len() + found.len(), i as u32);
                sel_build.extend_from_slice(found);
            }
        }
        if sel_probe.is_empty() {
            return Ok(());
        }
        let block = self.harness.batch_size().max(1);
        let mut start = 0usize;
        while start < sel_probe.len() {
            let end = (start + block).min(sel_probe.len());
            let probe_half = cols.gather(&sel_probe[start..end]);
            let match_half = frozen.columns().gather(&sel_build[start..end]);
            let out = if side == LEFT {
                ColumnarBatch::hstack(probe_half, match_half)
            } else {
                ColumnarBatch::hstack(match_half, probe_half)
            };
            self.pending.extend_block(TupleBatch::from_columns(out));
            start = end;
        }
        Ok(())
    }

    fn check_overflow(&mut self) -> Result<()> {
        let Some(res) = self.reservation.as_ref() else {
            return Ok(());
        };
        // `under_pressure` folds in query- and fleet-level budgets from the
        // memory governor, not just this operator's own reservation.
        if !res.under_pressure() {
            return Ok(());
        }
        let first_onset = !self.raised_oom;
        if first_onset {
            self.raised_oom = true;
            // Raise `out_of_memory`; a rule may install/adjust the overflow
            // method before we read it (processed synchronously).
            self.harness.out_of_memory();
        }
        let method = *self
            .engaged_method
            .get_or_insert_with(|| self.harness.overflow_method());
        if first_onset && self.harness.trace().events_enabled() {
            self.harness.trace().emit(TraceEvent::OverflowOnset {
                op: self.harness.op_id().unwrap_or(u32::MAX),
                method: format!("{method:?}"),
            });
        }
        match method {
            OverflowMethod::Fail => Err(TukwilaError::OutOfMemory {
                operator: format!("{}", self.harness.subject()),
                budget: res.budget(),
            }),
            OverflowMethod::IncrementalLeftFlush => self.resolve_left_flush(false),
            OverflowMethod::FlushAllLeft => self.resolve_left_flush(true),
            OverflowMethod::IncrementalSymmetricFlush => self.resolve_symmetric(),
        }
    }

    fn resolve_left_flush(&mut self, flush_all: bool) -> Result<()> {
        let Some(res) = self.reservation.clone() else {
            return Ok(());
        };
        if flush_all {
            for b in 0..self.num_buckets {
                if !self.tables[LEFT].is_flushed(b) {
                    self.flush_traced(LEFT, b)?;
                }
            }
        }
        // Pause the left input while the right drains (backpressure does
        // the actual pausing: we stop receiving from the left queue).
        // Pointless once the right side is already exhausted.
        if !self.done[LEFT] && !self.done[RIGHT] && !flush_all {
            self.mode = ReadMode::RightOnly;
        }
        while res.under_pressure() {
            if let Some(b) = self.tables[LEFT].largest_unflushed() {
                self.flush_traced(LEFT, b)?;
            } else if let Some(b) = self.tables[RIGHT].largest_unflushed() {
                // Step (4): only once A's table has been flushed completely.
                debug_assert!(self.tables[LEFT].fully_flushed());
                self.flush_traced(RIGHT, b)?;
            } else {
                break; // nothing left to free
            }
        }
        Ok(())
    }

    fn resolve_symmetric(&mut self) -> Result<()> {
        let Some(res) = self.reservation.clone() else {
            return Ok(());
        };
        while res.under_pressure() {
            // Fattest bucket by combined residency across both tables.
            let candidate = (0..self.num_buckets)
                .filter(|&b| !self.tables[LEFT].is_flushed(b) || !self.tables[RIGHT].is_flushed(b))
                .max_by_key(|&b| {
                    self.tables[LEFT].bucket_bytes(b) + self.tables[RIGHT].bucket_bytes(b)
                });
            let Some(b) = candidate else { break };
            if self.tables[LEFT].bucket_bytes(b) + self.tables[RIGHT].bucket_bytes(b) == 0 {
                break; // only empty buckets remain; flushing frees nothing
            }
            if !self.tables[LEFT].is_flushed(b) {
                self.flush_traced(LEFT, b)?;
            }
            if !self.tables[RIGHT].is_flushed(b) {
                self.flush_traced(RIGHT, b)?;
            }
        }
        Ok(())
    }

    fn receive(&mut self) -> Result<(usize, Msg)> {
        if self.mode == ReadMode::RightOnly && self.done[RIGHT] {
            self.mode = ReadMode::Both;
        }
        let want_left = !self.done[LEFT] && self.mode == ReadMode::Both;
        let want_right = !self.done[RIGHT];
        match (want_left, want_right) {
            (true, true) => {
                let (l, r) = (
                    self.rx[LEFT].as_ref().unwrap(),
                    self.rx[RIGHT].as_ref().unwrap(),
                );
                // Fast path: data already waiting — skip the select
                // machinery (two boxed closures + waker registration).
                // Alternate which side is tried first so neither input is
                // systematically favored when both are ready.
                self.recv_flip = !self.recv_flip;
                let order = if self.recv_flip {
                    [LEFT, RIGHT]
                } else {
                    [RIGHT, LEFT]
                };
                for side in order {
                    if let Ok(m) = self.rx[side].as_ref().unwrap().try_recv() {
                        return Ok((side, m));
                    }
                }
                let mut sel = Select::new();
                sel.recv(l);
                sel.recv(r);
                let op = sel.select();
                match op.index() {
                    0 => Ok((LEFT, op.recv(l).unwrap_or(Msg::End))),
                    _ => Ok((RIGHT, op.recv(r).unwrap_or(Msg::End))),
                }
            }
            (true, false) => {
                let l = self.rx[LEFT].as_ref().unwrap();
                Ok((LEFT, l.recv().unwrap_or(Msg::End)))
            }
            (false, true) => {
                let r = self.rx[RIGHT].as_ref().unwrap();
                Ok((RIGHT, r.recv().unwrap_or(Msg::End)))
            }
            (false, false) => Err(TukwilaError::Internal(
                "DPJ receive with both sides done".into(),
            )),
        }
    }

    /// Produce the deferred matches for flushed buckets, one bucket per
    /// call, into `pending`. Returns false once all buckets are processed.
    fn cleanup_step(&mut self) -> Result<bool> {
        if self.cleanup_next >= self.num_buckets {
            return Ok(false);
        }
        let b = self.cleanup_next;
        self.cleanup_next += 1;
        let lf = self.tables[LEFT].is_flushed(b);
        let rf = self.tables[RIGHT].is_flushed(b);
        if !lf && !rf {
            return Ok(true); // fully in-memory bucket: everything was online
        }
        let a_old = self.tables[LEFT].old_tuples(b)?;
        let a_new = self.tables[LEFT].new_tuples(b)?;
        let b_old = self.tables[RIGHT].old_tuples(b)?;
        let b_new = self.tables[RIGHT].new_tuples(b)?;
        let trace = self.harness.trace();
        if trace.events_enabled() {
            // Tuples materialized back from the flushed side(s) of this
            // bucket for the cleanup join.
            let read_back = (if lf { a_old.len() + a_new.len() } else { 0 }
                + if rf { b_old.len() + b_new.len() } else { 0 })
                as u64;
            if read_back > 0 {
                trace.emit(TraceEvent::SpillRead {
                    op: self.harness.op_id().unwrap_or(u32::MAX),
                    tuples: read_back,
                });
            }
        }
        let budget = self.harness.reservation().map(|r| r.budget());
        let spill = self.harness.spill();
        let mut out = Vec::new();
        // old×old was emitted online; produce the three remaining quadrants.
        join_sets(
            b_new.clone(),
            a_old,
            self.key_idx[RIGHT],
            self.key_idx[LEFT],
            budget,
            0,
            &spill,
            true,
            &mut out,
        )?;
        join_sets(
            b_old,
            a_new.clone(),
            self.key_idx[RIGHT],
            self.key_idx[LEFT],
            budget,
            0,
            &spill,
            true,
            &mut out,
        )?;
        join_sets(
            b_new,
            a_new,
            self.key_idx[RIGHT],
            self.key_idx[LEFT],
            budget,
            0,
            &spill,
            true,
            &mut out,
        )?;
        self.pending.extend_tuples(out);
        Ok(true)
    }

    fn shutdown_threads(&mut self) {
        // Disconnect queues so senders unblock, cancel any descendant
        // streams still sleeping in their link models, then join.
        self.rx = [None, None];
        for d in &self.descendants {
            let rt = self.harness.runtime();
            if rt.state(*d) == tukwila_plan::OpState::Open {
                rt.deactivate(*d);
            }
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Operator for DoublePipelinedJoin {
    fn open(&mut self) -> Result<()> {
        let (mut left, mut right) = self
            .children
            .take()
            .ok_or_else(|| TukwilaError::Internal("DPJ opened twice".into()))?;
        left.open()?;
        right.open()?;
        self.key_idx = [
            left.schema().index_of(&self.left_key)?,
            right.schema().index_of(&self.right_key)?,
        ];
        self.schema = left.schema().concat(right.schema());
        self.side_types = [
            left.schema().fields().iter().map(|f| f.data_type).collect(),
            right
                .schema()
                .fields()
                .iter()
                .map(|f| f.data_type)
                .collect(),
        ];
        self.frozen = [None, None];
        // Typed queue: join output seals directly into columnar batches, so
        // downstream operators (and the fragment collector) stay vectorized.
        self.pending = OutputQueue::typed(
            self.harness.batch_size(),
            self.schema.fields().iter().map(|f| f.data_type).collect(),
        );
        self.metrics = self.harness.metrics("dpj");
        self.spilled_tuples = 0;
        self.resolved_emitted = false;
        let reservation = self.harness.reservation();
        self.reservation = reservation.clone();
        let spill = self.harness.spill();
        self.tables = vec![
            BucketedTable::new(
                format!("dpj-{}-L", self.harness.subject()),
                self.num_buckets,
                self.key_idx[LEFT],
                reservation.clone(),
                spill.clone(),
            ),
            BucketedTable::new(
                format!("dpj-{}-R", self.harness.subject()),
                self.num_buckets,
                self.key_idx[RIGHT],
                reservation,
                spill,
            ),
        ];
        for (side, mut child) in [(LEFT, left), (RIGHT, right)] {
            let (tx, rx) = bounded::<Msg>(self.queue_cap);
            self.rx[side] = Some(rx);
            self.threads.push(std::thread::spawn(move || {
                loop {
                    match child.next_batch() {
                        Ok(Some(batch)) => {
                            if tx.send(Msg::Batch(batch)).is_err() {
                                break;
                            }
                        }
                        Ok(None) => {
                            let _ = tx.send(Msg::End);
                            break;
                        }
                        Err(e) => {
                            let _ = tx.send(Msg::Err(e));
                            break;
                        }
                    }
                }
                let _ = child.close();
            }));
        }
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let max = self.harness.batch_size();
        loop {
            if self.pending.len() >= max {
                return Ok(Some(self.emit_pending()));
            }
            // Free work first: join tuples already transferred.
            match self.staged.as_mut().map(KeyedBatch::next) {
                Some(Some((t, hash))) => {
                    if let Some(hash) = hash {
                        let side = self.staged_side;
                        self.handle_tuple(side, t, hash)?;
                    }
                    // NULL keys never join and need no storage.
                    continue;
                }
                Some(None) => {
                    self.staged = None;
                    if let (Some(m), Some(t0)) = (&self.metrics, self.staged_at.take()) {
                        m.add_probe_ns(t0.elapsed().as_nanos() as u64);
                    }
                }
                None => {}
            }
            if self.done[LEFT] && self.done[RIGHT] {
                if !self.cleanup_active {
                    self.cleanup_active = true;
                    self.cleanup_next = 0;
                }
                if self.cleanup_step()? {
                    continue; // may have filled `pending`
                }
                if self.raised_oom
                    && !self.resolved_emitted
                    && self.harness.trace().events_enabled()
                {
                    self.resolved_emitted = true;
                    self.harness.trace().emit(TraceEvent::OverflowResolved {
                        op: self.harness.op_id().unwrap_or(u32::MAX),
                        tuples_spilled: self.spilled_tuples,
                    });
                }
                if self.pending.is_empty() {
                    return Ok(None);
                }
                return Ok(Some(self.emit_pending()));
            }
            // The next step blocks in receive — never hold output for it.
            if !self.pending.is_empty() {
                return Ok(Some(self.emit_pending()));
            }
            let (side, msg) = self.receive()?;
            match msg {
                Msg::Batch(b) => {
                    if let Some(m) = &self.metrics {
                        m.add_input(b.len() as u64);
                        self.staged_at = Some(Instant::now());
                    }
                    if b.columns().is_some()
                        && self.probe_only(side)
                        && self.ensure_frozen(1 - side)
                    {
                        // Pure in-memory probe with nothing to store:
                        // vectorized column gather, no row staging.
                        self.probe_batch_columnar(side, &b)?;
                        if let (Some(m), Some(t0)) = (&self.metrics, self.staged_at.take()) {
                            m.add_probe_ns(t0.elapsed().as_nanos() as u64);
                        }
                    } else {
                        // Prehash the whole arriving batch once and drain it
                        // in place (NULL-keyed rows skipped at consumption).
                        self.staged_side = side;
                        self.staged = Some(KeyedBatch::new(b, self.key_idx[side]));
                    }
                }
                Msg::End => {
                    self.done[side] = true;
                    if side == RIGHT && self.mode == ReadMode::RightOnly {
                        // Step (5): right exhausted — resume the left input.
                        self.mode = ReadMode::Both;
                    }
                }
                Msg::Err(e) => {
                    self.harness.failed();
                    self.shutdown_threads();
                    return Err(e);
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.shutdown_threads();
        for t in &mut self.tables {
            t.clear();
        }
        self.tables.clear();
        self.pending.clear();
        self.staged = None;
        self.frozen = [None, None];
        self.harness.closed();
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "double_pipelined_join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::test_support::{keyed_relation, JoinFixture};
    use std::time::{Duration, Instant};
    use tukwila_common::Relation;
    use tukwila_plan::{Action, Condition, EventKind, EventPattern, JoinKind, Rule};
    use tukwila_source::LinkModel;

    fn dpj_for(fx: &JoinFixture) -> DoublePipelinedJoin {
        DoublePipelinedJoin::new(
            fx.left_scan(),
            fx.right_scan(),
            "k".into(),
            "k".into(),
            fx.harness(fx.join_id),
        )
        .with_buckets(8)
        .with_descendants(vec![
            SubjectRef::Op(fx.left_id),
            SubjectRef::Op(fx.right_id),
        ])
    }

    fn fixture(
        n_left: i64,
        n_right: i64,
        dup: i64,
        overflow: OverflowMethod,
        budget: Option<usize>,
    ) -> JoinFixture {
        JoinFixture::build(
            keyed_relation("l", n_left, dup),
            keyed_relation("r", n_right, dup),
            LinkModel::instant(),
            LinkModel::instant(),
            JoinKind::DoublePipelined,
            overflow,
            budget,
        )
    }

    #[test]
    fn in_memory_matches_gold() {
        let fx = fixture(200, 100, 10, OverflowMethod::IncrementalLeftFlush, None);
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), fx.gold.len());
        fx.assert_gold(out);
    }

    #[test]
    fn left_flush_overflow_matches_gold() {
        let fx = fixture(
            300,
            300,
            30,
            OverflowMethod::IncrementalLeftFlush,
            Some(4_000),
        );
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        fx.assert_gold(out);
        let stats = fx.rt.env().spill.stats();
        assert!(stats.tuples_written() > 0, "must have spilled");
        assert!(fx
            .rt
            .event_log()
            .iter()
            .any(|e| e.kind == EventKind::OutOfMemory));
    }

    #[test]
    fn symmetric_flush_overflow_matches_gold() {
        let fx = fixture(
            300,
            300,
            30,
            OverflowMethod::IncrementalSymmetricFlush,
            Some(4_000),
        );
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        fx.assert_gold(out);
        assert!(fx.rt.env().spill.stats().tuples_written() > 0);
    }

    #[test]
    fn flush_all_left_overflow_matches_gold() {
        let fx = fixture(300, 300, 30, OverflowMethod::FlushAllLeft, Some(4_000));
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        fx.assert_gold(out);
    }

    #[test]
    fn fail_method_raises_out_of_memory_error() {
        let fx = fixture(300, 300, 30, OverflowMethod::Fail, Some(1_000));
        let mut op = dpj_for(&fx);
        op.open().unwrap();
        let err = loop {
            match op.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected OOM"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "out_of_memory");
        op.close().unwrap();
    }

    #[test]
    fn rule_installs_overflow_method_on_oom_event() {
        // Plan says Fail, but a rule reacts to out_of_memory by installing
        // symmetric flush — §3.1.2 "the policy for memory overflow
        // resolution in the double pipelined join is guided by a rule".
        let mut fx = fixture(300, 300, 30, OverflowMethod::Fail, Some(4_000));
        let join = fx.join_id;
        fx.plan.global_rules.push(Rule::overflow_method(
            join,
            OverflowMethod::IncrementalSymmetricFlush,
        ));
        // rebuild runtime with the extra rule
        fx.rt = crate::runtime::PlanRuntime::for_plan(
            &fx.plan,
            crate::runtime::ExecEnv::new(fx.rt.env().sources.clone()),
        );
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        fx.assert_gold(out);
        assert!(fx.rt.env().spill.stats().tuples_written() > 0);
    }

    #[test]
    fn left_flush_does_fewer_ios_than_symmetric() {
        // §4.2.3: "incremental left-flush will perform fewer disk I/Os than
        // the symmetric strategy". The analysis assumes equal transfer
        // rates, so pace both sources identically (with instant links one
        // side can race ahead and footnote 3 changes the memory profile —
        // the full analytical reproduction lives in
        // tests/overflow_analysis.rs).
        let paced = LinkModel {
            per_tuple: Duration::from_micros(60),
            ..LinkModel::instant()
        };
        let budget = 6_000;
        let run = |method| {
            let fx = JoinFixture::build(
                keyed_relation("l", 400, 40),
                keyed_relation("r", 400, 40),
                paced.clone(),
                paced.clone(),
                JoinKind::DoublePipelined,
                method,
                Some(budget),
            );
            let mut op = dpj_for(&fx);
            let out = drain(&mut op).unwrap();
            fx.assert_gold(out);
            fx.rt.env().spill.stats().total_tuple_io()
        };
        let left = run(OverflowMethod::IncrementalLeftFlush);
        let symmetric = run(OverflowMethod::IncrementalSymmetricFlush);
        assert!(
            left as f64 <= symmetric as f64 * 1.05 + 32.0,
            "left flush ({left} IOs) should not exceed symmetric ({symmetric} IOs)"
        );
    }

    #[test]
    fn first_tuple_beats_hybrid_hash_on_slow_sources() {
        // Figure 3's headline: the DPJ produces output while data is still
        // arriving; hybrid hash waits for the whole inner relation first.
        let slow = LinkModel {
            per_tuple: Duration::from_micros(400),
            initial_delay: Duration::from_millis(5),
            ..LinkModel::instant()
        };
        let build_fx = |kind| {
            JoinFixture::build(
                keyed_relation("l", 400, 40),
                keyed_relation("r", 400, 40),
                slow.clone(),
                slow.clone(),
                kind,
                OverflowMethod::IncrementalLeftFlush,
                None,
            )
        };
        let time_to_first = |op: &mut dyn Operator| {
            let start = Instant::now();
            op.open().unwrap();
            let first = op.next_batch().unwrap();
            assert!(first.is_some());
            let elapsed = start.elapsed();
            while op.next_batch().unwrap().is_some() {}
            op.close().unwrap();
            elapsed
        };

        let fx = build_fx(JoinKind::DoublePipelined);
        let mut dpj = dpj_for(&fx);
        let dpj_first = time_to_first(&mut dpj);

        let fx2 = build_fx(JoinKind::HybridHash);
        let mut hybrid = crate::operators::HashJoinOp::hybrid(
            fx2.left_scan(),
            fx2.right_scan(),
            "k".into(),
            "k".into(),
            fx2.harness(fx2.join_id),
        );
        let hybrid_first = time_to_first(&mut hybrid);

        assert!(
            dpj_first < hybrid_first,
            "DPJ first tuple {dpj_first:?} should beat hybrid {hybrid_first:?}"
        );
    }

    #[test]
    fn child_error_propagates() {
        let fx = JoinFixture::build(
            keyed_relation("l", 50, 5),
            keyed_relation("r", 50, 5),
            LinkModel::failing(10),
            LinkModel::instant(),
            JoinKind::DoublePipelined,
            OverflowMethod::IncrementalLeftFlush,
            None,
        );
        let mut op = dpj_for(&fx);
        op.open().unwrap();
        let err = loop {
            match op.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => panic!("expected error"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), "source_unavailable");
        op.close().unwrap();
    }

    #[test]
    fn empty_inputs_produce_nothing() {
        let fx = fixture(0, 0, 1, OverflowMethod::IncrementalLeftFlush, None);
        let mut op = dpj_for(&fx);
        assert!(drain(&mut op).unwrap().is_empty());
    }

    #[test]
    fn one_empty_side() {
        let fx = fixture(100, 0, 10, OverflowMethod::IncrementalLeftFlush, None);
        let mut op = dpj_for(&fx);
        assert!(drain(&mut op).unwrap().is_empty());
    }

    #[test]
    fn skewed_single_key_overflow() {
        // Everything hashes to one bucket; overflow must still be exact.
        let fx = fixture(80, 80, 1, OverflowMethod::IncrementalLeftFlush, Some(1_500));
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 80 * 80);
        fx.assert_gold(out);
    }

    #[test]
    fn symmetric_skewed_single_key_overflow() {
        let fx = fixture(
            80,
            80,
            1,
            OverflowMethod::IncrementalSymmetricFlush,
            Some(1_500),
        );
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 80 * 80);
    }

    #[test]
    fn close_without_drain_does_not_hang() {
        let slow = LinkModel {
            per_tuple: Duration::from_millis(2),
            ..LinkModel::instant()
        };
        let fx = JoinFixture::build(
            keyed_relation("l", 10_000, 10),
            keyed_relation("r", 10_000, 10),
            slow.clone(),
            slow,
            JoinKind::DoublePipelined,
            OverflowMethod::IncrementalLeftFlush,
            None,
        );
        let mut op = dpj_for(&fx);
        op.open().unwrap();
        let _ = op.next_batch().unwrap();
        let start = Instant::now();
        op.close().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "close must cancel blocked children"
        );
    }

    #[test]
    fn threshold_rule_on_dpj_output() {
        let mut fx = fixture(100, 100, 10, OverflowMethod::IncrementalLeftFlush, None);
        let join = fx.join_id;
        // contrived rule: when the join has produced 50 tuples, alter the
        // memory allotment (observable, harmless action)
        fx.plan.global_rules.push(Rule::new(
            "bump-mem",
            SubjectRef::Op(join),
            EventPattern::with_value(EventKind::Threshold, SubjectRef::Op(join), 50),
            Condition::True,
            vec![Action::AlterMemory {
                op: join,
                bytes: 123_456,
            }],
        ));
        fx.plan.fragments[0].root.memory_budget = Some(1_000_000);
        fx.rt = crate::runtime::PlanRuntime::for_plan(
            &fx.plan,
            crate::runtime::ExecEnv::new(fx.rt.env().sources.clone()),
        );
        let mut op = dpj_for(&fx);
        let out = drain(&mut op).unwrap();
        fx.assert_gold(out);
        assert_eq!(fx.rt.memory_budget(SubjectRef::Op(join)), Some(123_456.0));
    }

    /// Check gold equality under every overflow method and several budgets
    /// — the overflow matrix.
    #[test]
    fn overflow_matrix() {
        for method in [
            OverflowMethod::IncrementalLeftFlush,
            OverflowMethod::IncrementalSymmetricFlush,
            OverflowMethod::FlushAllLeft,
        ] {
            for budget in [2_000usize, 8_000, 64_000] {
                let fx = fixture(250, 200, 25, method, Some(budget));
                let mut op = dpj_for(&fx);
                let out = drain(&mut op).unwrap();
                let got = Relation::new(fx.gold.schema().clone(), out).unwrap();
                assert!(
                    got.bag_eq(&fx.gold),
                    "mismatch for {method:?} at budget {budget}: got {}, want {}",
                    got.len(),
                    fx.gold.len()
                );
            }
        }
    }
}
