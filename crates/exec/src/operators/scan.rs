//! Table scan over the local store (materialized fragment results, cached
//! data).

use std::sync::Arc;

use tukwila_common::{Relation, Result, Schema, TukwilaError, TupleBatch};

use crate::operator::Operator;
use crate::runtime::OpHarness;

/// Scans a named table in the local store.
pub struct TableScan {
    table: String,
    harness: OpHarness,
    relation: Option<Arc<Relation>>,
    schema: Schema,
    pos: usize,
}

impl TableScan {
    /// Build a scan of `table`.
    pub fn new(table: String, harness: OpHarness) -> Self {
        TableScan {
            table,
            harness,
            relation: None,
            schema: Schema::empty(),
            pos: 0,
        }
    }
}

impl Operator for TableScan {
    fn open(&mut self) -> Result<()> {
        let rel = self.harness.runtime().env().local.get(&self.table)?;
        self.schema = rel.schema().clone();
        self.relation = Some(rel);
        self.pos = 0;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        let rel = self
            .relation
            .as_ref()
            .ok_or_else(|| TukwilaError::Internal("TableScan::next_batch before open".into()))?;
        if !self.harness.is_active() {
            return Ok(None);
        }
        if self.pos >= rel.len() {
            return Ok(None);
        }
        let end = (self.pos + self.harness.batch_size()).min(rel.len());
        // Fragment results assembled column-wise carry a cached columnar
        // form: slice it (typed buffer copies, no row views). Row-only
        // relations clone the tuple span as before.
        let batch = match rel.columnar_cached() {
            Some(cols) => TupleBatch::from_columns(cols.slice(self.pos, end)),
            None => TupleBatch::from_tuples(rel.tuples()[self.pos..end].to_vec()),
        };
        self.pos = end;
        self.harness.produced(batch.len() as u64);
        Ok(Some(batch))
    }

    fn close(&mut self) -> Result<()> {
        if self.relation.take().is_some() {
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "table_scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::runtime::{ExecEnv, PlanRuntime};
    use tukwila_common::{tuple, DataType};
    use tukwila_plan::{PlanBuilder, SubjectRef};
    use tukwila_source::SourceRegistry;

    fn setup_bs(rows: i64, batch_size: usize) -> (OpHarness, tukwila_plan::OpId) {
        let mut b = PlanBuilder::new();
        let scan = b.table_scan("t");
        let id = scan.id;
        let f = b.fragment(scan, "out");
        let plan = b.build(f);
        let env = ExecEnv::new(SourceRegistry::new()).with_batch_size(batch_size);
        let schema = Schema::of("t", &[("a", DataType::Int)]);
        let mut rel = Relation::empty(schema);
        for i in 0..rows {
            rel.push(tuple![i]);
        }
        env.local.put("t", rel);
        let rt = PlanRuntime::for_plan(&plan, env);
        (OpHarness::new(rt, SubjectRef::Op(id)), id)
    }

    fn setup(rows: i64) -> (OpHarness, tukwila_plan::OpId) {
        setup_bs(rows, tukwila_common::DEFAULT_BATCH_CAPACITY)
    }

    #[test]
    fn scans_all_rows() {
        let (h, id) = setup(5);
        let rt = h.runtime().clone();
        let mut op = TableScan::new("t".into(), h);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(rt.produced(SubjectRef::Op(id)), 5);
    }

    #[test]
    fn emits_batches_of_configured_size() {
        let (h, _) = setup_bs(25, 10);
        let mut op = TableScan::new("t".into(), h);
        let batches = crate::operator::drain_batches(&mut op).unwrap();
        let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
        assert_eq!(sizes, vec![10, 10, 5]);
    }

    #[test]
    fn missing_table_errors_at_open() {
        let (h, _) = setup(1);
        let mut op = TableScan::new("nope".into(), h);
        assert!(op.open().is_err());
    }

    #[test]
    fn deactivated_scan_stops() {
        let (h, id) = setup_bs(100, 10);
        let rt = h.runtime().clone();
        let mut op = TableScan::new("t".into(), h);
        op.open().unwrap();
        assert_eq!(op.next_batch().unwrap().map(|b| b.len()), Some(10));
        rt.deactivate(SubjectRef::Op(id));
        assert!(op.next_batch().unwrap().is_none());
    }
}
