//! Table scan over the local store (materialized fragment results, cached
//! data).

use std::sync::Arc;

use tukwila_common::{Relation, Result, Schema, Tuple, TukwilaError};

use crate::operator::Operator;
use crate::runtime::OpHarness;

/// Scans a named table in the local store.
pub struct TableScan {
    table: String,
    harness: OpHarness,
    relation: Option<Arc<Relation>>,
    schema: Schema,
    pos: usize,
}

impl TableScan {
    /// Build a scan of `table`.
    pub fn new(table: String, harness: OpHarness) -> Self {
        TableScan {
            table,
            harness,
            relation: None,
            schema: Schema::empty(),
            pos: 0,
        }
    }
}

impl Operator for TableScan {
    fn open(&mut self) -> Result<()> {
        let rel = self.harness.runtime().env().local.get(&self.table)?;
        self.schema = rel.schema().clone();
        self.relation = Some(rel);
        self.pos = 0;
        self.harness.opened();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        let rel = self
            .relation
            .as_ref()
            .ok_or_else(|| TukwilaError::Internal("TableScan::next before open".into()))?;
        if !self.harness.is_active() {
            return Ok(None);
        }
        if self.pos >= rel.len() {
            return Ok(None);
        }
        let t = rel.tuples()[self.pos].clone();
        self.pos += 1;
        self.harness.produced(1);
        Ok(Some(t))
    }

    fn close(&mut self) -> Result<()> {
        if self.relation.take().is_some() {
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "table_scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::drain;
    use crate::runtime::{ExecEnv, PlanRuntime};
    use tukwila_common::{tuple, DataType};
    use tukwila_plan::{PlanBuilder, SubjectRef};
    use tukwila_source::SourceRegistry;

    fn setup(rows: i64) -> (OpHarness, tukwila_plan::OpId) {
        let mut b = PlanBuilder::new();
        let scan = b.table_scan("t");
        let id = scan.id;
        let f = b.fragment(scan, "out");
        let plan = b.build(f);
        let env = ExecEnv::new(SourceRegistry::new());
        let schema = Schema::of("t", &[("a", DataType::Int)]);
        let mut rel = Relation::empty(schema);
        for i in 0..rows {
            rel.push(tuple![i]);
        }
        env.local.put("t", rel);
        let rt = PlanRuntime::for_plan(&plan, env);
        (OpHarness::new(rt, SubjectRef::Op(id)), id)
    }

    #[test]
    fn scans_all_rows() {
        let (h, id) = setup(5);
        let rt = h.runtime().clone();
        let mut op = TableScan::new("t".into(), h);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(rt.produced(SubjectRef::Op(id)), 5);
    }

    #[test]
    fn missing_table_errors_at_open() {
        let (h, _) = setup(1);
        let mut op = TableScan::new("nope".into(), h);
        assert!(op.open().is_err());
    }

    #[test]
    fn deactivated_scan_stops() {
        let (h, id) = setup(100);
        let rt = h.runtime().clone();
        let mut op = TableScan::new("t".into(), h);
        op.open().unwrap();
        assert!(op.next().unwrap().is_some());
        rt.deactivate(SubjectRef::Op(id));
        assert!(op.next().unwrap().is_none());
    }
}
