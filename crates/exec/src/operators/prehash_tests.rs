//! Prehashed-path equivalence: the batch-level key prehashing introduced by
//! the hot-path overhaul (one Fx hash per tuple, reused for bucket routing,
//! map lookup, and salted re-partitioning) must be a pure optimization.
//! Every join's output is compared, as a multiset, against the naive
//! nested-loop reference (`Relation::nested_join`, SQL equality semantics)
//! — including NULL keys, duplicate-heavy key distributions, and memory
//! budgets small enough to force overflow flushing and the salted
//! recursive re-partitioning inside `join_sets`.
//!
//! Composite keys have no operator surface (all in-tree joins key on one
//! column), so they are pinned at the machinery level: `PrehashMap` keyed
//! by [`JoinKey`] must group identically to a `HashMap<Vec<Value>, _>`.

use std::collections::HashMap;

use proptest::prelude::*;

use tukwila_common::{
    fx_hash, DataType, JoinKey, KeyVector, PrehashMap, Relation, Schema, Tuple, Value,
};
use tukwila_plan::{JoinKind, OperatorNode, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

use crate::build::build_operator;
use crate::operator::drain;
use crate::operators::hash_table::{bucket_of, bucket_of_hash, join_sets};
use crate::runtime::{ExecEnv, PlanRuntime};

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

/// Build a `(k, v)` relation from `(key, value)` pairs; `None` keys are
/// SQL NULL.
fn rel_of(name: &str, rows: &[(Option<i64>, i64)]) -> Relation {
    let schema = Schema::of(name, &[("k", DataType::Int), ("v", DataType::Int)]);
    let mut r = Relation::empty(schema);
    for (k, v) in rows {
        let key = match k {
            Some(k) => Value::Int(*k),
            None => Value::Null,
        };
        r.push(Tuple::new(vec![key, Value::Int(*v)]));
    }
    r
}

fn plan_of(build: impl FnOnce(&mut PlanBuilder) -> OperatorNode) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let root = build(&mut b);
    let f = b.fragment(root, "out");
    b.build(f)
}

/// Run a one-fragment plan against `L`/`R` sources and drain the root.
fn run_join(l: &Relation, r: &Relation, plan: &QueryPlan, batch_size: usize) -> Vec<Tuple> {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new("L", l.clone(), LinkModel::instant()));
    reg.register(SimulatedSource::new("R", r.clone(), LinkModel::instant()));
    let env = ExecEnv::new(reg).with_batch_size(batch_size);
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    drain(op.as_mut()).unwrap()
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    proptest::collection::vec(
        (
            prop_oneof![3 => (0i64..6).prop_map(Some), 1 => Just(None)],
            0i64..1000,
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Hybrid hash, Grace hash, and the double pipelined join (under a
    /// budget small enough to overflow — exercising flushes, marked
    /// partitions, and salted recursive re-partitioning in cleanup) all
    /// match the naive reference, NULL keys included.
    #[test]
    fn prop_joins_match_reference(
        l_rows in arb_rows(40),
        r_rows in arb_rows(40),
        budget in prop_oneof![Just(None), Just(Some(1_500usize)), Just(Some(6_000usize))],
        batch_size in prop_oneof![Just(1usize), Just(7), Just(64)],
    ) {
        let l = rel_of("l", &l_rows);
        let r = rel_of("r", &r_rows);
        let gold = multiset(l.nested_join(&r, 0, 0).tuples());

        for kind in [JoinKind::HybridHash, JoinKind::GraceHash, JoinKind::DoublePipelined] {
            let plan = plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                let mut j = match kind {
                    JoinKind::DoublePipelined => {
                        b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
                    }
                    other => b.join(other, ls, rs, "k", "k"),
                };
                if let Some(bytes) = budget {
                    j = j.with_memory(bytes);
                }
                j
            });
            let out = run_join(&l, &r, &plan, batch_size);
            let got = multiset(&out);
            prop_assert!(
                got == gold,
                "{kind:?} diverged from reference (budget {budget:?}, batch {batch_size}): got {} rows, want {}",
                got.values().sum::<usize>(),
                gold.values().sum::<usize>()
            );
        }
    }

    /// The dependent join (prehash-indexed source, prehashed driving
    /// batches) matches the naive reference, NULL bind keys included.
    #[test]
    fn prop_dependent_join_matches_reference(
        l_rows in arb_rows(30),
        r_rows in arb_rows(30),
        batch_size in prop_oneof![Just(1usize), Just(5), Just(64)],
    ) {
        let l = rel_of("l", &l_rows);
        let r = rel_of("r", &r_rows);
        let gold = multiset(l.nested_join(&r, 0, 0).tuples());
        let plan = plan_of(|b| {
            let ls = b.wrapper_scan("L");
            b.dependent_join(ls, "R", "k", "k")
        });
        let out = run_join(&l, &r, &plan, batch_size);
        prop_assert_eq!(multiset(&out), gold);
    }

    /// `join_sets` under a budget that forces salted recursive
    /// re-partitioning produces exactly the in-memory result.
    #[test]
    fn prop_join_sets_repartition_equivalence(
        build_rows in arb_rows(48),
        probe_rows in arb_rows(48),
    ) {
        use std::sync::Arc;
        use tukwila_storage::{InMemorySpillStore, SpillStore};
        let build: Vec<Tuple> = rel_of("b", &build_rows).tuples().to_vec();
        let probe: Vec<Tuple> = rel_of("p", &probe_rows).tuples().to_vec();
        let spill: Arc<dyn SpillStore> = Arc::new(InMemorySpillStore::new());
        let mut in_mem = Vec::new();
        join_sets(build.clone(), probe.clone(), 0, 0, None, 0, &spill, true, &mut in_mem).unwrap();
        let mut repartitioned = Vec::new();
        // 64-byte budget: any non-trivial build side recurses with fresh
        // salts down to MAX_DEPTH_SALT.
        join_sets(build, probe, 0, 0, Some(64), 0, &spill, true, &mut repartitioned).unwrap();
        prop_assert_eq!(multiset(&in_mem), multiset(&repartitioned));
    }

    /// Composite keys: grouping rows by a two-column [`JoinKey`] through
    /// [`PrehashMap`] (prehash + probe-by-reference) is identical to
    /// grouping by an owned `Vec<Value>` key in a std `HashMap`, with
    /// NULL-keyed rows excluded by `has_null` exactly as the reference
    /// excludes them.
    #[test]
    fn prop_prehash_map_composite_groups_match_hashmap(
        rows in proptest::collection::vec(
            (
                prop_oneof![4 => (0i64..4).prop_map(Some), 1 => Just(None)],
                prop_oneof![4 => (0i64..3).prop_map(Some), 1 => Just(None)],
                0i64..100,
            ),
            0..60,
        ),
    ) {
        let cols = [0usize, 1usize];
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(a, b, v)| {
                let f = |x: &Option<i64>| x.map(Value::Int).unwrap_or(Value::Null);
                Tuple::new(vec![f(a), f(b), Value::Int(*v)])
            })
            .collect();

        let mut reference: HashMap<Vec<Value>, Vec<i64>> = HashMap::new();
        for t in &tuples {
            if t.value(0).is_null() || t.value(1).is_null() {
                continue;
            }
            reference
                .entry(vec![t.value(0).clone(), t.value(1).clone()])
                .or_default()
                .push(t.value(2).as_int().unwrap());
        }

        let mut map: PrehashMap<JoinKey, Vec<i64>> = PrehashMap::new();
        for t in &tuples {
            let Some(hash) = KeyVector::hash_tuple_key(t, &cols) else {
                continue; // NULL component
            };
            map.entry_hashed(hash, |k| k.eq_tuple(t, &cols), || JoinKey::from_tuple(t, &cols))
                .push(t.value(2).as_int().unwrap());
        }

        prop_assert_eq!(map.len(), reference.len());
        for (_h, key, vals) in map.iter() {
            let ref_key: Vec<Value> = (0..key.width()).map(|i| key.component(i).clone()).collect();
            prop_assert_eq!(reference.get(&ref_key), Some(vals));
            // owned-key hash must match the borrowed-probe hash used above
            prop_assert!(!key.has_null());
        }
    }

    /// The cached-prehash bucket routing equals hashing the value directly,
    /// for every salt.
    #[test]
    fn prop_bucket_of_hash_consistent(v in -1000i64..1000, salt in 0u64..8, n in 1usize..64) {
        let value = Value::Int(v);
        prop_assert_eq!(
            bucket_of(&value, n, salt),
            bucket_of_hash(fx_hash(&value), n, salt)
        );
    }
}

/// Fixed-scenario regression: all four joins over a dataset with NULL keys
/// on both sides and heavy duplication, at batch sizes 1 and 64.
#[test]
fn four_joins_with_null_keys_match_reference() {
    let rows_l: Vec<(Option<i64>, i64)> = (0..30)
        .map(|i| (if i % 5 == 0 { None } else { Some(i % 3) }, i))
        .collect();
    let rows_r: Vec<(Option<i64>, i64)> = (0..20)
        .map(|i| (if i % 4 == 0 { None } else { Some(i % 3) }, 100 + i))
        .collect();
    let l = rel_of("l", &rows_l);
    let r = rel_of("r", &rows_r);
    let gold = multiset(l.nested_join(&r, 0, 0).tuples());

    let plans: Vec<(&str, QueryPlan)> = vec![
        (
            "hybrid",
            plan_of(|b| {
                let (ls, rs) = (b.wrapper_scan("L"), b.wrapper_scan("R"));
                b.join(JoinKind::HybridHash, ls, rs, "k", "k")
            }),
        ),
        (
            "grace",
            plan_of(|b| {
                let (ls, rs) = (b.wrapper_scan("L"), b.wrapper_scan("R"));
                b.join(JoinKind::GraceHash, ls, rs, "k", "k")
            }),
        ),
        (
            "dpj",
            plan_of(|b| {
                let (ls, rs) = (b.wrapper_scan("L"), b.wrapper_scan("R"));
                b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalLeftFlush)
            }),
        ),
        (
            "dependent",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                b.dependent_join(ls, "R", "k", "k")
            }),
        ),
    ];
    for (name, plan) in &plans {
        for bs in [1usize, 64] {
            let out = run_join(&l, &r, plan, bs);
            assert_eq!(
                multiset(&out),
                gold,
                "{name} at batch {bs} diverged from reference"
            );
        }
    }
}
