//! Columnar ≡ row-major pipeline equivalence: the columnar batch layout and
//! its vectorized kernels (typed prehash, selection bitmaps, gather-based
//! routing, column-sharing projection) must be pure optimizations.
//!
//! Wrapper sources deliver **columnar** batches (the registry forces the
//! relation's columnar form at setup), while table scans over freshly
//! pushed local relations deliver **row-major** batches — so running the
//! same join once over each source kind drives the two representations
//! through the full operator pipeline. Both runs are compared, as
//! multisets, against each other and against the naive nested-loop
//! reference (`Relation::nested_join`), across all four join kinds, batch
//! sizes {1, 7, 64, 1024}, and memory budgets small enough to force
//! overflow resolution — mixed Int/Str/Double/Date payload columns with
//! NULLs exercise every column kind's slice/gather/materialize path.

use std::collections::HashMap;

use proptest::prelude::*;

use tukwila_common::{DataType, Relation, Schema, Tuple, Value};
use tukwila_plan::{JoinKind, OperatorNode, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

use crate::build::build_operator;
use crate::operator::drain;
use crate::runtime::{ExecEnv, PlanRuntime};

type Row = (Option<i64>, i64, Option<String>, Option<f64>, Option<i32>);

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

/// Build a mixed-type relation: Int key plus Int/Str/Double/Date payload
/// columns, each nullable.
fn rel_of(name: &str, rows: &[Row]) -> Relation {
    let schema = Schema::of(
        name,
        &[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("s", DataType::Str),
            ("d", DataType::Double),
            ("t", DataType::Date),
        ],
    );
    let mut r = Relation::empty(schema);
    for (k, v, s, d, t) in rows {
        r.push(Tuple::new(vec![
            k.map_or(Value::Null, Value::Int),
            Value::Int(*v),
            s.as_deref().map_or(Value::Null, Value::str),
            d.map_or(Value::Null, Value::Double),
            t.map_or(Value::Null, Value::Date),
        ]));
    }
    r
}

fn plan_of(build: impl FnOnce(&mut PlanBuilder) -> OperatorNode) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let root = build(&mut b);
    let f = b.fragment(root, "out");
    b.build(f)
}

/// Environment with `L`/`R` as both wrapper sources (columnar delivery)
/// and local tables (row-major delivery).
fn env_of(l: &Relation, r: &Relation, batch_size: usize) -> ExecEnv {
    let reg = SourceRegistry::new();
    reg.register(SimulatedSource::new("L", l.clone(), LinkModel::instant()));
    reg.register(SimulatedSource::new("R", r.clone(), LinkModel::instant()));
    let env = ExecEnv::new(reg).with_batch_size(batch_size);
    env.local.put("L", l.clone());
    env.local.put("R", r.clone());
    env
}

fn run_plan(env: ExecEnv, plan: &QueryPlan) -> Vec<Tuple> {
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    drain(op.as_mut()).unwrap()
}

/// One join plan per source kind: `columnar` scans the wrapper sources,
/// otherwise the local tables (whose freshly pushed relations have no
/// cached columnar form, so scans emit row batches).
fn join_plan(kind: JoinKind, budget: Option<usize>, columnar: bool) -> QueryPlan {
    plan_of(|b| {
        let (ls, rs) = if columnar {
            (b.wrapper_scan("L"), b.wrapper_scan("R"))
        } else {
            (b.table_scan("L"), b.table_scan("R"))
        };
        let mut j = match kind {
            JoinKind::DoublePipelined => {
                b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalSymmetricFlush)
            }
            other => b.join(other, ls, rs, "k", "k"),
        };
        if let Some(bytes) = budget {
            j = j.with_memory(bytes);
        }
        j
    })
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            prop_oneof![3 => (0i64..6).prop_map(Some), 1 => Just(None)],
            0i64..1000,
            prop_oneof![2 => "\\PC{0,8}".prop_map(Some), 1 => Just(None)],
            prop_oneof![2 => (0i64..100).prop_map(|x| Some(x as f64 / 4.0)), 1 => Just(None)],
            prop_oneof![2 => (-500i32..500).prop_map(Some), 1 => Just(None)],
        ),
        0..max,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Hybrid hash, Grace hash, and the double pipelined join produce the
    /// same multiset whether their inputs arrive as columnar or row-major
    /// batches, and both match the nested-loop reference — across batch
    /// sizes 1/7/64/1024 and budgets forcing overflow flushes.
    #[test]
    fn prop_columnar_joins_match_row_major(
        l_rows in arb_rows(40),
        r_rows in arb_rows(40),
        budget in prop_oneof![Just(None), Just(Some(1_500usize)), Just(Some(6_000usize))],
        batch_size in prop_oneof![Just(1usize), Just(7), Just(64), Just(1024)],
    ) {
        let l = rel_of("l", &l_rows);
        let r = rel_of("r", &r_rows);
        let gold = multiset(l.nested_join(&r, 0, 0).tuples());

        for kind in [JoinKind::HybridHash, JoinKind::GraceHash, JoinKind::DoublePipelined] {
            let cols = multiset(&run_plan(
                env_of(&l, &r, batch_size),
                &join_plan(kind, budget, true),
            ));
            let rows = multiset(&run_plan(
                env_of(&l, &r, batch_size),
                &join_plan(kind, budget, false),
            ));
            prop_assert!(
                cols == gold,
                "{kind:?} columnar diverged from reference (budget {budget:?}, batch {batch_size}): got {} rows, want {}",
                cols.values().sum::<usize>(),
                gold.values().sum::<usize>()
            );
            prop_assert!(
                rows == gold,
                "{kind:?} row-major diverged from reference (budget {budget:?}, batch {batch_size})"
            );
        }
    }

    /// The dependent join's driving side behaves identically columnar
    /// (wrapper scan) and row-major (table scan); the probe index is built
    /// from the source's columnar batches in both runs.
    #[test]
    fn prop_columnar_dependent_join_matches_row_major(
        l_rows in arb_rows(30),
        r_rows in arb_rows(30),
        batch_size in prop_oneof![Just(1usize), Just(7), Just(64), Just(1024)],
    ) {
        let l = rel_of("l", &l_rows);
        let r = rel_of("r", &r_rows);
        let gold = multiset(l.nested_join(&r, 0, 0).tuples());
        let dep_plan = |columnar: bool| {
            plan_of(|b| {
                let ls = if columnar {
                    b.wrapper_scan("L")
                } else {
                    b.table_scan("L")
                };
                b.dependent_join(ls, "R", "k", "k")
            })
        };
        let cols = multiset(&run_plan(env_of(&l, &r, batch_size), &dep_plan(true)));
        let rows = multiset(&run_plan(env_of(&l, &r, batch_size), &dep_plan(false)));
        prop_assert_eq!(&cols, &gold);
        prop_assert_eq!(&rows, &gold);
    }
}

/// Fixed regression: a filter + projection stack over a columnar source
/// equals the same plan over a row-major table at every batch size —
/// pinning the vectorized predicate (selection bitmap + gather) and the
/// column-sharing projection against their row-path equivalents.
#[test]
fn filter_project_columnar_matches_row_major() {
    use tukwila_plan::{CmpOp, Predicate};
    let rows: Vec<Row> = (0..200)
        .map(|i| {
            (
                if i % 7 == 0 { None } else { Some(i % 5) },
                i,
                if i % 3 == 0 {
                    None
                } else {
                    Some(format!("s{}", i % 11))
                },
                if i % 4 == 0 {
                    None
                } else {
                    Some(i as f64 / 3.0)
                },
                Some(i as i32 - 100),
            )
        })
        .collect();
    let l = rel_of("l", &rows);
    let plan = |columnar: bool| {
        plan_of(|b| {
            let scan = if columnar {
                b.wrapper_scan("L")
            } else {
                b.table_scan("L")
            };
            let f = b.select(
                scan,
                Predicate::and(vec![
                    Predicate::ColLit {
                        col: "k".into(),
                        op: CmpOp::Gt,
                        value: Value::Int(0),
                    },
                    Predicate::ColLit {
                        col: "v".into(),
                        op: CmpOp::Lt,
                        value: Value::Int(150),
                    },
                ]),
            );
            b.project(f, &["v", "s", "d"])
        })
    };
    for bs in [1usize, 7, 64, 1024] {
        let cols = run_plan(env_of(&l, &l, bs), &plan(true));
        let rows_out = run_plan(env_of(&l, &l, bs), &plan(false));
        assert_eq!(
            multiset(&cols),
            multiset(&rows_out),
            "filter+project diverged at batch {bs}"
        );
        assert!(!cols.is_empty());
    }
}
