//! Tests for the standard relational operators (selection, projection,
//! union, nested loops, sort-merge, dependent join) — each against gold
//! semantics and the lifecycle/statistics contract.

use crate::build::build_operator;
use crate::operator::drain;
use crate::runtime::{ExecEnv, PlanRuntime};
use crate::test_support::keyed_relation;

use std::sync::Arc;

use tukwila_common::{tuple, DataType, Relation, Schema, Tuple, Value};
use tukwila_plan::{CmpOp, JoinKind, OperatorNode, PlanBuilder, Predicate, QueryPlan, SubjectRef};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

/// Build a one-fragment plan from a closure, returning plan + runtime.
fn plan_runtime(
    registry: SourceRegistry,
    build: impl FnOnce(&mut PlanBuilder) -> OperatorNode,
) -> (QueryPlan, Arc<PlanRuntime>) {
    let mut b = PlanBuilder::new();
    let root = build(&mut b);
    let f = b.fragment(root, "out");
    let plan = b.build(f);
    let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(registry));
    (plan, rt)
}

fn run_root(plan: &QueryPlan, rt: &Arc<PlanRuntime>) -> Vec<Tuple> {
    let mut op = build_operator(&plan.fragments[0].root, rt).unwrap();
    drain(op.as_mut()).unwrap()
}

fn registry_with(entries: &[(&str, Relation)]) -> SourceRegistry {
    let reg = SourceRegistry::new();
    for (name, rel) in entries {
        reg.register(SimulatedSource::new(
            *name,
            rel.clone(),
            LinkModel::instant(),
        ));
    }
    reg
}

#[test]
fn filter_keeps_matching_rows_only() {
    let reg = registry_with(&[("S", keyed_relation("s", 100, 10))]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let s = b.wrapper_scan("S");
        b.select(
            s,
            Predicate::ColLit {
                col: "k".into(),
                op: CmpOp::Lt,
                value: Value::Int(3),
            },
        )
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), 30); // keys 0,1,2 × 10 occurrences
    assert!(out.iter().all(|t| t.value(0).as_int().unwrap() < 3));
}

#[test]
fn filter_with_always_false_predicate_is_empty() {
    let reg = registry_with(&[("S", keyed_relation("s", 50, 5))]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let s = b.wrapper_scan("S");
        b.select(s, Predicate::eq_lit("k", 999i64))
    });
    assert!(run_root(&plan, &rt).is_empty());
}

#[test]
fn project_reorders_and_narrows() {
    let reg = registry_with(&[("S", keyed_relation("s", 10, 10))]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let s = b.wrapper_scan("S");
        b.project(s, &["v", "k"])
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), 10);
    assert_eq!(out[0].arity(), 2);
    // v column (original index 1) now first
    for t in &out {
        assert_eq!(t.value(1), &Value::Int(t.value(0).as_int().unwrap() % 10));
    }
}

#[test]
fn project_unknown_column_fails_open() {
    let reg = registry_with(&[("S", keyed_relation("s", 5, 5))]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let s = b.wrapper_scan("S");
        b.project(s, &["nope"])
    });
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    assert_eq!(op.open().unwrap_err().kind(), "schema");
}

#[test]
fn union_concatenates_in_order() {
    let reg = registry_with(&[
        ("A", keyed_relation("a", 4, 4)),
        ("B", keyed_relation("b", 3, 3)),
    ]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let a = b.wrapper_scan("A");
        let bb = b.wrapper_scan("B");
        b.union(vec![a, bb])
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), 7);
}

#[test]
fn union_arity_mismatch_rejected() {
    let wide = Relation::new(Schema::of("w", &[("a", DataType::Int)]), vec![tuple![1]]).unwrap();
    let reg = registry_with(&[("A", keyed_relation("a", 2, 2)), ("W", wide)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let a = b.wrapper_scan("A");
        let w = b.wrapper_scan("W");
        b.union(vec![a, w])
    });
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    assert_eq!(op.open().unwrap_err().kind(), "schema");
}

#[test]
fn nested_loops_matches_gold() {
    let l = keyed_relation("l", 60, 6);
    let r = keyed_relation("r", 30, 6);
    let gold = l.nested_join(&r, 0, 0);
    let reg = registry_with(&[("L", l), ("R", r)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        b.join(JoinKind::NestedLoops, ls, rs, "k", "k")
    });
    let out = run_root(&plan, &rt);
    let got = Relation::new(gold.schema().clone(), out).unwrap();
    assert!(got.bag_eq(&gold));
}

#[test]
fn sort_merge_matches_gold_with_duplicates() {
    let l = keyed_relation("l", 50, 5); // 10 copies per key
    let r = keyed_relation("r", 25, 5);
    let gold = l.nested_join(&r, 0, 0);
    let reg = registry_with(&[("L", l), ("R", r)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        b.join(JoinKind::SortMerge, ls, rs, "k", "k")
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), gold.len());
    let got = Relation::new(gold.schema().clone(), out).unwrap();
    assert!(got.bag_eq(&gold));
}

#[test]
fn sort_merge_skips_null_keys() {
    let schema = Schema::of("n", &[("k", DataType::Int)]);
    let mut rel = Relation::empty(schema);
    rel.push(Tuple::new(vec![Value::Null]));
    rel.push(tuple![1]);
    let reg = registry_with(&[("L", rel.clone()), ("R", rel)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        b.join(JoinKind::SortMerge, ls, rs, "k", "k")
    });
    assert_eq!(run_root(&plan, &rt).len(), 1);
}

#[test]
fn grace_join_via_builder_matches_gold() {
    let l = keyed_relation("l", 80, 8);
    let r = keyed_relation("r", 40, 8);
    let gold = l.nested_join(&r, 0, 0);
    let reg = registry_with(&[("L", l), ("R", r)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        b.join(JoinKind::GraceHash, ls, rs, "k", "k")
    });
    let out = run_root(&plan, &rt);
    let got = Relation::new(gold.schema().clone(), out).unwrap();
    assert!(got.bag_eq(&gold));
    // grace partitions the build side to disk up front
    assert!(rt.env().spill.stats().tuples_written() > 0);
}

#[test]
fn dependent_join_probes_bound_source() {
    let left = keyed_relation("l", 20, 10);
    let probe = keyed_relation("p", 10, 10); // one row per key 0..10
    let gold = left.nested_join(&probe, 0, 0);
    let reg = registry_with(&[("L", left), ("P", probe)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        b.dependent_join(ls, "P", "k", "k")
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), gold.len());
    let got = Relation::new(gold.schema().clone(), out).unwrap();
    assert!(got.bag_eq(&gold));
}

#[test]
fn dependent_join_against_dead_source_fails() {
    let reg = registry_with(&[("L", keyed_relation("l", 5, 5))]);
    reg.register(SimulatedSource::new(
        "DEAD",
        keyed_relation("d", 5, 5),
        LinkModel::down(),
    ));
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        b.dependent_join(ls, "DEAD", "k", "k")
    });
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    assert_eq!(op.open().unwrap_err().kind(), "source_unavailable");
}

#[test]
fn operator_stats_track_produced_counts() {
    let reg = registry_with(&[("S", keyed_relation("s", 25, 5))]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let s = b.wrapper_scan("S");
        b.select(s, Predicate::eq_lit("k", 2i64))
    });
    let out = run_root(&plan, &rt);
    assert_eq!(out.len(), 5);
    // scan produced 25, filter produced 5
    assert_eq!(rt.produced(SubjectRef::Op(tukwila_plan::OpId(0))), 25);
    assert_eq!(rt.produced(SubjectRef::Op(tukwila_plan::OpId(1))), 5);
}

#[test]
fn deep_composed_pipeline() {
    // filter(project(join(scan, scan))) — exercise operator composition
    let l = keyed_relation("l", 100, 10);
    let r = keyed_relation("r", 50, 10);
    let reg = registry_with(&[("L", l), ("R", r)]);
    let (plan, rt) = plan_runtime(reg, |b| {
        let ls = b.wrapper_scan("L");
        let rs = b.wrapper_scan("R");
        let j = b.join(JoinKind::DoublePipelined, ls, rs, "k", "k");
        let p = b.project(j, &["l.k", "l.v", "r.v"]);
        b.select(
            p,
            Predicate::ColLit {
                col: "l.k".into(),
                op: CmpOp::Ge,
                value: Value::Int(5),
            },
        )
    });
    let out = run_root(&plan, &rt);
    assert!(!out.is_empty());
    assert!(out.iter().all(|t| t.arity() == 3));
    assert!(out.iter().all(|t| t.value(0).as_int().unwrap() >= 5));
}
