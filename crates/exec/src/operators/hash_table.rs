//! Bucketed hash tables with lazy spilling and tuple marking.
//!
//! Shared machinery for the hybrid/Grace hash joins (§4.2.1) and the double
//! pipelined join's overflow strategies (§4.2.3). A table is split into a
//! fixed number of hash buckets; buckets can be **flushed** to the spill
//! store, after which arrivals for that bucket are diverted to disk.
//!
//! Marking (the paper's duplicate-avoidance device): tuples that were in
//! memory when their bucket flushed are *old* (they have already joined
//! with every opposite-side tuple that arrived before the flush); tuples
//! arriving after the flush are *new* (marked). The overflow cleanup joins
//! old×new, new×old, and new×new — never old×old, which was emitted online.

use std::sync::Arc;

use tukwila_common::{
    fold_hash, fx_hash, ColumnBuilder, ColumnarBatch, DataType, PrehashMap, Result, Tuple, Value,
};
use tukwila_storage::{MemoryReservation, SpillBucket, SpillStore};

/// Hash a key value into one of `n` buckets, with a recursion `salt` so
/// overflow sub-partitioning (recursive hashing) redistributes. Computes
/// the Fx prehash; hot paths that already hold a prehash use
/// [`bucket_of_hash`] instead and never rehash the value.
pub fn bucket_of(v: &Value, n: usize, salt: u64) -> usize {
    bucket_of_hash(fx_hash(v), n, salt)
}

/// Bucket routing from a cached prehash: `mix(prehash, salt) % n`. The
/// same prehash serves bucket selection, the per-bucket map, and salted
/// re-partitioning — the key is hashed exactly once per tuple.
#[inline]
pub fn bucket_of_hash(hash: u64, n: usize, salt: u64) -> usize {
    fold_hash(hash, n, salt)
}

/// One side's bucketed hash table. Key groups live in [`PrehashMap`]s
/// addressed by the caller's cached prehash, so neither insert nor probe
/// ever rehashes (the seed hashed once for bucket routing and again inside
/// a per-bucket SipHash `HashMap`), and probes borrow — the in-memory
/// probe path performs no allocation and no `Value` clone.
pub struct BucketedTable {
    label: String,
    num_buckets: usize,
    key_idx: usize,
    /// Primary ("old") in-memory partitions: key → tuples.
    mem: Vec<PrehashMap<Value, Vec<Tuple>>>,
    /// Marked ("new") in-memory partitions — used by Incremental Left
    /// Flush, where the unflushed side keeps post-flush arrivals in memory.
    mem_marked: Vec<PrehashMap<Value, Vec<Tuple>>>,
    mem_bytes: Vec<usize>,
    flushed: Vec<bool>,
    old_spill: Vec<Option<SpillBucket>>,
    new_spill: Vec<Option<SpillBucket>>,
    reservation: Option<MemoryReservation>,
    spill: Arc<dyn SpillStore>,
    tuples_total: usize,
}

impl BucketedTable {
    /// Create an empty table of `num_buckets` partitions keyed on column
    /// `key_idx`. Memory charges go to `reservation` (shared with the
    /// owning join).
    pub fn new(
        label: impl Into<String>,
        num_buckets: usize,
        key_idx: usize,
        reservation: Option<MemoryReservation>,
        spill: Arc<dyn SpillStore>,
    ) -> Self {
        let n = num_buckets.max(1);
        BucketedTable {
            label: label.into(),
            num_buckets: n,
            key_idx,
            mem: (0..n).map(|_| PrehashMap::new()).collect(),
            mem_marked: (0..n).map(|_| PrehashMap::new()).collect(),
            mem_bytes: vec![0; n],
            flushed: vec![false; n],
            old_spill: vec![None; n],
            new_spill: vec![None; n],
            reservation,
            spill,
            tuples_total: 0,
        }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.num_buckets
    }

    /// Column index of the join key.
    pub fn key_idx(&self) -> usize {
        self.key_idx
    }

    /// Bucket index for a key (computes the prehash; prefer
    /// [`BucketedTable::bucket_for_hash`] when one is cached).
    pub fn bucket_for(&self, key: &Value) -> usize {
        bucket_of(key, self.num_buckets, 0)
    }

    /// Bucket index from a cached prehash.
    #[inline]
    pub fn bucket_for_hash(&self, hash: u64) -> usize {
        bucket_of_hash(hash, self.num_buckets, 0)
    }

    /// Whether a bucket has been flushed.
    pub fn is_flushed(&self, b: usize) -> bool {
        self.flushed[b]
    }

    /// Whether every bucket is flushed.
    pub fn fully_flushed(&self) -> bool {
        self.flushed.iter().all(|&f| f)
    }

    /// Whether any bucket is flushed (overflow has engaged; arrivals may
    /// need spill diversion, so batch fast paths must stand down).
    pub fn any_flushed(&self) -> bool {
        self.flushed.iter().any(|&f| f)
    }

    /// Total tuples ever inserted (memory + disk).
    pub fn total_tuples(&self) -> usize {
        self.tuples_total
    }

    /// Bytes currently held in memory by bucket `b`.
    pub fn bucket_bytes(&self, b: usize) -> usize {
        self.mem_bytes[b]
    }

    /// Total bytes currently held in memory.
    pub fn mem_bytes_total(&self) -> usize {
        self.mem_bytes.iter().sum()
    }

    fn charge(&mut self, bytes: usize) {
        if let Some(r) = &self.reservation {
            r.charge(bytes);
        }
    }

    fn release(&mut self, bytes: usize) {
        if let Some(r) = &self.reservation {
            r.release(bytes);
        }
    }

    /// Insert into the primary (old) in-memory partition of the tuple's
    /// bucket, hashing the key column (convenience / test path).
    pub fn insert(&mut self, tuple: Tuple) {
        let hash = fx_hash(tuple.value(self.key_idx));
        self.insert_hashed(hash, tuple);
    }

    /// Prehashed insert into the primary (old) partition. The key `Value`
    /// is cloned only when the key is new to its group map — duplicate-key
    /// inserts clone nothing. Caller must ensure the bucket is not flushed
    /// and the key is non-NULL.
    ///
    /// Block-view tuples (assembled join output, or rows materialized from
    /// a columnar batch) are stored as-is: views charge their slice size
    /// (`mem_size`), so the reservation books stay balanced across flush,
    /// and skipping the defensive copy keeps the insert loop allocation-free.
    pub fn insert_hashed(&mut self, hash: u64, tuple: Tuple) {
        let b = self.bucket_for_hash(hash);
        debug_assert!(!self.flushed[b], "insert into flushed bucket");
        let bytes = tuple.mem_size();
        let key = tuple.value(self.key_idx);
        self.mem[b]
            .entry_hashed(hash, |k| k == key, || key.clone())
            .push(tuple);
        self.mem_bytes[b] += bytes;
        self.charge(bytes);
        self.tuples_total += 1;
    }

    /// Insert into the marked (new) in-memory partition, hashing the key
    /// column (convenience / test path).
    pub fn insert_marked(&mut self, tuple: Tuple) {
        let hash = fx_hash(tuple.value(self.key_idx));
        self.insert_marked_hashed(hash, tuple);
    }

    /// Prehashed insert into the marked (new) partition (Left Flush keeps
    /// the unflushed side's post-flush arrivals in memory, marked).
    /// Stores block views as-is like [`BucketedTable::insert_hashed`].
    pub fn insert_marked_hashed(&mut self, hash: u64, tuple: Tuple) {
        let b = self.bucket_for_hash(hash);
        let bytes = tuple.mem_size();
        let key = tuple.value(self.key_idx);
        self.mem_marked[b]
            .entry_hashed(hash, |k| k == key, || key.clone())
            .push(tuple);
        self.mem_bytes[b] += bytes;
        self.charge(bytes);
        self.tuples_total += 1;
    }

    /// Divert a tuple arriving at a flushed bucket straight to disk,
    /// marked new.
    pub fn spill_new(&mut self, b: usize, tuple: &Tuple) -> Result<()> {
        if self.new_spill[b].is_none() {
            self.new_spill[b] = Some(self.spill.create_bucket(&format!("{}-new-{b}", self.label)));
        }
        self.spill
            .write(self.new_spill[b].unwrap(), std::slice::from_ref(tuple))?;
        self.tuples_total += 1;
        Ok(())
    }

    /// Probe the primary in-memory partition, hashing the key (convenience
    /// / test path).
    pub fn probe(&self, key: &Value) -> &[Tuple] {
        self.probe_hashed(fx_hash(key), key)
    }

    /// Prehashed probe of the primary partition: borrows matches (empty
    /// slice if none or bucket flushed). Allocation-free, clone-free.
    #[inline]
    pub fn probe_hashed(&self, hash: u64, key: &Value) -> &[Tuple] {
        let b = self.bucket_for_hash(hash);
        self.mem[b]
            .get_hashed(hash, |k| k == key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Probe both primary and marked in-memory partitions.
    pub fn probe_all_mem<'a>(&'a self, key: &'a Value) -> impl Iterator<Item = &'a Tuple> + 'a {
        let hash = fx_hash(key);
        let b = self.bucket_for_hash(hash);
        self.mem[b]
            .get_hashed(hash, |k| k == key)
            .into_iter()
            .flatten()
            .chain(
                self.mem_marked[b]
                    .get_hashed(hash, |k| k == key)
                    .into_iter()
                    .flatten(),
            )
    }

    /// Flush bucket `b`: write primary tuples to the old-spill file and
    /// marked tuples to the new-spill file, clear memory, release charges.
    /// Returns the number of tuples written.
    pub fn flush_bucket(&mut self, b: usize) -> Result<usize> {
        let mut written = 0;
        let primary: Vec<Tuple> = self.mem[b].drain().flat_map(|(_k, v)| v).collect();
        if !primary.is_empty() {
            if self.old_spill[b].is_none() {
                self.old_spill[b] =
                    Some(self.spill.create_bucket(&format!("{}-old-{b}", self.label)));
            }
            self.spill.write(self.old_spill[b].unwrap(), &primary)?;
            written += primary.len();
        }
        let marked: Vec<Tuple> = self.mem_marked[b].drain().flat_map(|(_k, v)| v).collect();
        if !marked.is_empty() {
            if self.new_spill[b].is_none() {
                self.new_spill[b] =
                    Some(self.spill.create_bucket(&format!("{}-new-{b}", self.label)));
            }
            self.spill.write(self.new_spill[b].unwrap(), &marked)?;
            written += marked.len();
        }
        let bytes = self.mem_bytes[b];
        self.mem_bytes[b] = 0;
        self.release(bytes);
        self.flushed[b] = true;
        self.spill.stats().record_flush_event();
        Ok(written)
    }

    /// The unflushed bucket currently holding the most memory, if any.
    pub fn largest_unflushed(&self) -> Option<usize> {
        (0..self.num_buckets)
            .filter(|&b| !self.flushed[b])
            .max_by_key(|&b| (self.mem_bytes[b], usize::MAX - b))
            .filter(|&b| self.mem_bytes[b] > 0 || !self.flushed[b])
    }

    /// All "old" tuples of bucket `b`: spilled old file (disk read,
    /// counted) plus primary in-memory content.
    pub fn old_tuples(&self, b: usize) -> Result<Vec<Tuple>> {
        let mut out = match self.old_spill[b] {
            Some(sb) => self.spill.read_all(sb)?,
            None => Vec::new(),
        };
        out.extend(self.mem[b].values().flatten().cloned());
        Ok(out)
    }

    /// All "new" (marked) tuples of bucket `b`: spilled new file plus
    /// marked in-memory content.
    pub fn new_tuples(&self, b: usize) -> Result<Vec<Tuple>> {
        let mut out = match self.new_spill[b] {
            Some(sb) => self.spill.read_all(sb)?,
            None => Vec::new(),
        };
        out.extend(self.mem_marked[b].values().flatten().cloned());
        Ok(out)
    }

    /// Freeze this (completed, fully in-memory) side into columnar form:
    /// every primary tuple laid out once in a typed [`ColumnarBatch`], plus
    /// a prehash index from join key to row ids. Probe-only consumers then
    /// assemble the match half of each output block with typed column
    /// gathers instead of one builder dispatch per value per row.
    ///
    /// Returns `None` if any bucket has flushed or marked tuples exist —
    /// the frozen view would miss spilled/marked rows, so overflow paths
    /// must stay on the tuple-at-a-time probe.
    ///
    /// The columnar copy is a read-optimized duplicate and is deliberately
    /// **not** charged to the reservation: charging it could trip overflow
    /// onset (changing join behavior) purely because a fast path engaged,
    /// and any overflow that does engage invalidates the freeze anyway.
    pub fn freeze(&self, types: &[DataType]) -> Option<FrozenSide> {
        if self.any_flushed() {
            return None;
        }
        let mut builders: Vec<ColumnBuilder> = types
            .iter()
            .map(|&dt| ColumnBuilder::for_type(dt))
            .collect();
        let mut index: PrehashMap<Value, Vec<u32>> = PrehashMap::new();
        let mut row = 0u32;
        for b in 0..self.num_buckets {
            if !self.mem_marked[b].is_empty() {
                return None;
            }
            for (&hash, key, tuples) in self.mem[b].iter() {
                let ids = index.entry_hashed(hash, |k| k == key, || key.clone());
                for t in tuples {
                    for (bd, v) in builders.iter_mut().zip(t.values()) {
                        bd.push(v);
                    }
                    ids.push(row);
                    row += 1;
                }
            }
        }
        Some(FrozenSide {
            cols: ColumnarBatch::new(
                row as usize,
                builders.into_iter().map(ColumnBuilder::finish).collect(),
            ),
            index,
        })
    }

    /// Drop all in-memory state, releasing charges (join close).
    pub fn clear(&mut self) {
        let total: usize = self.mem_bytes.iter().sum();
        for b in 0..self.num_buckets {
            self.mem[b].clear();
            self.mem_marked[b].clear();
            self.mem_bytes[b] = 0;
        }
        self.release(total);
    }
}

/// A completed hash-table side in columnar form (see
/// [`BucketedTable::freeze`]): one typed column set over all stored tuples
/// and a prehash index from key to row ids, so probes resolve to gather
/// selection vectors.
pub struct FrozenSide {
    cols: ColumnarBatch,
    index: PrehashMap<Value, Vec<u32>>,
}

impl FrozenSide {
    /// Row ids matching `key` (empty if none). Allocation-free borrow.
    #[inline]
    pub fn probe_hashed(&self, hash: u64, key: &Value) -> &[u32] {
        self.index
            .get_hashed(hash, |k| k == key)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The frozen columns (gather source for the match half).
    pub fn columns(&self) -> &ColumnarBatch {
        &self.cols
    }
}

/// Join two tuple sets on key columns, appending `probe ⋈ build` (probe
/// tuple first when `probe_first`) to `out`. If the build side exceeds
/// `budget`, recursively partitions both sides through the spill store
/// (recursive hashing, §4.2.1) — those writes/reads are counted I/O.
#[allow(clippy::too_many_arguments)]
pub fn join_sets(
    build: Vec<Tuple>,
    probe: Vec<Tuple>,
    build_key: usize,
    probe_key: usize,
    budget: Option<usize>,
    salt: u64,
    spill: &Arc<dyn SpillStore>,
    probe_first: bool,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    const MAX_DEPTH_SALT: u64 = 4;
    let build_bytes: usize = build.iter().map(Tuple::mem_size).sum();
    let fits = budget.map(|b| build_bytes <= b).unwrap_or(true);
    if fits || salt >= MAX_DEPTH_SALT || build.len() <= 1 {
        // Prehash-keyed index over the build side: keys are borrowed (no
        // clones), each probe hashes once and borrows its matches.
        let mut table: PrehashMap<&Value, Vec<u32>> = PrehashMap::new();
        for (i, t) in build.iter().enumerate() {
            let k = t.value(build_key);
            if !k.is_null() {
                table
                    .entry_hashed(fx_hash(k), |kk| *kk == k, || k)
                    .push(i as u32);
            }
        }
        for p in &probe {
            let k = p.value(probe_key);
            if k.is_null() {
                continue;
            }
            if let Some(matches) = table.get_hashed(fx_hash(k), |kk| *kk == k) {
                for &i in matches {
                    let b = &build[i as usize];
                    out.push(if probe_first {
                        p.concat(b)
                    } else {
                        b.concat(p)
                    });
                }
            }
        }
        return Ok(());
    }
    // Recursive partitioning: split both sides into sub-buckets on a new
    // salt, spill them (counted), and recurse pairwise.
    const FANOUT: usize = 8;
    let mut build_parts: Vec<Vec<Tuple>> = (0..FANOUT).map(|_| Vec::new()).collect();
    let mut probe_parts: Vec<Vec<Tuple>> = (0..FANOUT).map(|_| Vec::new()).collect();
    for t in build {
        let b = bucket_of(t.value(build_key), FANOUT, salt + 1);
        build_parts[b].push(t);
    }
    for t in probe {
        let b = bucket_of(t.value(probe_key), FANOUT, salt + 1);
        probe_parts[b].push(t);
    }
    for (bp, pp) in build_parts.into_iter().zip(probe_parts) {
        if bp.is_empty() || pp.is_empty() {
            continue;
        }
        // account the re-partitioning I/O
        let bb = spill.create_bucket("repart-build");
        spill.write(bb, &bp)?;
        let pb = spill.create_bucket("repart-probe");
        spill.write(pb, &pp)?;
        let bp = spill.read_all(bb)?;
        let pp = spill.read_all(pb)?;
        join_sets(
            bp,
            pp,
            build_key,
            probe_key,
            budget,
            salt + 1,
            spill,
            probe_first,
            out,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_common::tuple;
    use tukwila_storage::{InMemorySpillStore, MemoryManager};

    fn table(budget: usize) -> (BucketedTable, MemoryReservation, Arc<InMemorySpillStore>) {
        let mm = MemoryManager::new();
        let r = mm.register("t", budget);
        let spill = Arc::new(InMemorySpillStore::new());
        let t = BucketedTable::new("t", 4, 0, Some(r.clone()), spill.clone());
        (t, r, spill)
    }

    #[test]
    fn insert_and_probe() {
        let (mut t, _, _) = table(1_000_000);
        t.insert(tuple![1, 10]);
        t.insert(tuple![1, 11]);
        t.insert(tuple![2, 20]);
        assert_eq!(t.probe(&Value::Int(1)).len(), 2);
        assert_eq!(t.probe(&Value::Int(2)).len(), 1);
        assert!(t.probe(&Value::Int(3)).is_empty());
        assert_eq!(t.total_tuples(), 3);
    }

    #[test]
    fn flush_releases_memory_and_diverts() {
        let (mut t, r, spill) = table(1_000_000);
        for i in 0..20i64 {
            t.insert(tuple![i, i]);
        }
        let used_before = r.usage().used;
        assert!(used_before > 0);
        let b = t.largest_unflushed().unwrap();
        let written = t.flush_bucket(b).unwrap();
        assert!(written > 0);
        assert!(t.is_flushed(b));
        assert!(r.usage().used < used_before);
        assert_eq!(spill.stats().tuples_written(), written);
        // old_tuples reads the file back (counted)
        let old = t.old_tuples(b).unwrap();
        assert_eq!(old.len(), written);
        assert_eq!(spill.stats().tuples_read(), written);
    }

    #[test]
    fn marked_tuples_tracked_separately() {
        let (mut t, _, _) = table(1_000_000);
        t.insert(tuple![1, 1]);
        t.insert_marked(tuple![1, 2]);
        assert_eq!(t.probe(&Value::Int(1)).len(), 1); // primary only
        assert_eq!(t.probe_all_mem(&Value::Int(1)).count(), 2);
        let b = t.bucket_for(&Value::Int(1));
        assert_eq!(t.new_tuples(b).unwrap().len(), 1);
        assert_eq!(t.old_tuples(b).unwrap().len(), 1);
    }

    #[test]
    fn flush_preserves_marks() {
        let (mut t, _, _) = table(1_000_000);
        t.insert(tuple![1, 1]);
        t.insert_marked(tuple![1, 2]);
        let b = t.bucket_for(&Value::Int(1));
        t.flush_bucket(b).unwrap();
        assert_eq!(t.old_tuples(b).unwrap(), vec![tuple![1, 1]]);
        assert_eq!(t.new_tuples(b).unwrap(), vec![tuple![1, 2]]);
        // post-flush arrivals spill as new
        t.spill_new(b, &tuple![1, 3]).unwrap();
        assert_eq!(t.new_tuples(b).unwrap().len(), 2);
    }

    #[test]
    fn join_sets_in_memory() {
        let build = vec![tuple![1, 10], tuple![2, 20]];
        let probe = vec![tuple![1, 100], tuple![1, 101], tuple![3, 300]];
        let spill: Arc<dyn SpillStore> = Arc::new(InMemorySpillStore::new());
        let mut out = Vec::new();
        join_sets(build, probe, 0, 0, None, 0, &spill, true, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].arity(), 4);
        // probe_first: probe tuple leads
        assert_eq!(out[0].value(1), &Value::Int(100));
    }

    #[test]
    fn join_sets_recursive_partitioning_counts_io() {
        // tiny budget forces re-partitioning
        let build: Vec<Tuple> = (0..64i64).map(|i| tuple![i % 8, i]).collect();
        let probe: Vec<Tuple> = (0..64i64).map(|i| tuple![i % 8, i]).collect();
        let spill_store = Arc::new(InMemorySpillStore::new());
        let spill: Arc<dyn SpillStore> = spill_store.clone();
        let mut out = Vec::new();
        join_sets(build, probe, 0, 0, Some(64), 0, &spill, true, &mut out).unwrap();
        // 8 keys × 8 build × 8 probe per key = 512 results
        assert_eq!(out.len(), 512);
        assert!(spill_store.stats().tuples_written() > 0);
        assert_eq!(
            spill_store.stats().tuples_written(),
            spill_store.stats().tuples_read()
        );
    }

    #[test]
    fn null_keys_never_match() {
        let build = vec![Tuple::new(vec![Value::Null, Value::Int(1)])];
        let probe = vec![Tuple::new(vec![Value::Null, Value::Int(2)])];
        let spill: Arc<dyn SpillStore> = Arc::new(InMemorySpillStore::new());
        let mut out = Vec::new();
        join_sets(build, probe, 0, 0, None, 0, &spill, true, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn bucket_of_is_stable_and_salted() {
        let v = Value::Int(42);
        assert_eq!(bucket_of(&v, 16, 0), bucket_of(&v, 16, 0));
        // different salts redistribute (not a hard guarantee per value, but
        // across many values the distributions must differ)
        let moved = (0..100i64)
            .filter(|&i| bucket_of(&Value::Int(i), 16, 0) != bucket_of(&Value::Int(i), 16, 1))
            .count();
        assert!(moved > 50, "salt should redistribute, moved={moved}");
    }
}
