//! Standard union (bag semantics) — the inflexible baseline the dynamic
//! collector improves on (§4.1: "a standard union operator has no mechanism
//! for handling errors or for deciding to ignore slow mirror data
//! sources").

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Concatenates its inputs, draining them in order. Any child error fails
/// the union — exactly the rigidity the collector exists to avoid.
pub struct UnionAll {
    inputs: Vec<OperatorBox>,
    current: usize,
    schema: Schema,
    harness: OpHarness,
    opened: bool,
}

impl UnionAll {
    /// Build a union.
    pub fn new(inputs: Vec<OperatorBox>, harness: OpHarness) -> Self {
        UnionAll {
            inputs,
            current: 0,
            schema: Schema::empty(),
            harness,
            opened: false,
        }
    }
}

impl Operator for UnionAll {
    fn open(&mut self) -> Result<()> {
        if self.inputs.is_empty() {
            return Err(TukwilaError::Plan("union with no inputs".into()));
        }
        for i in &mut self.inputs {
            i.open()?;
        }
        let arity = self.inputs[0].schema().arity();
        for i in &self.inputs[1..] {
            if i.schema().arity() != arity {
                return Err(TukwilaError::Schema(format!(
                    "union arity mismatch: {} vs {}",
                    arity,
                    i.schema().arity()
                )));
            }
        }
        self.schema = self.inputs[0].schema().clone();
        self.current = 0;
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("UnionAll before open".into()));
        }
        // Forward each child's batches unchanged — zero per-tuple work.
        while self.current < self.inputs.len() {
            if let Some(batch) = self.inputs[self.current].next_batch()? {
                self.harness.produced(batch.len() as u64);
                return Ok(Some(batch));
            }
            self.current += 1;
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        for i in &mut self.inputs {
            i.close()?;
        }
        if self.opened {
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "union"
    }
}
