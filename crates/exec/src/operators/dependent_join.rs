//! Dependent join (§4: "join (including dependent join)").
//!
//! Joins a driving input against a source that semantically requires a
//! binding per probe (e.g. a web form). Tukwila wrappers accept only atomic
//! fetch queries (§3.2 footnote 2), so the engine fetches the source once,
//! indexes it on the probe column, and probes per driving tuple — the same
//! answers a binding-passing wrapper would return.

use std::collections::{HashMap, VecDeque};

use tukwila_common::{Result, Schema, TukwilaError, Tuple, TupleBatch, Value};
use tukwila_source::SourceBatchEvent;

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Dependent join: `left ⋈ source` on `left.bind_col = source.probe_col`.
pub struct DependentJoin {
    left: OperatorBox,
    source: String,
    bind_col: String,
    probe_col: String,
    harness: OpHarness,
    schema: Schema,
    bind_idx: usize,
    index: HashMap<Value, Vec<Tuple>>,
    /// Matches produced but not yet emitted (bounds output batches to the
    /// configured capacity even for high-fanout probe keys).
    pending: VecDeque<Tuple>,
    /// Driving tuples received but not yet probed — probing stops as soon
    /// as a full output block is ready, so `pending` stays bounded by
    /// batch_size plus one key's fanout instead of a whole batch's.
    driving: VecDeque<Tuple>,
    opened: bool,
}

impl DependentJoin {
    /// Build a dependent join.
    pub fn new(
        left: OperatorBox,
        source: String,
        bind_col: String,
        probe_col: String,
        harness: OpHarness,
    ) -> Self {
        DependentJoin {
            left,
            source,
            bind_col,
            probe_col,
            harness,
            schema: Schema::empty(),
            bind_idx: 0,
            index: HashMap::new(),
            pending: VecDeque::new(),
            driving: VecDeque::new(),
            opened: false,
        }
    }
}

impl Operator for DependentJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.bind_idx = self.left.schema().index_of(&self.bind_col)?;
        let wrapper = self.harness.runtime().env().sources.wrapper(&self.source)?;
        let probe_idx = wrapper.schema().index_of(&self.probe_col)?;
        self.schema = self.left.schema().concat(wrapper.schema());
        let mut stream = wrapper.fetch();
        let max = self.harness.batch_size();
        loop {
            match stream.next_batch_event(max) {
                SourceBatchEvent::Batch(batch) => {
                    let mut stored = 0usize;
                    for t in batch {
                        let k = t.value(probe_idx).clone();
                        if !k.is_null() {
                            stored += t.mem_size();
                            self.index.entry(k).or_default().push(t);
                        }
                    }
                    // One charge per batch for everything retained.
                    if stored > 0 {
                        if let Some(r) = self.harness.reservation() {
                            r.charge(stored);
                        }
                    }
                }
                SourceBatchEvent::End => break,
                SourceBatchEvent::Cancelled => break,
                SourceBatchEvent::Error(reason) => {
                    self.harness.failed();
                    return Err(TukwilaError::SourceUnavailable {
                        source: self.source.clone(),
                        reason,
                    });
                }
            }
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("DependentJoin before open".into()));
        }
        // Probe buffered driving tuples one at a time into `pending` and
        // emit in capacity-sized blocks: probing pauses the moment a full
        // block exists, so a high-fanout key cannot balloon the buffer, and
        // output is handed over before any (possibly blocking) input pull.
        let max = self.harness.batch_size();
        loop {
            let block_ready =
                self.pending.len() >= max || (!self.pending.is_empty() && self.driving.is_empty());
            if block_ready {
                let out = TupleBatch::fill_from_deque(&mut self.pending, max);
                self.harness.produced(out.len() as u64);
                return Ok(Some(out));
            }
            if let Some(l) = self.driving.pop_front() {
                let k = l.value(self.bind_idx);
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = self.index.get(k) {
                    for m in matches {
                        self.pending.push_back(l.concat(m));
                    }
                }
                continue;
            }
            match self.left.next_batch()? {
                Some(batch) => self.driving.extend(batch),
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(self.index.values().flatten().map(Tuple::mem_size).sum());
            }
            self.index.clear();
            self.pending.clear();
            self.driving.clear();
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "dependent_join"
    }
}
