//! Dependent join (§4: "join (including dependent join)").
//!
//! Joins a driving input against a source that semantically requires a
//! binding per probe (e.g. a web form). Tukwila wrappers accept only atomic
//! fetch queries (§3.2 footnote 2), so the engine fetches the source once,
//! indexes it on the probe column, and probes per driving tuple — the same
//! answers a binding-passing wrapper would return.

use std::collections::HashMap;

use tukwila_common::{Result, Schema, Tuple, TukwilaError, Value};
use tukwila_source::SourceEvent;

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Dependent join: `left ⋈ source` on `left.bind_col = source.probe_col`.
pub struct DependentJoin {
    left: OperatorBox,
    source: String,
    bind_col: String,
    probe_col: String,
    harness: OpHarness,
    schema: Schema,
    bind_idx: usize,
    index: HashMap<Value, Vec<Tuple>>,
    current: Vec<Tuple>,
    opened: bool,
}

impl DependentJoin {
    /// Build a dependent join.
    pub fn new(
        left: OperatorBox,
        source: String,
        bind_col: String,
        probe_col: String,
        harness: OpHarness,
    ) -> Self {
        DependentJoin {
            left,
            source,
            bind_col,
            probe_col,
            harness,
            schema: Schema::empty(),
            bind_idx: 0,
            index: HashMap::new(),
            current: Vec::new(),
            opened: false,
        }
    }
}

impl Operator for DependentJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.bind_idx = self.left.schema().index_of(&self.bind_col)?;
        let wrapper = self.harness.runtime().env().sources.wrapper(&self.source)?;
        let probe_idx = wrapper.schema().index_of(&self.probe_col)?;
        self.schema = self.left.schema().concat(wrapper.schema());
        let mut stream = wrapper.fetch();
        loop {
            match stream.next_event() {
                SourceEvent::Tuple(t) => {
                    let k = t.value(probe_idx).clone();
                    if !k.is_null() {
                        if let Some(r) = self.harness.reservation() {
                            r.charge(t.mem_size());
                        }
                        self.index.entry(k).or_default().push(t);
                    }
                }
                SourceEvent::End => break,
                SourceEvent::Cancelled => break,
                SourceEvent::Error(reason) => {
                    self.harness.failed();
                    return Err(TukwilaError::SourceUnavailable {
                        source: self.source.clone(),
                        reason,
                    });
                }
            }
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.opened {
            return Err(TukwilaError::Internal("DependentJoin before open".into()));
        }
        loop {
            if let Some(t) = self.current.pop() {
                self.harness.produced(1);
                return Ok(Some(t));
            }
            match self.left.next()? {
                Some(l) => {
                    let k = l.value(self.bind_idx);
                    if k.is_null() {
                        continue;
                    }
                    if let Some(matches) = self.index.get(k) {
                        self.current = matches.iter().map(|m| l.concat(m)).collect();
                    }
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(
                    self.index
                        .values()
                        .flatten()
                        .map(Tuple::mem_size)
                        .sum(),
                );
            }
            self.index.clear();
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "dependent_join"
    }
}
