//! Dependent join (§4: "join (including dependent join)").
//!
//! Joins a driving input against a source that semantically requires a
//! binding per probe (e.g. a web form). Tukwila wrappers accept only atomic
//! fetch queries (§3.2 footnote 2), so the engine fetches the source once,
//! indexes it on the probe column, and probes per driving tuple — the same
//! answers a binding-passing wrapper would return.

use tukwila_common::{
    KeyVector, KeyedBatch, OutputQueue, PrehashMap, Result, Schema, TukwilaError, Tuple,
    TupleBatch, Value,
};
use tukwila_source::SourceBatchEvent;

use crate::operator::{Operator, OperatorBox};
use crate::runtime::OpHarness;

/// Dependent join: `left ⋈ source` on `left.bind_col = source.probe_col`.
pub struct DependentJoin {
    left: OperatorBox,
    source: String,
    bind_col: String,
    probe_col: String,
    harness: OpHarness,
    schema: Schema,
    bind_idx: usize,
    /// Prehash-keyed index over the fetched source: probes reuse the
    /// driving batch's cached prehashes and borrow matches (no rehash, no
    /// clone, no allocation per probe).
    index: PrehashMap<Value, Vec<Tuple>>,
    /// Matches produced but not yet emitted (bounds output batches to the
    /// configured capacity even for high-fanout probe keys).
    pending: OutputQueue,
    /// The driving batch currently being probed, prehashed once on arrival
    /// and drained in place (NULL bind keys are skipped at consumption).
    /// Probing stops as soon as a full output block is ready, so `pending`
    /// stays bounded by batch_size plus one key's fanout instead of a
    /// whole batch's.
    driving: Option<KeyedBatch>,
    opened: bool,
}

impl DependentJoin {
    /// Build a dependent join.
    pub fn new(
        left: OperatorBox,
        source: String,
        bind_col: String,
        probe_col: String,
        harness: OpHarness,
    ) -> Self {
        DependentJoin {
            left,
            source,
            bind_col,
            probe_col,
            harness,
            schema: Schema::empty(),
            bind_idx: 0,
            index: PrehashMap::new(),
            pending: OutputQueue::new(tukwila_common::DEFAULT_BATCH_CAPACITY),
            driving: None,
            opened: false,
        }
    }
}

impl Operator for DependentJoin {
    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.bind_idx = self.left.schema().index_of(&self.bind_col)?;
        let wrapper = self.harness.runtime().env().sources.wrapper(&self.source)?;
        let probe_idx = wrapper.schema().index_of(&self.probe_col)?;
        self.schema = self.left.schema().concat(wrapper.schema());
        let mut stream = wrapper.fetch();
        let max = self.harness.batch_size();
        // Typed queue: join output seals directly into columnar batches.
        self.pending = OutputQueue::typed(
            max,
            self.schema.fields().iter().map(|f| f.data_type).collect(),
        );
        loop {
            match stream.next_batch_event(max) {
                SourceBatchEvent::Batch(batch) => {
                    let mut stored = 0usize;
                    // One prehash pass per fetched batch; inserts clone the
                    // key only when it is new to the index.
                    let kv = KeyVector::compute(&batch, probe_idx);
                    for (i, t) in batch.into_iter().enumerate() {
                        if let Some(hash) = kv.get(i) {
                            stored += t.mem_size();
                            let key = t.value(probe_idx);
                            self.index
                                .entry_hashed(hash, |k| k == key, || key.clone())
                                .push(t);
                        }
                    }
                    // One charge per batch for everything retained.
                    if stored > 0 {
                        if let Some(r) = self.harness.reservation() {
                            r.charge(stored);
                        }
                    }
                }
                SourceBatchEvent::End => break,
                SourceBatchEvent::Cancelled => break,
                SourceBatchEvent::Error(reason) => {
                    self.harness.failed();
                    return Err(TukwilaError::SourceUnavailable {
                        source: self.source.clone(),
                        reason,
                    });
                }
            }
        }
        self.opened = true;
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if !self.opened {
            return Err(TukwilaError::Internal("DependentJoin before open".into()));
        }
        // Probe buffered driving tuples one at a time into `pending` and
        // emit in capacity-sized blocks: probing pauses the moment a full
        // block exists, so a high-fanout key cannot balloon the buffer, and
        // output is handed over before any (possibly blocking) input pull.
        let max = self.harness.batch_size();
        loop {
            let drained = self.driving.as_ref().is_none_or(|d| d.remaining() == 0);
            let block_ready = self.pending.len() >= max || (!self.pending.is_empty() && drained);
            if block_ready {
                let out = self.pending.pop_block().unwrap_or_default();
                self.harness.produced(out.len() as u64);
                return Ok(Some(out));
            }
            match self.driving.as_mut().map(KeyedBatch::next) {
                Some(Some((l, hash))) => {
                    if let Some(hash) = hash {
                        let k = l.value(self.bind_idx);
                        if let Some(matches) = self.index.get_hashed(hash, |kk| kk == k) {
                            for m in matches {
                                self.pending.push_concat(&l, m);
                            }
                        }
                    }
                    // NULL bind keys never join; skip.
                    continue;
                }
                Some(None) => self.driving = None,
                None => {}
            }
            match self.left.next_batch()? {
                Some(batch) => {
                    // Prehash the driving batch once and drain it in place.
                    self.driving = Some(KeyedBatch::new(batch, self.bind_idx));
                }
                None => return Ok(None),
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()?;
        if self.opened {
            if let Some(r) = self.harness.reservation() {
                r.release(self.index.values().flatten().map(Tuple::mem_size).sum());
            }
            self.index.clear();
            self.pending.clear();
            self.driving = None;
            self.opened = false;
            self.harness.closed();
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "dependent_join"
    }
}
