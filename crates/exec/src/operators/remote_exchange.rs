//! Remote exchange: the distributed sibling of [`super::Exchange`].
//!
//! Where the local exchange splits a join into N thread partitions inside
//! this process, the remote exchange scatters the same N partition
//! pipelines to worker processes through a [`ShardExecutor`] (DESIGN.md
//! §12) and merges their batch streams in arrival order — the same
//! order-insensitive union, so the result is multiset-equal to the local
//! join. The transport (TCP framing, credits, cancel propagation) is
//! behind the executor trait; this operator owns the coordinator-side
//! lifecycle:
//!
//! * serializes the join subtree to plan text and collects the local-store
//!   tables it scans, so workers can rebuild the fragment from their own
//!   sources plus the shipped materializations;
//! * leases each shard its slice of the join's memory reservation
//!   (budget/N, parent-chained into the governor like local partitions) —
//!   the lease is charged while the shard runs and released when its
//!   stream ends, *including* on worker death;
//! * registers every stream's abort handle with the query control so
//!   cancellation and deadlines unblock in-flight reads, and forwards the
//!   remaining deadline in the shard spec;
//! * reports per-shard spill and row counts into the runtime
//!   (`note_exchange` + partition-skew trace event) exactly like the
//!   local exchange, so downstream tooling sees one taxonomy.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam_channel::{bounded, Receiver};

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};
use tukwila_plan::OperatorNode;
use tukwila_storage::{MemoryManager, MemoryReservation};
use tukwila_trace::{OpMetrics, TraceEvent};

use crate::operator::Operator;
use crate::runtime::OpHarness;
use crate::shard::{subtree_plan_text, subtree_table_deps, ShardExecutor, ShardSpec};

enum Msg {
    Batch(TupleBatch),
    End,
    Err(TukwilaError),
}

/// One shard's coordinator-side lease on the join's memory reservation:
/// charged while the shard runs, released exactly once when its stream
/// ends (completion, error, or teardown).
struct ShardLease {
    reservation: MemoryReservation,
    bytes: usize,
}

impl ShardLease {
    fn release(self) {
        self.reservation.release(self.bytes);
    }
}

/// The distributed exchange operator (see module docs).
pub struct RemoteExchange {
    /// The join subtree to scatter (kept as a plan node: serialized at
    /// open so rule-driven annotation changes up to that point apply).
    node: OperatorNode,
    partitions: usize,
    /// Harness of the exchange plan node (merge-side statistics).
    harness: OpHarness,
    /// Harness of the inner join node: lifecycle + reservation parent.
    join_harness: OpHarness,
    // -- runtime state (after open) --
    schema: Schema,
    rx: Option<Receiver<Msg>>,
    threads: Vec<JoinHandle<()>>,
    live_shards: usize,
    abort_flags: Vec<Arc<AtomicBool>>,
    shard_rows: Vec<Arc<AtomicU64>>,
    shard_spills: Vec<Arc<AtomicU64>>,
    metrics: Option<Arc<OpMetrics>>,
    reported: bool,
    opened: bool,
}

impl RemoteExchange {
    /// Build a remote exchange scattering `partitions` shards of the join
    /// described by `node`. `harness` is the exchange plan node's,
    /// `join_harness` the inner join node's.
    pub fn new(
        node: OperatorNode,
        partitions: usize,
        harness: OpHarness,
        join_harness: OpHarness,
    ) -> Self {
        RemoteExchange {
            node,
            partitions: partitions.max(1),
            harness,
            join_harness,
            schema: Schema::empty(),
            rx: None,
            threads: Vec::new(),
            live_shards: 0,
            abort_flags: Vec::new(),
            shard_rows: Vec::new(),
            shard_spills: Vec::new(),
            metrics: None,
            reported: false,
            opened: false,
        }
    }

    fn shutdown_threads(&mut self) {
        self.rx = None;
        for flag in &self.abort_flags {
            flag.store(true, Ordering::Relaxed);
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }

    /// Push this run's per-shard spill counters into the runtime (once).
    fn report_shard_stats(&mut self) {
        if self.reported || self.shard_spills.is_empty() {
            return;
        }
        self.reported = true;
        let spills: Vec<u64> = self
            .shard_spills
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let rt = self.harness.runtime();
        let op = self.join_harness.op_id().unwrap_or(u32::MAX);
        rt.note_exchange(op, &spills);
        if rt.trace().events_enabled() {
            let rows: Vec<u64> = self
                .shard_rows
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect();
            rt.trace().emit(TraceEvent::PartitionSkew { op, rows });
        }
    }
}

impl Operator for RemoteExchange {
    fn open(&mut self) -> Result<()> {
        if self.opened {
            return Err(TukwilaError::Internal("RemoteExchange opened twice".into()));
        }
        let n = self.partitions;
        let rt = self.harness.runtime().clone();
        let executor: Arc<dyn ShardExecutor> =
            rt.env().shard_executor.clone().ok_or_else(|| {
                TukwilaError::Internal("RemoteExchange without shard executor".into())
            })?;

        // Shard budget: the join reservation's budget split N ways, like
        // the local exchange's partition reservations (0 = unbounded).
        let parent = self.join_harness.reservation();
        let shard_budget = parent
            .as_ref()
            .map(|p| (p.budget() / n).max(1))
            .unwrap_or(0);
        let deadline = rt
            .control()
            .deadline()
            .map(|d| d.saturating_duration_since(Instant::now()));

        let tables = subtree_table_deps(&self.node)
            .into_iter()
            .map(|name| rt.env().local.get(&name).map(|rel| (name, rel)))
            .collect::<Result<Vec<_>>>()?;
        let spec = ShardSpec {
            plan_text: subtree_plan_text(&self.node, shard_budget),
            tables,
            shard_count: n,
            batch_size: rt.env().batch_size,
            shard_budget,
            deadline,
        };

        let mut streams = executor.start(&spec, rt.control(), rt.trace())?;
        if streams.len() != n {
            return Err(TukwilaError::Internal(format!(
                "shard executor started {} of {n} shards",
                streams.len()
            )));
        }

        // Open every stream up front: each blocks until its worker opened
        // the fragment, so connection and plan errors surface here rather
        // than mid-merge. Workers stream ahead against their initial
        // credits meanwhile. On failure, abort the survivors.
        for flag in streams.iter().map(|s| s.abort_handle()) {
            self.harness.register_cancel(flag.clone());
            self.abort_flags.push(flag);
        }
        let mut schema = None;
        for stream in streams.iter_mut() {
            match stream.open() {
                Ok(s) => schema = Some(s),
                Err(e) => {
                    for flag in &self.abort_flags {
                        flag.store(true, Ordering::Relaxed);
                    }
                    return Err(e);
                }
            }
        }
        self.schema = schema
            .ok_or_else(|| TukwilaError::Internal("remote exchange started zero shards".into()))?;

        self.metrics = self.harness.metrics("remote-exchange");
        self.shard_rows = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();
        self.shard_spills = (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect();

        // Lifecycle: the exchange owns the shared join subject's state.
        self.join_harness.opened();
        self.harness.opened();
        self.opened = true;

        let (out_tx, out_rx) = bounded::<Msg>(n.max(2) * 2);
        for (i, mut stream) in streams.into_iter().enumerate() {
            let out = out_tx.clone();
            let rows = self.shard_rows[i].clone();
            let spills = self.shard_spills[i].clone();
            let lease = parent.as_ref().map(|p| {
                let r = MemoryManager::with_parent(p.clone())
                    .register(format!("{}s{i}", p.name()), shard_budget);
                r.charge(shard_budget);
                ShardLease {
                    reservation: r,
                    bytes: shard_budget,
                }
            });
            self.threads.push(std::thread::spawn(move || {
                let result = (|| -> Result<()> {
                    while let Some(batch) = stream.next_batch()? {
                        rows.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        if out.send(Msg::Batch(batch)).is_err() {
                            return Ok(()); // consumer gone (early close)
                        }
                    }
                    spills.store(stream.stats().spill_tuples, Ordering::Relaxed);
                    Ok(())
                })();
                // The shard is done with its budget slice either way:
                // release the lease so the governor sees the memory come
                // back even when the worker died mid-query.
                if let Some(lease) = lease {
                    lease.release();
                }
                let _ = match result {
                    Ok(()) => out.send(Msg::End),
                    Err(e) => out.send(Msg::Err(e)),
                };
            }));
        }
        self.live_shards = n;
        self.rx = Some(out_rx);
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        loop {
            if self.live_shards == 0 {
                return Ok(None);
            }
            let Some(rx) = &self.rx else {
                return Ok(None);
            };
            let waited = self.metrics.as_ref().map(|_| Instant::now());
            let msg = rx.recv();
            if let (Some(m), Some(t0)) = (&self.metrics, waited) {
                m.add_queue_stall_ns(t0.elapsed().as_nanos() as u64);
            }
            match msg {
                Ok(Msg::Batch(b)) => {
                    if let Some(m) = &self.metrics {
                        m.add_output(b.len() as u64);
                    }
                    self.harness.produced(b.len() as u64);
                    return Ok(Some(b));
                }
                Ok(Msg::End) => {
                    self.live_shards -= 1;
                }
                Ok(Msg::Err(e)) => {
                    self.harness.failed();
                    self.shutdown_threads();
                    return Err(e);
                }
                Err(_) => {
                    return Err(TukwilaError::Internal(
                        "remote exchange output channel disconnected".into(),
                    ))
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.shutdown_threads();
        self.report_shard_stats();
        if self.opened {
            self.join_harness.closed();
            self.harness.closed();
            self.opened = false;
        }
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "remote-exchange"
    }
}
