//! Wrapper scan: fetch a source relation through its wrapper.
//!
//! The leaves of a Tukwila plan are "file scans or requests for data from
//! wrappers" (§3.2). The wrapper scan is where the engine meets the
//! unpredictable network: it raises `timeout(n)` events when the source
//! stops responding (feeding the rescheduling rules of query scrambling)
//! and `error` events when the connection fails (feeding collector
//! fallback policies).
//!
//! Delivery is batched: the wrapper hands over each arrival *burst* as one
//! [`TupleBatch`] (blocking only for the first tuple of a burst), so a fast
//! source costs one handoff per block while a slow source still delivers
//! its first tuple as early as the tuple-at-a-time engine did.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tukwila_common::{Result, Schema, TukwilaError, TupleBatch};
use tukwila_source::{SourceBatchEvent, WrapperStream};
use tukwila_trace::{OpMetrics, TraceEvent};

use crate::operator::Operator;
use crate::runtime::OpHarness;

/// Streams a source's relation, with optional timeout detection and
/// prefetch buffering.
pub struct WrapperScan {
    source: String,
    timeout_ms: Option<u64>,
    prefetch: Option<usize>,
    harness: OpHarness,
    stream: Option<WrapperStream>,
    schema: Schema,
    finished: bool,
    opened_at: Option<Instant>,
    /// First tuple already seen (first-tuple latency event emitted).
    saw_first: bool,
    /// A stall (timeout) was observed since the last delivered batch; the
    /// next arrival is traced as the post-stall burst.
    stalled: bool,
    metrics: Option<Arc<OpMetrics>>,
}

impl WrapperScan {
    /// Build a wrapper scan of `source`.
    pub fn new(
        source: String,
        timeout_ms: Option<u64>,
        prefetch: Option<usize>,
        harness: OpHarness,
    ) -> Self {
        WrapperScan {
            source,
            timeout_ms,
            prefetch,
            harness,
            stream: None,
            schema: Schema::empty(),
            finished: false,
            opened_at: None,
            saw_first: false,
            stalled: false,
            metrics: None,
        }
    }
}

impl Operator for WrapperScan {
    fn open(&mut self) -> Result<()> {
        let rt = self.harness.runtime().clone();
        let wrapper = rt.env().sources.wrapper(&self.source)?;
        self.schema = wrapper.schema().clone();
        // Timeout detection requires the buffered fetch (a direct pull
        // blocks inside the link model and cannot observe a deadline).
        let base = |w: &tukwila_source::Wrapper| match (self.timeout_ms, self.prefetch) {
            (None, None) => w.fetch(),
            (_, Some(buf)) => w.fetch_prefetching(buf),
            (Some(_), None) => w.fetch_prefetching(1),
        };
        let stream = match crate::operators::open_source_stream(
            &rt,
            self.harness.subject(),
            &wrapper,
            base,
        )? {
            Some(s) => s,
            None => {
                // Wait cancelled by a rule: end quietly (the rule that
                // cancelled us decides what happens next).
                self.finished = true;
                self.harness.opened();
                return Ok(());
            }
        };
        self.harness.register_cancel(stream.cancel_handle());
        self.stream = Some(stream);
        self.finished = false;
        self.opened_at = Some(Instant::now());
        self.saw_first = false;
        self.stalled = false;
        self.metrics = self.harness.metrics("wrapper_scan");
        self.harness.opened();
        Ok(())
    }

    fn next_batch(&mut self) -> Result<Option<TupleBatch>> {
        if self.finished {
            return Ok(None);
        }
        let max = self.harness.batch_size();
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| TukwilaError::Internal("WrapperScan::next_batch before open".into()))?;
        loop {
            if !self.harness.is_active() {
                self.finished = true;
                return Ok(None);
            }
            let event = match self.timeout_ms {
                Some(ms) => {
                    match stream.next_batch_event_timeout(max, Duration::from_millis(ms)) {
                        Some(ev) => ev,
                        None => {
                            // Source has not responded in `ms` msec: raise the
                            // event; rules run synchronously inside emit. If a
                            // rule requested an engine-level response, surface
                            // a recoverable error so the fragment loop can act.
                            let trace = self.harness.trace();
                            if trace.events_enabled() {
                                trace.emit(TraceEvent::SourceStall {
                                    source: self.source.clone(),
                                    waited_ms: ms,
                                });
                            }
                            self.stalled = true;
                            self.harness.timeout(ms);
                            if self.harness.signal_pending() {
                                return Err(TukwilaError::SourceTimeout {
                                    source: self.source.clone(),
                                    timeout_ms: ms,
                                });
                            }
                            continue; // deactivated? checked at loop head
                        }
                    }
                }
                None => stream.next_batch_event(max),
            };
            match event {
                SourceBatchEvent::Batch(batch) => {
                    let trace = self.harness.trace();
                    if trace.events_enabled() {
                        if !self.saw_first {
                            self.saw_first = true;
                            let elapsed_ms = self
                                .opened_at
                                .map(|t| t.elapsed().as_millis() as u64)
                                .unwrap_or(0);
                            trace.emit(TraceEvent::SourceFirstTuple {
                                source: self.source.clone(),
                                elapsed_ms,
                            });
                        }
                        if self.stalled {
                            self.stalled = false;
                            trace.emit(TraceEvent::SourceBurst {
                                source: self.source.clone(),
                                tuples: batch.len() as u64,
                            });
                        }
                    }
                    if let Some(m) = &self.metrics {
                        m.add_output(batch.len() as u64);
                    }
                    self.harness.produced(batch.len() as u64);
                    return Ok(Some(batch));
                }
                SourceBatchEvent::End => {
                    self.finished = true;
                    self.harness.closed();
                    return Ok(None);
                }
                SourceBatchEvent::Cancelled => {
                    self.finished = true;
                    // Query-level cancellation (client cancel, deadline)
                    // surfaces as an error so the fragment fails cleanly;
                    // rule-driven deactivation ends quietly (the rule that
                    // cancelled us decides what happens next).
                    self.harness.runtime().control().check()?;
                    return Ok(None);
                }
                SourceBatchEvent::Error(reason) => {
                    self.finished = true;
                    self.harness.failed();
                    return Err(TukwilaError::SourceUnavailable {
                        source: self.source.clone(),
                        reason,
                    });
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.stream = None; // drops prefetch thread if any
        Ok(())
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn name(&self) -> &'static str {
        "wrapper_scan"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{drain, TupleCursor};
    use crate::runtime::{ExecEnv, PlanRuntime};
    use std::sync::Arc;
    use tukwila_common::{tuple, DataType, Relation};
    use tukwila_plan::{Action, Condition, EventKind, EventPattern, PlanBuilder, Rule, SubjectRef};
    use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

    fn rel(n: i64) -> Relation {
        let schema = Schema::of("s", &[("a", DataType::Int)]);
        let mut r = Relation::empty(schema);
        for i in 0..n {
            r.push(tuple![i]);
        }
        r
    }

    fn setup(
        link: LinkModel,
        timeout_ms: Option<u64>,
        extra_rule: Option<Rule>,
    ) -> (WrapperScan, Arc<PlanRuntime>, tukwila_plan::OpId) {
        let mut b = PlanBuilder::new();
        let scan = b.wrapper_scan_opts("src", timeout_ms, None);
        let id = scan.id;
        let f = b.fragment(scan, "out");
        let mut plan = b.build(f);
        if let Some(r) = extra_rule {
            plan.global_rules.push(r);
        }
        let registry = SourceRegistry::new();
        registry.register(SimulatedSource::new("src", rel(20), link));
        let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(registry));
        let h = OpHarness::new(rt.clone(), SubjectRef::Op(id));
        (WrapperScan::new("src".into(), timeout_ms, None, h), rt, id)
    }

    #[test]
    fn streams_source() {
        let (mut op, rt, id) = setup(LinkModel::instant(), None, None);
        let out = drain(&mut op).unwrap();
        assert_eq!(out.len(), 20);
        assert_eq!(rt.produced(SubjectRef::Op(id)), 20);
    }

    #[test]
    fn source_error_fails_scan_and_emits_event() {
        let (mut op, rt, id) = setup(LinkModel::failing(3), None, None);
        op.open().unwrap();
        let mut cursor = TupleCursor::new();
        let mut n = 0;
        let err = loop {
            match cursor.next(&mut op) {
                Ok(Some(_)) => n += 1,
                Ok(None) => panic!("expected error"),
                Err(e) => break e,
            }
        };
        assert_eq!(n, 3);
        assert_eq!(err.kind(), "source_unavailable");
        assert!(rt
            .event_log()
            .iter()
            .any(|e| e.kind == EventKind::Error && e.subject == SubjectRef::Op(id)));
    }

    #[test]
    fn timeout_emits_event_and_reschedule_rule_aborts() {
        let rule_frag = tukwila_plan::FragmentId(0);
        let rule = Rule::reschedule_on_timeout(rule_frag, tukwila_plan::OpId(0));
        let (mut op, rt, id) = setup(LinkModel::stalling(2), Some(30), Some(rule));
        op.open().unwrap();
        let mut cursor = TupleCursor::new();
        assert!(cursor.next(&mut op).unwrap().is_some());
        assert!(cursor.next(&mut op).unwrap().is_some());
        // Third tuple stalls forever; after ~30ms the timeout fires, the
        // reschedule rule raises the signal, and the scan errors out.
        let err = cursor.next(&mut op).unwrap_err();
        assert_eq!(err.kind(), "source_timeout");
        assert!(rt
            .event_log()
            .iter()
            .any(|e| e.kind == EventKind::Timeout && e.subject == SubjectRef::Op(id)));
        assert!(rt.signal_pending());
    }

    #[test]
    fn timeout_with_deactivation_rule_ends_quietly() {
        let id = tukwila_plan::OpId(0);
        let rule = Rule::new(
            "kill-on-timeout",
            SubjectRef::Fragment(tukwila_plan::FragmentId(0)),
            EventPattern::new(EventKind::Timeout, SubjectRef::Op(id)),
            Condition::True,
            vec![Action::Deactivate(SubjectRef::Op(id))],
        );
        let (mut op, rt, _) = setup(LinkModel::stalling(1), Some(25), Some(rule));
        op.open().unwrap();
        let mut cursor = TupleCursor::new();
        assert!(cursor.next(&mut op).unwrap().is_some());
        // stall → timeout → deactivate → scan ends with None, no error
        assert!(cursor.next(&mut op).unwrap().is_none());
        assert!(!rt.signal_pending());
    }

    #[test]
    fn unknown_source_fails_open() {
        let mut b = PlanBuilder::new();
        let scan = b.wrapper_scan("ghost");
        let id = scan.id;
        let f = b.fragment(scan, "out");
        let plan = b.build(f);
        let rt = PlanRuntime::for_plan(&plan, ExecEnv::new(SourceRegistry::new()));
        let h = OpHarness::new(rt, SubjectRef::Op(id));
        let mut op = WrapperScan::new("ghost".into(), None, None, h);
        assert_eq!(op.open().unwrap_err().kind(), "source_unavailable");
    }
}
