//! Batched-vs-single-tuple equivalence: draining any operator tree through
//! the batch path must yield exactly the same multiset of tuples as
//! draining it tuple-at-a-time (batch size 1 and/or the [`TupleCursor`]
//! adapter). This is the contract that lets batching be a pure throughput
//! optimization with no semantic surface.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tukwila_common::{Relation, Tuple};
use tukwila_plan::{JoinKind, OperatorNode, OverflowMethod, PlanBuilder, QueryPlan};
use tukwila_source::{LinkModel, SimulatedSource, SourceRegistry};

use crate::build::build_operator;
use crate::operator::{drain, drain_batches, drain_tuples, Operator};
use crate::runtime::{ExecEnv, PlanRuntime};
use crate::test_support::{keyed_relation, JoinFixture};

fn multiset(tuples: &[Tuple]) -> HashMap<Tuple, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.clone()).or_insert(0) += 1;
    }
    m
}

fn registry_with(entries: &[(&str, Relation)]) -> SourceRegistry {
    let reg = SourceRegistry::new();
    for (name, rel) in entries {
        reg.register(SimulatedSource::new(
            *name,
            rel.clone(),
            LinkModel::instant(),
        ));
    }
    reg
}

/// Drain the root of `plan` at the given batch size through the batch path.
fn run_at_batch_size(plan: &QueryPlan, registry: &SourceRegistry, batch_size: usize) -> Vec<Tuple> {
    let env = ExecEnv::new(registry.clone()).with_batch_size(batch_size);
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    drain(op.as_mut()).unwrap()
}

/// Drain the root tuple-at-a-time through the `TupleCursor` adapter.
fn run_cursor(plan: &QueryPlan, registry: &SourceRegistry, batch_size: usize) -> Vec<Tuple> {
    let env = ExecEnv::new(registry.clone()).with_batch_size(batch_size);
    let rt = PlanRuntime::for_plan(plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    drain_tuples(op.as_mut()).unwrap()
}

fn plan_of(build: impl FnOnce(&mut PlanBuilder) -> OperatorNode) -> QueryPlan {
    let mut b = PlanBuilder::new();
    let root = build(&mut b);
    let f = b.fragment(root, "out");
    b.build(f)
}

/// Every in-tree operator kind, drained batched (size 64) vs single-tuple
/// (size 1) vs through the cursor adapter — identical multisets each way.
#[test]
fn all_operators_batched_equals_single_tuple() {
    let l = keyed_relation("l", 90, 9);
    let r = keyed_relation("r", 45, 9);
    let cases: Vec<(&str, QueryPlan)> = vec![
        (
            "filter",
            plan_of(|b| {
                let s = b.wrapper_scan("L");
                b.select(s, tukwila_plan::Predicate::eq_lit("k", 3i64))
            }),
        ),
        (
            "project",
            plan_of(|b| {
                let s = b.wrapper_scan("L");
                b.project(s, &["v", "k"])
            }),
        ),
        (
            "union",
            plan_of(|b| {
                let a = b.wrapper_scan("L");
                let c = b.wrapper_scan("R");
                b.union(vec![a, c])
            }),
        ),
        (
            "nlj",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                b.join(JoinKind::NestedLoops, ls, rs, "k", "k")
            }),
        ),
        (
            "smj",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                b.join(JoinKind::SortMerge, ls, rs, "k", "k")
            }),
        ),
        (
            "hybrid_hash",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                b.join(JoinKind::HybridHash, ls, rs, "k", "k")
            }),
        ),
        (
            "grace_hash",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                b.join(JoinKind::GraceHash, ls, rs, "k", "k")
            }),
        ),
        (
            "dpj",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                b.dpj(ls, rs, "k", "k", OverflowMethod::IncrementalLeftFlush)
            }),
        ),
        (
            "dependent_join",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                b.dependent_join(ls, "R", "k", "k")
            }),
        ),
        (
            "table_scan+deep",
            plan_of(|b| {
                let ls = b.wrapper_scan("L");
                let rs = b.wrapper_scan("R");
                let j = b.join(JoinKind::DoublePipelined, ls, rs, "k", "k");
                let p = b.project(j, &["l.k", "l.v", "r.v"]);
                b.select(p, tukwila_plan::Predicate::eq_lit("l.k", 2i64))
            }),
        ),
    ];
    for (name, plan) in cases {
        let registry = registry_with(&[("L", l.clone()), ("R", r.clone())]);
        let batched = run_at_batch_size(&plan, &registry, 64);
        let single = run_at_batch_size(&plan, &registry, 1);
        let cursor = run_cursor(&plan, &registry, 64);
        assert_eq!(
            multiset(&batched),
            multiset(&single),
            "{name}: batch=64 vs batch=1 multisets differ \
             ({} vs {} tuples)",
            batched.len(),
            single.len()
        );
        assert_eq!(
            multiset(&batched),
            multiset(&cursor),
            "{name}: batch drain vs cursor drain multisets differ"
        );
    }
}

/// Collector output is batch-size-invariant too (its children are threads,
/// so only the multiset — not the order — is defined).
#[test]
fn collector_batched_equals_single_tuple() {
    let plan = {
        let mut b = PlanBuilder::new();
        let (node, _) = b.collector(&[("L", true), ("R", true)], None);
        let f = b.fragment(node, "out");
        b.build(f)
    };
    let l = keyed_relation("l", 40, 4);
    let r = keyed_relation("r", 25, 4);
    let registry = registry_with(&[("L", l), ("R", r)]);
    let batched = run_at_batch_size(&plan, &registry, 64);
    let single = run_at_batch_size(&plan, &registry, 1);
    assert_eq!(multiset(&batched), multiset(&single));
    assert_eq!(batched.len(), 65);
}

/// Batch sizing is respected on a plain pipeline: every non-final batch of
/// a scan carries exactly the configured number of tuples.
#[test]
fn batch_size_shapes_scan_output() {
    let plan = plan_of(|b| b.wrapper_scan("L"));
    let registry = registry_with(&[("L", keyed_relation("l", 100, 10))]);
    let env = ExecEnv::new(registry).with_batch_size(32);
    let rt = PlanRuntime::for_plan(&plan, env);
    let mut op = build_operator(&plan.fragments[0].root, &rt).unwrap();
    let batches = drain_batches(op.as_mut()).unwrap();
    let sizes: Vec<usize> = batches.iter().map(|b| b.len()).collect();
    assert_eq!(sizes, vec![32, 32, 32, 4]);
}

/// A batch is never held back to fill: with a slow outer source, the NLJ
/// must emit its first (short) batch as soon as the first match exists
/// instead of blocking until `batch_size` results accumulate.
#[test]
fn nlj_does_not_hold_output_to_fill_batch() {
    let paced = LinkModel {
        per_tuple: Duration::from_millis(4),
        ..LinkModel::instant()
    };
    let fx = JoinFixture::build(
        keyed_relation("l", 100, 10),
        keyed_relation("r", 20, 10),
        paced,
        LinkModel::instant(),
        JoinKind::NestedLoops,
        OverflowMethod::Fail,
        None,
    );
    let mut op = crate::operators::NestedLoopsJoin::new(
        fx.left_scan(),
        fx.right_scan(),
        "k".into(),
        "k".into(),
        fx.harness(fx.join_id),
    );
    op.open().unwrap();
    let start = Instant::now();
    let first = op.next_batch().unwrap().expect("some output");
    let elapsed = start.elapsed();
    // The full outer stream takes ~400ms (100 × 4ms); filling the default
    // 256-tuple batch before emitting would need nearly all of it.
    assert!(
        elapsed < Duration::from_millis(150),
        "first NLJ batch held back {elapsed:?} to fill ({} tuples)",
        first.len()
    );
    let mut total = first.len();
    while let Some(b) = op.next_batch().unwrap() {
        total += b.len();
    }
    op.close().unwrap();
    assert_eq!(total, fx.gold.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core equivalence property: for random relation sizes, key
    /// duplication, and batch sizes, a batched drain and a single-tuple
    /// drain of the same DPJ tree produce identical multisets — and both
    /// match the gold nested-loops result.
    #[test]
    fn prop_dpj_batched_equals_single_tuple(
        n_l in 0usize..120,
        n_r in 0usize..80,
        dup in 1i64..10,
        bs in 1usize..65,
    ) {
        let build = |batch: usize| {
            JoinFixture::build(
                keyed_relation("l", n_l as i64, dup),
                keyed_relation("r", n_r as i64, dup),
                LinkModel::instant(),
                LinkModel::instant(),
                JoinKind::DoublePipelined,
                OverflowMethod::IncrementalLeftFlush,
                None,
            )
            .with_batch_size(batch)
        };
        let run = |fx: &JoinFixture| {
            let mut op = crate::operators::DoublePipelinedJoin::new(
                fx.left_scan(),
                fx.right_scan(),
                "k".into(),
                "k".into(),
                fx.harness(fx.join_id),
            )
            .with_buckets(8);
            drain(&mut op).unwrap()
        };
        let fx_batched = build(bs);
        let fx_single = build(1);
        let batched = run(&fx_batched);
        let single = run(&fx_single);
        prop_assert_eq!(multiset(&batched), multiset(&single));
        prop_assert_eq!(batched.len(), fx_batched.gold.len());
    }
}
